"""Unit tests for the accuracy report and its rank correlation."""

import pytest

from repro.profile.recorder import FlightRecorder
from repro.profile.report import (
    PROFILE_FORMAT,
    _average_ranks,
    accuracy_report,
    spearman,
)


# -- spearman ----------------------------------------------------------------


def test_average_ranks_no_ties():
    assert _average_ranks([30, 10, 20]) == [3.0, 1.0, 2.0]


def test_average_ranks_with_ties():
    # the two tied values share rank (2+3)/2
    assert _average_ranks([10, 20, 20, 40]) == [1.0, 2.5, 2.5, 4.0]


def test_spearman_perfect_agreement():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) \
        == pytest.approx(1.0)


def test_spearman_perfect_disagreement():
    assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) \
        == pytest.approx(-1.0)


def test_spearman_is_rank_based_not_linear():
    # monotone but wildly non-linear: still exactly 1
    xs = [1, 2, 3, 4, 5]
    ys = [1, 100, 10_000, 1_000_000, 100_000_000]
    assert spearman(xs, ys) == pytest.approx(1.0)


def test_spearman_with_ties_matches_pearson_of_ranks():
    xs = [1, 2, 2, 3]
    ys = [10, 20, 20, 40]
    assert spearman(xs, ys) == pytest.approx(1.0)
    # a tie on one side only reduces but does not destroy correlation
    assert 0.0 < spearman([1, 2, 2, 3], [10, 20, 30, 40]) < 1.0


def test_spearman_degenerate_inputs():
    assert spearman([], []) is None
    assert spearman([1], [2]) is None
    assert spearman([1, 1, 1], [1, 2, 3]) is None  # constant side
    with pytest.raises(ValueError):
        spearman([1, 2], [1])


# -- accuracy report ---------------------------------------------------------


def _delta(simulated_ms, **counters):
    base = {name: 0 for name in
            ("gets", "puts", "deletes", "rows_read", "rows_scanned",
             "rows_written", "rows_deleted", "bytes_read",
             "partitions_touched")}
    base.update(counters)
    base["simulated_ms"] = simulated_ms
    return base


def _explain(costs):
    return {"statements": {
        label: {"kind": "query", "weight": 1.0, "cost": cost,
                "weighted_cost": cost,
                "plan": {"signature": label, "cost": cost,
                         "steps": [{"op": "lookup", "cost": cost,
                                    "terms": {"rows_read": 2.0,
                                              "partitions_contacted":
                                              1.0}}]}}
        for label, cost in costs.items()}}


def _recorded(latencies):
    recorder = FlightRecorder()
    for label, values in latencies.items():
        for value in values:
            recorder.record_statement(
                label, "query", _delta(value, gets=1, rows_read=2))
    return recorder


def test_accuracy_report_joins_measured_and_predicted():
    recorder = _recorded({"cheap": [1.0, 1.2], "dear": [8.0, 9.0]})
    document = accuracy_report(
        recorder, _explain({"cheap": 0.5, "dear": 4.0}),
        meta={"source": "unit"})
    assert document["format"] == PROFILE_FORMAT
    assert document["meta"]["source"] == "unit"
    cheap = document["statements"]["cheap"]
    assert cheap["measured"]["requests"] == 2
    assert cheap["measured"]["mean_ms"] == pytest.approx(1.1)
    assert cheap["predicted"]["cost"] == 0.5
    assert cheap["predicted"]["terms"]["rows_read"] == 2.0
    assert cheap["measured_over_predicted"] == pytest.approx(2.2)
    workload = document["workload"]
    assert workload["statements_joined"] == 2
    assert workload["requests"] == 4
    assert workload["rank_correlation"] == pytest.approx(1.0)


def test_accuracy_report_normalizes_ratios_by_median():
    # measured/predicted sits near 2.0 for most statements; the outlier
    # is flagged by its normalized ratio, not the raw one
    recorder = _recorded({"a": [2.0], "b": [4.0], "c": [40.0]})
    document = accuracy_report(
        recorder, _explain({"a": 1.0, "b": 2.0, "c": 2.0}))
    workload = document["workload"]
    assert workload["median_measured_over_predicted"] \
        == pytest.approx(2.0)
    assert document["statements"]["a"]["normalized_ratio"] \
        == pytest.approx(1.0)
    worst = workload["worst_divergences"]
    assert worst[0]["label"] == "c"
    assert worst[0]["normalized_ratio"] == pytest.approx(10.0)


def test_accuracy_report_handles_unjoined_statements():
    # a measured statement absent from the explain document still
    # appears, without prediction fields
    recorder = _recorded({"known": [1.0], "mystery": [2.0]})
    document = accuracy_report(recorder, _explain({"known": 1.0}))
    mystery = document["statements"]["mystery"]
    assert "predicted" not in mystery
    assert "measured_over_predicted" not in mystery
    assert document["workload"]["statements_measured"] == 2
    assert document["workload"]["statements_joined"] == 1
    # a single joined pair has no defined rank correlation
    assert document["workload"]["rank_correlation"] is None


def test_accuracy_report_empty_recorder():
    document = accuracy_report(FlightRecorder(), _explain({}))
    assert document["statements"] == {}
    assert document["workload"]["requests"] == 0
    assert document["workload"]["rank_correlation"] is None
    assert document["workload"]["worst_divergences"] == []


def test_accuracy_report_aggregates_update_terms():
    recorder = FlightRecorder()
    recorder.record_statement(
        "upd", "update", _delta(3.0, puts=1, rows_written=4))
    explain = {"statements": {"upd": {
        "kind": "update", "weight": 1.0, "cost": 2.0,
        "weighted_cost": 2.0,
        "maintenance": [{
            "index": "i1", "update_cost": 2.0,
            "write_amplification": 4.0,
            "steps": [{"op": "insert", "cost": 1.5,
                       "terms": {"rows_written": 4.0}}],
            "support_plans": [{
                "signature": "s", "cost": 0.5,
                "steps": [{"op": "lookup", "cost": 0.5,
                           "terms": {"rows_read": 1.0}}]}],
        }]}}}
    document = accuracy_report(recorder, explain)
    terms = document["statements"]["upd"]["predicted"]["terms"]
    assert terms == {"rows_read": 1.0, "rows_written": 4.0}


def test_report_is_json_serializable():
    import json
    recorder = _recorded({"a": [1.0], "b": [2.0], "c": [3.0]})
    document = accuracy_report(
        recorder, _explain({"a": 1.0, "b": 2.0, "c": 3.0}))
    json.dumps(document, sort_keys=True)
