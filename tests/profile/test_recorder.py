"""Tests for the execution flight recorder riding a real replay."""

import pytest

from repro import Advisor, telemetry
from repro.backend import ExecutionEngine, LatencyModel
from repro.profile import FlightRecorder, profile_recommendation


@pytest.fixture(scope="module")
def replay_setup():
    from repro.demo import hotel_dataset, hotel_model, hotel_workload
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    return model, workload, dataset, recommendation


def _engine(replay_setup, recorder):
    model, _workload, dataset, recommendation = replay_setup
    engine = ExecutionEngine(model, recommendation, dataset,
                             recorder=recorder)
    engine.load()
    return engine


def test_recorder_measures_query_statement(replay_setup):
    _model, workload, _dataset, _rec = replay_setup
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    query = workload.statements["guest_by_id"]
    engine.execute_query(query, {"guest": 5})
    engine.execute_query(query, {"guest": 7})
    profile = recorder.statements["guest_by_id"]
    assert profile.kind == "query"
    assert profile.requests == 2
    assert profile.counters["gets"] == 2
    assert profile.counters["rows_read"] >= 2
    assert profile.counters["partitions_touched"] >= 2
    assert profile.latency.count == 2
    assert profile.latency.total > 0


def test_statement_delta_matches_store_metrics(replay_setup):
    # the per-statement deltas must partition the store's global meters:
    # summing them reproduces the totals exactly
    _model, workload, _dataset, _rec = replay_setup
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    engine.store.reset_metrics()
    engine.execute("guest_by_id", {"guest": 5})
    engine.execute("pois_for_guest", {"guest": 3})
    engine.execute("update_poi_description",
                   {"poi": 1, "description": "x"})
    totals = engine.store.metrics.snapshot()
    for name in ("gets", "puts", "deletes", "rows_read", "rows_scanned",
                 "bytes_read", "partitions_touched"):
        recorded = sum(profile.counters[name]
                       for profile in recorder.statements.values())
        assert recorded == totals[name], name
    recorded_ms = sum(profile.latency.total
                      for profile in recorder.statements.values())
    assert recorded_ms == pytest.approx(totals["simulated_ms"])


def test_update_charges_support_queries_to_the_update(replay_setup):
    # support queries run inside execute_update must not appear as
    # separate statement profiles
    _model, workload, _dataset, _rec = replay_setup
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    engine.execute("delete_guest", {"guest": 11})
    assert set(recorder.statements) == {"delete_guest"}
    profile = recorder.statements["delete_guest"]
    assert profile.kind == "update"
    assert profile.counters["deletes"] >= 1


def test_per_column_family_operation_profiles(replay_setup):
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    engine.execute("guest_by_id", {"guest": 5})
    gets = [profile for (name, kind), profile
            in recorder.operations.items() if kind == "get"]
    assert gets
    record = gets[0].as_dict()
    assert record["requests"] >= 1
    assert record["p50_ms"] is not None
    assert record["p50_ms"] <= record["p99_ms"]


def test_calibration_samples_reproduce_latency_model(replay_setup):
    # every captured sample must satisfy the latency model's linear
    # form exactly — the property the replay-driven fit relies on
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    for guest in range(1, 12):
        engine.execute("guest_by_id", {"guest": guest})
        engine.execute("pois_for_guest", {"guest": guest})
    engine.execute("update_poi_description",
                   {"poi": 2, "description": "y"})
    latency = LatencyModel()
    samples = recorder.calibration_samples()
    assert len(samples) >= 12
    for sample in samples:
        if sample.kind == "get":
            expected = (latency.get_base * sample.requests
                        + latency.row_scan * sample.rows
                        + latency.byte_transfer
                        * sample.rows * sample.row_bytes)
        elif sample.kind == "put":
            expected = (latency.put_base * sample.requests
                        + latency.put_row * sample.rows)
        else:
            expected = (latency.delete_base * sample.requests
                        + latency.delete_row * sample.rows)
        assert sample.time_ms == pytest.approx(expected), sample


def test_sample_capture_cap(replay_setup):
    recorder = FlightRecorder(max_samples=3)
    engine = _engine(replay_setup, recorder)
    for guest in range(1, 8):
        engine.execute("guest_by_id", {"guest": guest})
    assert len(recorder.samples) == 3
    assert recorder.samples_dropped == 4
    assert recorder.samples_dict()["dropped"] == 4


def test_capture_disabled_keeps_profiles(replay_setup):
    recorder = FlightRecorder(capture_samples=False)
    engine = _engine(replay_setup, recorder)
    engine.execute("guest_by_id", {"guest": 5})
    assert recorder.samples == []
    assert recorder.statements["guest_by_id"].requests == 1


def test_recorder_works_with_telemetry_disabled(replay_setup):
    # an explicitly attached recorder must record regardless of the
    # NOSE_TELEMETRY kill-switch (the process-wide sink stays null)
    assert not telemetry.current().enabled
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    engine.execute("guest_by_id", {"guest": 5})
    assert recorder.total_requests() == 1


def test_replay_emits_telemetry_when_active(replay_setup):
    recorder = FlightRecorder()
    engine = _engine(replay_setup, recorder)
    with telemetry.activate() as sink:
        engine.execute("guest_by_id", {"guest": 5})
    report = sink.report()
    counters = report.metrics["counters"]
    assert counters["exec.requests"] == 1
    assert counters["store.rows_read"] >= 1
    histograms = report.metrics["histograms"]
    assert histograms["exec.latency_ms"]["count"] == 1
    assert "exec.latency_ms.guest_by_id" in histograms
    names = [span["name"] for span in report.spans]
    assert "exec.query" in names


def test_profile_recommendation_end_to_end(replay_setup):
    model, workload, dataset, recommendation = replay_setup
    document, recorder = profile_recommendation(
        model, workload, recommendation, dataset, seed=3, requests=60)
    assert document["format"] == "nose-profile/1"
    workload_section = document["workload"]
    assert workload_section["requests"] >= 60
    assert workload_section["statements_measured"] == len(
        list(workload.weighted_statements))
    assert workload_section["rank_correlation"] is not None
    # every statement joined against a prediction carries quantiles
    # and the raw counters
    for record in document["statements"].values():
        measured = record["measured"]
        assert measured["p50_ms"] is not None
        assert measured["p50_ms"] <= measured["p95_ms"] \
            <= measured["p99_ms"]
        for counter in ("rows_scanned", "partitions_touched",
                        "bytes_read"):
            assert counter in measured
        assert "terms" in record["predicted"]
    assert document["column_families"]
    assert recorder.calibration_samples()


def test_profile_recommendation_is_deterministic(replay_setup):
    # replays mutate their dataset (update statements), so two runs on
    # *fresh* datasets must agree byte for byte
    from repro.demo import hotel_dataset
    model, workload, _dataset, recommendation = replay_setup
    documents = []
    for _ in range(2):
        fresh = hotel_dataset(model, seed=42)
        fresh.sync_counts()
        document, _ = profile_recommendation(
            model, workload, recommendation, fresh, seed=5, requests=40)
        documents.append(document)
    assert documents[0] == documents[1]
