"""Tests for the staged advisor pipeline (prepare / recommend_prepared).

The staged pipeline must be an equivalence-preserving refactor of the
one-shot ``recommend``: cold and warm solves, serial and parallel
planning, and re-costed weight changes must all produce the same
recommendation a fresh advisor would.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Advisor, TruncationWarning
from repro.advisor import prune_dominated_plans, prune_plan_space
from repro.cost import CassandraCostModel
from repro.demo import hotel_model, hotel_workload
from repro.exceptions import OptimizationError
from repro.planner.plans import PlanSpace


def _fingerprint(recommendation):
    """Everything that identifies a recommendation's outcome."""
    return {
        "indexes": sorted(index.key for index in recommendation.indexes),
        "cost": round(recommendation.total_cost, 6),
        "query_plans": {query.label: plan.signature
                        for query, plan
                        in recommendation.query_plans.items()},
    }


@pytest.fixture(scope="module")
def hotel_setup():
    model = hotel_model()
    return model, hotel_workload(model)


# -- recommend() == prepare() + recommend_prepared() -----------------------


def test_recommend_equals_prepared_cold(hotel_setup):
    model, workload = hotel_setup
    baseline = Advisor(model).recommend(workload)
    advisor = Advisor(model)
    prepared = advisor.prepare(workload)
    staged = advisor.recommend_prepared(prepared)
    assert _fingerprint(staged) == _fingerprint(baseline)
    # the explicit cold path attributes enumeration/planning time
    assert staged.timing.enumeration > 0
    assert staged.timing.planning > 0


def test_process_planned_prepare_matches_serial(hotel_setup,
                                                monkeypatch):
    """jobs=N planning on the forked process pool is byte-identical to
    the serial path: worker results are pickled copies, and everything
    downstream matches plans and column families by key, not identity.
    """
    import json

    from repro import parallel
    from repro.explain import explain_document

    model, workload = hotel_setup
    serial = json.dumps(
        explain_document(Advisor(model).recommend(workload)),
        sort_keys=True)
    # defeat the pays-for-itself heuristics so the pool really runs,
    # even on a single-CPU host
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
    monkeypatch.setattr(parallel, "MIN_PARALLEL_SECONDS", 0.0)
    forked = json.dumps(
        explain_document(Advisor(model, jobs=2).recommend(workload)),
        sort_keys=True)
    assert forked == serial


def test_recommend_equals_prepared_warm(hotel_setup):
    model, workload = hotel_setup
    advisor = Advisor(model)
    cold = advisor.recommend(workload)
    warm = advisor.recommend(workload)
    assert _fingerprint(warm) == _fingerprint(cold)
    # the warm call skipped enumeration, planning and pruning...
    assert warm.timing.enumeration == 0.0
    assert warm.timing.planning == 0.0
    assert warm.timing.pruning == 0.0
    assert warm.timing.cost_calculation == 0.0
    # ...and says so
    assert warm.timing.cache_hits >= 1
    assert cold.timing.cache_hits >= 1  # lookup-cost memo hits


def test_prepare_is_cached_by_structure(hotel_setup):
    model, _workload = hotel_setup
    advisor = Advisor(model)
    # two distinct workload objects with identical statements share one
    # prepared workload; a structural change (no updates) does not
    first = advisor.prepare(hotel_workload(model))
    second = advisor.prepare(hotel_workload(model))
    reads = advisor.prepare(hotel_workload(model,
                                           include_updates=False))
    assert second is first
    assert second.reuse_count == 1
    assert reads is not first


def test_weight_change_matches_fresh_solve(hotel_setup):
    model, _workload = hotel_setup
    shared = Advisor(model)
    workload = hotel_workload(model)
    shared.recommend(workload)  # cold solve fills every cache

    scaled = workload.scale_weights(25.0)
    warm = shared.recommend(scaled)
    assert warm.timing.planning == 0.0
    fresh = Advisor(model).recommend(scaled)
    assert _fingerprint(warm) == _fingerprint(fresh)


# -- parallel planning/costing ---------------------------------------------


@pytest.mark.parametrize("demo", ["hotel", "rubis"])
def test_jobs_do_not_change_the_recommendation(demo):
    if demo == "hotel":
        model = hotel_model()
        workload = hotel_workload(model)
    else:
        from repro.rubis import rubis_model, rubis_workload
        model = rubis_model()
        workload = rubis_workload(model, mix="bidding")
    serial = Advisor(model, jobs=1).recommend(workload)
    parallel = Advisor(model, jobs=4).recommend(workload)
    assert _fingerprint(parallel) == _fingerprint(serial)


# -- property: re-costing equals a fresh solve -----------------------------


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(factors=st.lists(st.floats(0.1, 50.0), min_size=4, max_size=4))
def test_reweighted_solve_matches_fresh_solve(factors):
    model = hotel_model()
    workload = hotel_workload(model)
    advisor = _reweight_advisor(model)
    labels = [statement.label for statement, _
              in workload.weighted_statements]
    weights = {label: factors[i % len(factors)]
               for i, label in enumerate(labels)}

    prepared = advisor.prepare(workload)
    warm = advisor.recommend_prepared(prepared, weights=weights)

    fresh_workload = hotel_workload(model)
    for label, weight in weights.items():
        fresh_workload.set_weight(label, weight)
    fresh = Advisor(model).recommend(fresh_workload)
    assert warm.total_cost == pytest.approx(fresh.total_cost, rel=1e-6)
    assert _fingerprint(warm)["indexes"] == _fingerprint(fresh)["indexes"]


_REWEIGHT_ADVISORS = {}


def _reweight_advisor(model):
    """One advisor reused across hypothesis examples, so later examples
    exercise the warm reweight path against fresh solves."""
    return _REWEIGHT_ADVISORS.setdefault(id(model), Advisor(model))


# -- truncation accounting -------------------------------------------------


def test_plan_space_records_truncation(hotel_setup):
    from repro.enumerator import CandidateEnumerator
    from repro.planner import QueryPlanner
    from repro.workload import parse_statement
    model, _workload = hotel_setup
    query = parse_statement(
        model,
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")
    pool = CandidateEnumerator(model).enumerate_query(query)
    capped = QueryPlanner(model, pool, max_plans=2).plans_for(query)
    full = QueryPlanner(model, pool).plans_for(query)
    assert isinstance(capped, PlanSpace)
    assert len(capped) == 2
    assert capped.truncated
    assert not full.truncated
    assert len(full) > 2


def test_advisor_warns_on_truncated_query(hotel_setup):
    model, _workload = hotel_setup
    workload = hotel_workload(model, include_updates=False)
    advisor = Advisor(model, max_plans=2)
    with pytest.warns(TruncationWarning):
        recommendation = advisor.recommend(workload)
    assert recommendation.timing.truncated_queries > 0


def test_no_truncation_warning_when_space_is_complete(hotel_setup):
    import warnings
    model, _workload = hotel_setup
    workload = hotel_workload(model, include_updates=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error", TruncationWarning)
        recommendation = Advisor(model).recommend(workload)
    assert recommendation.timing.truncated_queries == 0


def test_truncation_warning_also_logged(hotel_setup, caplog):
    import logging
    model, _workload = hotel_setup
    workload = hotel_workload(model, include_updates=False)
    advisor = Advisor(model, max_plans=2)
    with caplog.at_level(logging.WARNING, logger="repro"):
        with pytest.warns(TruncationWarning):
            advisor.recommend(workload)
    messages = [record.message for record in caplog.records
                if record.name.startswith("repro")]
    assert any("plan cap" in message for message in messages)


# -- timing accounting -----------------------------------------------------


_TIMING_STAGES = ("enumeration", "planning", "cost_calculation",
                  "pruning", "bip_construction", "bip_solving",
                  "recommendation")


def test_timing_buckets_sum_to_total(hotel_setup):
    model, _workload = hotel_setup
    workload = hotel_workload(model)
    timing = Advisor(model).recommend(workload).timing
    bucketed = sum(getattr(timing, stage) for stage in _TIMING_STAGES)
    residual = timing.total - bucketed
    # every stage is attributed to a bucket; only cheap glue (weight
    # resolution, cache bookkeeping) may land between buckets
    assert residual >= 0.0
    assert residual <= max(0.05 * timing.total, 0.02)


def test_timing_other_covers_unnamed_stages(hotel_setup):
    model, _workload = hotel_setup
    timing = Advisor(model).recommend(hotel_workload(model)).timing
    row = timing.as_figure13_row()
    named = (row["cost_calculation"] + row["bip_construction"]
             + row["bip_solving"])
    assert row["other"] == pytest.approx(row["total"] - named)


def test_stage_breakdown_partitions_total(hotel_setup):
    """The fine-grained buckets are disjoint and sum to the total —
    the invariant that makes benchmark stage rows safe to stack.
    as_figure13_row's coarse "other" must equal the rolled-up unnamed
    buckets, not re-include any named one."""
    model, _workload = hotel_setup
    timing = Advisor(model).recommend(hotel_workload(model)).timing
    breakdown = timing.stage_breakdown()
    assert set(breakdown) == {
        "enumeration", "planning", "cost_calculation", "pruning",
        "bip_construction", "bip_solving", "recommendation", "other"}
    assert all(seconds >= 0.0 for seconds in breakdown.values())
    assert sum(breakdown.values()) == pytest.approx(timing.total)
    fig13 = timing.as_figure13_row()
    assert sum(value for key, value in fig13.items()
               if key != "total") == pytest.approx(timing.total)
    assert fig13["other"] == pytest.approx(
        breakdown["enumeration"] + breakdown["planning"]
        + breakdown["pruning"] + breakdown["recommendation"]
        + breakdown["other"])


def test_timing_counters_survive_prepared_round_trip(hotel_setup):
    model, _workload = hotel_setup
    workload = hotel_workload(model, include_updates=False)
    advisor = Advisor(model, max_plans=2)
    with pytest.warns(TruncationWarning):
        prepared = advisor.prepare(workload)
    cold = advisor.recommend_prepared(prepared)
    warm = advisor.recommend_prepared(advisor.prepare(workload))
    # truncation accounting is a property of the prepared structure and
    # must survive the cache round trip
    assert cold.timing.truncated_queries > 0
    assert warm.timing.truncated_queries \
        == cold.timing.truncated_queries
    # the cold run counts lookup-memo hits; the warm run skips costing
    # and reports the structural cache hit instead
    assert cold.timing.cache_hits >= 1
    assert warm.timing.cache_hits >= 1


# -- deterministic pruning -------------------------------------------------


class _FakeIndex:
    def __init__(self, key):
        self.key = key


class _FakePlan:
    def __init__(self, cost, keys, signature):
        self.cost = cost
        self.indexes = tuple(_FakeIndex(key) for key in keys)
        self.signature = signature


def test_prune_ties_broken_by_signature():
    plans = [_FakePlan(1.0, ["a"], "L:z"), _FakePlan(1.0, ["a"], "L:b"),
             _FakePlan(1.0, ["a"], "L:m")]
    for ordering in (plans, plans[::-1], plans[1:] + plans[:1]):
        (kept,) = prune_dominated_plans(ordering)
        assert kept.signature == "L:b"


def test_prune_plan_space_drops_superset_plans():
    cheap_subset = _FakePlan(1.0, ["a"], "L:a")
    dominated_superset = _FakePlan(2.0, ["a", "b"], "L:a|L:b")
    other = _FakePlan(0.5, ["c"], "L:c")
    kept = prune_plan_space([dominated_superset, cheap_subset, other])
    assert [plan.signature for plan in kept] == ["L:c", "L:a"]
    # a cheaper superset plan survives (it may still be optimal)
    cheap_superset = _FakePlan(0.1, ["a", "b"], "L:b|L:a")
    kept = prune_plan_space([cheap_subset, cheap_superset])
    assert {plan.signature for plan in kept} \
        == {"L:a", "L:b|L:a"}


# -- cost memoization ------------------------------------------------------


def test_lookup_costs_are_memoized(hotel_setup):
    from repro.enumerator import CandidateEnumerator
    from repro.planner import QueryPlanner
    model, workload = hotel_setup
    query = workload.queries[0]
    pool = CandidateEnumerator(model).enumerate_query(query)
    plans = QueryPlanner(model, pool).plans_for(query)
    cost_model = CassandraCostModel()
    first = [cost_model.cost_plan(plan) for plan in plans]
    hits_after_first, misses, entries = cost_model.cache_info()
    assert misses == entries > 0
    second = [cost_model.cost_plan(plan) for plan in plans]
    hits, misses_after_second, _entries = cost_model.cache_info()
    # the second pass is served entirely from the memo, same costs
    assert misses_after_second == misses
    assert hits > hits_after_first
    assert second == first
    cost_model.clear_cost_cache()
    assert cost_model.cache_info() == (0, 0, 0)


# -- weight validation -----------------------------------------------------


def test_recommend_prepared_rejects_incomplete_weights(hotel_setup):
    model, _workload = hotel_setup
    workload = hotel_workload(model)
    advisor = Advisor(model)
    prepared = advisor.prepare(workload)
    advisor.recommend_prepared(prepared)  # warm the program cache
    with pytest.raises(OptimizationError):
        advisor.recommend_prepared(prepared, weights={"nope": 1.0})
