"""Unit tests for random model/workload generation (§VII-B)."""

import pytest

from repro import Advisor
from repro.randgen import random_model, random_workload
from repro.workload.statements import Insert, Query, Update


def test_random_model_structure():
    model = random_model(entities=8, seed=3)
    assert len(model.entities) == 8
    assert model.validate() is model
    assert model.relationship_count >= 8  # Watts-Strogatz ring degree 4


def test_random_model_deterministic():
    first = random_model(entities=6, seed=9)
    second = random_model(entities=6, seed=9)
    assert first.describe() == second.describe()
    assert random_model(entities=6, seed=10).describe() \
        != first.describe()


def test_random_model_counts_in_range():
    model = random_model(entities=5, seed=1, min_count=10, max_count=20)
    for entity in model.entities.values():
        assert 10 <= entity.count <= 20


def test_random_workload_composition():
    model = random_model(entities=8, seed=3)
    workload = random_workload(model, queries=7, updates=3, inserts=2,
                               seed=3)
    assert len(workload.queries) == 7
    kinds = [type(statement) for statement in workload.updates]
    assert kinds.count(Update) == 3
    assert kinds.count(Insert) == 2


def test_random_statements_have_valid_structure():
    model = random_model(entities=8, seed=5)
    workload = random_workload(model, queries=12, updates=4, seed=5)
    for query in workload.queries:
        assert isinstance(query, Query)
        assert query.eq_conditions
        assert len([c for c in query.conditions if c.is_range]) <= 1
        for field in query.select:
            assert field.parent is query.entity
    for statement in workload.updates:
        if isinstance(statement, Update):
            assert statement.conditions


def test_random_workloads_are_weighted():
    model = random_model(entities=6, seed=2)
    workload = random_workload(model, queries=5, seed=2)
    for statement, weight in workload.weighted_statements:
        assert weight > 0


def test_random_workload_is_advisable():
    """The generated workload must survive the full advisor pipeline."""
    model = random_model(entities=6, seed=4)
    workload = random_workload(model, queries=4, updates=1, inserts=1,
                               seed=4)
    recommendation = Advisor(model).recommend(workload)
    assert recommendation.indexes
    assert set(recommendation.query_plans) == set(workload.queries)


@pytest.mark.parametrize("seed", range(5))
def test_many_seeds_remain_advisable(seed):
    model = random_model(entities=5, seed=seed)
    workload = random_workload(model, queries=3, updates=1, inserts=0,
                               seed=seed)
    recommendation = Advisor(model).recommend(workload)
    assert recommendation.total_cost > 0


def test_random_models_cover_both_participation_regimes():
    """Across a few seeds the generator must emit both total and
    partial relationship directions, so the fuzzer exercises the
    larger-column-family rewrite and its refusal."""
    totals = set()
    for seed in range(6):
        model = random_model(entities=6, seed=seed)
        for entity in model.entities.values():
            for key in entity.foreign_keys:
                totals.add(key.total)
    assert totals == {True, False}


def test_random_dataset_repairs_total_directions():
    from repro.randgen import random_dataset
    model = random_model(entities=6, seed=11)
    dataset = random_dataset(model, seed=11, rows_per_entity=12,
                             orphan_rate=0.5)
    for name, entity in model.entities.items():
        for key in entity.foreign_keys:
            if not key.total:
                continue
            for source in dataset.rows[name]:
                assert dataset.related(key, source), \
                    (name, key.name, source)


def test_random_inserts_connect_total_keys():
    model = random_model(entities=6, seed=13)
    workload = random_workload(model, queries=2, updates=0, inserts=8,
                               seed=13)
    for statement in workload.updates:
        if not isinstance(statement, Insert):
            continue
        connected = {key.name for key, _ in statement.connections}
        for key in statement.entity.foreign_keys:
            if key.total:
                assert key.name in connected
