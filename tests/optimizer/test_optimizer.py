"""Unit tests for the BIP optimizer, brute-force cross-check included."""

import pytest

from repro.cost import CassandraCostModel
from repro.exceptions import OptimizationError
from repro.indexes import Index, entity_fetch_index
from repro.optimizer import (
    BIPOptimizer,
    BruteForceOptimizer,
    OptimizationProblem,
)
from repro.planner import QueryPlanner, UpdatePlanner
from repro.workload import parse_statement


@pytest.fixture()
def pool(hotel):
    """A small, brute-forceable candidate pool (Fig 6 plus fetches)."""
    city = hotel.field("Hotel", "HotelCity")
    hotel_id = hotel.field("Hotel", "HotelID")
    room_id = hotel.field("Room", "RoomID")
    rate = hotel.field("Room", "RoomRate")
    number = hotel.field("Room", "RoomNumber")
    hotel_room = hotel.path(["Hotel", "Rooms"])
    return [
        Index((city,), (rate, room_id), (), hotel_room),
        Index((city,), (room_id,), (), hotel_room),
        Index((city,), (hotel_id,), (), hotel.path(["Hotel"])),
        Index((hotel_id,), (room_id,), (), hotel_room),
        Index((room_id,), (), (rate,), hotel.path(["Room"])),
        Index((room_id,), (), (number,), hotel.path(["Room"])),
        entity_fetch_index(hotel.entity("Room")),
        # hotel of a room: needed by maintenance support queries
        Index((room_id,), (hotel_id,), (city,),
              hotel.path(["Room", "Hotel"])),
    ]


@pytest.fixture()
def statements(hotel):
    query1 = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate",
        label="rooms_in_city")
    query2 = parse_statement(
        hotel,
        "SELECT Room.RoomNumber FROM Room WHERE Room.RoomID = ?room",
        label="room_number")
    update = parse_statement(
        hotel,
        "UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room",
        label="set_rate")
    return query1, query2, update


def _problem(hotel, pool, statements, weights=(1.0, 1.0, 1.0),
             space_limit=None):
    query1, query2, update = statements
    planner = QueryPlanner(hotel, pool)
    update_planner = UpdatePlanner(hotel, planner)
    cost_model = CassandraCostModel()
    query_plans = planner.plan_all([query1, query2])
    for plans in query_plans.values():
        for plan in plans:
            cost_model.cost_plan(plan)
    update_plans = update_planner.plan_all([update])
    for plans in update_plans.values():
        for plan in plans:
            cost_model.cost_update_plan(plan)
    labels = {"rooms_in_city": weights[0], "room_number": weights[1],
              "set_rate": weights[2]}
    return OptimizationProblem(query_plans, update_plans, labels,
                               space_limit=space_limit)


def test_bip_matches_brute_force(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    bip = BIPOptimizer(mip_rel_gap=0.0).solve(problem)
    brute = BruteForceOptimizer().solve(problem)
    assert bip.total_cost == pytest.approx(brute.total_cost, rel=1e-6)
    assert {i.key for i in bip.indexes} == {i.key for i in brute.indexes}


def test_bip_matches_brute_force_write_heavy(hotel, pool, statements):
    problem = _problem(hotel, pool, statements, weights=(1.0, 1.0, 500.0))
    bip = BIPOptimizer(mip_rel_gap=0.0).solve(problem)
    brute = BruteForceOptimizer().solve(problem)
    assert bip.total_cost == pytest.approx(brute.total_cost, rel=1e-6)


def test_lp_gate_matches_exact_solve(hotel, pool, statements):
    """Forcing the LP-relaxation gate must not change the outcome on a
    brute-forceable instance (accept path or full-MILP fallback)."""
    from repro import telemetry

    problem = _problem(hotel, pool, statements)
    exact = BIPOptimizer(lp_gate_columns=None).solve(problem)
    with telemetry.activate() as sink:
        gated = BIPOptimizer(lp_gate_columns=1).solve(
            _problem(hotel, pool, statements))
    counters = sink.report().metrics["counters"]
    assert counters["bip.lp_gate_used"] == 1
    assert counters.get("bip.lp_gate_accepted", 0) \
        + counters.get("bip.lp_gate_fallbacks", 0) == 1
    assert gated.total_cost == pytest.approx(exact.total_cost,
                                             rel=1e-6)
    assert {i.key for i in gated.indexes} \
        == {i.key for i in exact.indexes}


def test_lp_gate_write_heavy_matches_brute_force(hotel, pool,
                                                 statements):
    problem = _problem(hotel, pool, statements,
                       weights=(1.0, 1.0, 500.0))
    brute = BruteForceOptimizer().solve(problem)
    gated = BIPOptimizer(lp_gate_columns=1, lp_gate_gap=0.0).solve(
        _problem(hotel, pool, statements, weights=(1.0, 1.0, 500.0)))
    assert gated.total_cost == pytest.approx(brute.total_cost,
                                             rel=1e-6)


def test_reweight_matches_fresh_build(hotel, pool, statements):
    """The vectorized reweight must equal a from-scratch cost vector."""
    optimizer = BIPOptimizer()
    program = optimizer.prepare(_problem(hotel, pool, statements))
    new_weights = {"rooms_in_city": 3.0, "room_number": 0.25,
                   "set_rate": 7.5}
    optimizer.reweight(program, new_weights)
    fresh = optimizer.prepare(_problem(hotel, pool, statements,
                                       weights=(3.0, 0.25, 7.5)))
    assert program.costs == pytest.approx(fresh.costs)


def test_write_pressure_reduces_denormalization(hotel, pool, statements):
    """Heavier updates must never enlarge the schema's update exposure."""
    read_heavy = BIPOptimizer().solve(
        _problem(hotel, pool, statements, weights=(100.0, 100.0, 0.01)))
    write_heavy = BIPOptimizer().solve(
        _problem(hotel, pool, statements, weights=(0.01, 0.01, 100.0)))
    rate = hotel.field("Room", "RoomRate")
    exposed_read = sum(1 for index in read_heavy.indexes
                       if index.contains_field(rate))
    exposed_write = sum(1 for index in write_heavy.indexes
                        if index.contains_field(rate))
    assert exposed_write <= exposed_read


def test_every_query_gets_exactly_one_plan(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    result = BIPOptimizer().solve(problem)
    assert set(result.query_plans) == set(problem.query_plans)
    chosen_keys = {index.key for index in result.indexes}
    for plan in result.query_plans.values():
        assert {index.key for index in plan.indexes} <= chosen_keys


def test_update_plans_only_for_selected_indexes(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    result = BIPOptimizer().solve(problem)
    chosen_keys = {index.key for index in result.indexes}
    for plans in result.update_plans.values():
        for plan in plans:
            assert plan.index.key in chosen_keys
            for support_plan in plan.support_plans:
                support_keys = {i.key for i in support_plan.indexes}
                assert support_keys <= chosen_keys


def test_space_constraint_respected(hotel, pool, statements):
    unconstrained = BIPOptimizer().solve(_problem(hotel, pool,
                                                  statements))
    limit = unconstrained.size * 0.5
    constrained = BIPOptimizer().solve(
        _problem(hotel, pool, statements, space_limit=limit))
    assert constrained.size <= limit
    assert constrained.total_cost >= unconstrained.total_cost


def test_impossible_space_constraint_is_infeasible(hotel, pool,
                                                   statements):
    with pytest.raises(OptimizationError):
        BIPOptimizer().solve(_problem(hotel, pool, statements,
                                      space_limit=1.0))
    with pytest.raises(OptimizationError):
        BruteForceOptimizer().solve(_problem(hotel, pool, statements,
                                             space_limit=1.0))


def test_two_phase_minimizes_schema_size(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    greedy = BIPOptimizer(minimize_schema_size=False).solve(problem)
    minimal = BIPOptimizer(minimize_schema_size=True).solve(problem)
    assert minimal.total_cost == pytest.approx(greedy.total_cost,
                                               rel=1e-3)
    assert len(minimal.indexes) <= len(greedy.indexes)


def test_phase2_budget_proportional_to_phase1(hotel, pool, statements):
    """The schema-minimization solve gets a budget proportional to the
    phase-1 solve (never the fixed 30s wall the scaling bench exposed),
    and reports how long it actually ran."""
    from repro import telemetry

    problem = _problem(hotel, pool, statements)
    with telemetry.activate() as sink:
        BIPOptimizer(minimize_schema_size=True).solve(problem)
    gauges = sink.report().metrics["gauges"]
    assert 1.0 <= gauges["bip.phase2_time_limit"] <= 30.0
    # a sub-second phase 1 must clamp phase 2 to the 1s floor
    assert gauges["bip.phase2_time_limit"] == pytest.approx(1.0)
    assert gauges["bip.phase2_seconds"] < 1.5


def test_brute_force_size_guard(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    with pytest.raises(OptimizationError):
        BruteForceOptimizer(max_indexes=2).solve(problem)


def test_problem_properties(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    candidates, query_plans, support_plans = problem.size
    assert candidates <= len(pool)
    assert query_plans >= 2
    assert "OptimizationProblem" in repr(problem)
    with pytest.raises(OptimizationError):
        problem.weight(parse_statement(
            hotel, "SELECT Guest.GuestName FROM Guest "
                   "WHERE Guest.GuestID = ?", label="unknown"))


def test_empty_plan_space_rejected(hotel, statements):
    query1, _query2, _update = statements
    with pytest.raises(OptimizationError):
        OptimizationProblem({query1: []}, {}, {"rooms_in_city": 1.0})


def test_recommendation_reporting(hotel, pool, statements):
    problem = _problem(hotel, pool, statements)
    result = BIPOptimizer().solve(problem)
    costs = result.statement_costs
    assert set(costs) == {"rooms_in_city", "room_number", "set_rate"}
    for weight, cost in costs.values():
        assert weight > 0 and cost >= 0
    text = result.describe()
    assert "Recommended schema" in text
    for index in result.indexes:
        assert index.key in text
