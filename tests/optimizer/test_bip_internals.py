"""Focused tests on BIP encoding details and edge cases."""

import pytest

from repro.cost import CassandraCostModel
from repro.indexes import entity_fetch_index, materialized_view_for
from repro.optimizer import BIPOptimizer, OptimizationProblem
from repro.optimizer.bip import _Program
from repro.planner import QueryPlanner, UpdatePlanner
from repro.workload import parse_statement


def _single_query_problem(hotel, weight=1.0):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?",
        label="q")
    view = materialized_view_for(query)
    fetch = entity_fetch_index(hotel.entity("Guest"))
    planner = QueryPlanner(hotel, [view, fetch])
    plans = planner.plans_for(query)
    cost_model = CassandraCostModel()
    for plan in plans:
        cost_model.cost_plan(plan)
    return OptimizationProblem({query: plans}, {}, {"q": weight})


def test_program_dimensions(hotel):
    problem = _single_query_problem(hotel)
    program = _Program(problem)
    plan_count = sum(len(p) for p in problem.query_plans.values())
    assert program.columns == len(problem.indexes) + plan_count
    # exactly-one row + aggregated link rows
    assert len(program._lower) >= 1 + len(problem.indexes)


def test_objective_scales_with_weight(hotel):
    light = BIPOptimizer().solve(_single_query_problem(hotel, 1.0))
    heavy = BIPOptimizer().solve(_single_query_problem(hotel, 7.0))
    assert heavy.total_cost == pytest.approx(7 * light.total_cost,
                                             rel=1e-6)
    assert {i.key for i in heavy.indexes} == {i.key
                                              for i in light.indexes}


def test_update_only_problem_selects_nothing(hotel):
    """With no queries, the cheapest schema is empty: updates then
    modify nothing and cost nothing."""
    update = parse_statement(
        hotel,
        "UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?",
        label="u")
    pool = [entity_fetch_index(hotel.entity("Guest"))]
    planner = QueryPlanner(hotel, pool)
    update_planner = UpdatePlanner(hotel, planner)
    update_plans = update_planner.plan_all([update])
    cost_model = CassandraCostModel()
    for plans in update_plans.values():
        for plan in plans:
            cost_model.cost_update_plan(plan)
    problem = OptimizationProblem({}, update_plans, {"u": 1.0})
    result = BIPOptimizer().solve(problem)
    assert result.indexes == ()
    assert result.total_cost == pytest.approx(0.0, abs=1e-9)


def test_time_limit_returns_incumbent(hotel):
    problem = _single_query_problem(hotel)
    # an absurdly small limit still returns a feasible incumbent (tiny
    # problems are solved in presolve) rather than crashing
    result = BIPOptimizer(time_limit=0.05).solve(problem)
    assert result.query_plans


def test_two_phase_drops_redundant_index(hotel):
    """If a plan exists using a strict subset of column families at the
    same cost, phase two must prefer the smaller schema."""
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?",
        label="q")
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    plans = planner.plans_for(query)
    cost_model = CassandraCostModel()
    for plan in plans:
        cost_model.cost_plan(plan)
    problem = OptimizationProblem({query: plans}, {}, {"q": 1.0})
    result = BIPOptimizer().solve(problem)
    assert len(result.indexes) == 1


def test_mip_gap_zero_is_exact(hotel):
    exact = BIPOptimizer(mip_rel_gap=0.0).solve(
        _single_query_problem(hotel))
    loose = BIPOptimizer(mip_rel_gap=0.1).solve(
        _single_query_problem(hotel))
    # a loose gap may stop early but never below the true optimum
    assert loose.total_cost >= exact.total_cost - 1e-9
