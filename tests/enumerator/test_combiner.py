"""Unit tests for the Combine step (§IV-A3)."""

from repro.enumerator import combine_candidates
from repro.indexes import Index, entity_fetch_index


def _fetch(hotel, *field_names):
    entity = hotel.entity("Guest")
    return entity_fetch_index(entity, [entity[name]
                                       for name in field_names])


def test_combines_same_hash_no_clustering_different_values(hotel):
    left = _fetch(hotel, "GuestName")
    right = _fetch(hotel, "GuestEmail")
    merged = combine_candidates({left, right})
    assert len(merged) == 1
    (combined,) = merged
    assert set(combined.hash_fields) == set(left.hash_fields)
    assert {f.name for f in combined.extra_fields} == {"GuestName",
                                                       "GuestEmail"}


def test_does_not_combine_with_clustering_keys(hotel):
    guest_id = hotel.field("Guest", "GuestID")
    name = hotel.field("Guest", "GuestName")
    email = hotel.field("Guest", "GuestEmail")
    clustered = Index((guest_id,), (name,), (), hotel.path(["Guest"]))
    plain = Index((guest_id,), (), (email,), hotel.path(["Guest"]))
    assert combine_candidates({clustered, plain}) == set()


def test_does_not_combine_different_hash_keys(hotel):
    left = _fetch(hotel, "GuestName")
    name = hotel.field("Guest", "GuestName")
    email = hotel.field("Guest", "GuestEmail")
    other = Index((name,), (), (email,), hotel.path(["Guest"]))
    assert combine_candidates({left, other}) == set()


def test_does_not_combine_identical_value_sets(hotel):
    left = _fetch(hotel, "GuestName")
    assert combine_candidates({left}) == set()
    twin = _fetch(hotel, "GuestName")
    assert combine_candidates({left, twin}) == set()


def test_does_not_combine_across_paths(hotel):
    guest_id = hotel.field("Guest", "GuestID")
    name = hotel.field("Guest", "GuestName")
    res_date = hotel.field("Reservation", "ResStartDate")
    single = Index((guest_id,), (), (name,), hotel.path(["Guest"]))
    longer = Index((guest_id,), (), (res_date,),
                   hotel.path(["Guest", "Reservations"]))
    assert combine_candidates({single, longer}) == set()


def test_combined_candidate_not_duplicated(hotel):
    left = _fetch(hotel, "GuestName")
    right = _fetch(hotel, "GuestEmail")
    both = _fetch(hotel, "GuestName", "GuestEmail")
    merged = combine_candidates({left, right, both})
    assert both not in merged
    assert merged == set()


def test_combine_is_deterministic(hotel):
    pool = {_fetch(hotel, "GuestName"), _fetch(hotel, "GuestEmail")}
    first = combine_candidates(pool)
    second = combine_candidates(pool)
    assert {i.key for i in first} == {i.key for i in second}
