"""Unit tests for Modifies? and support-query generation (§VI)."""

import pytest

from repro.enumerator import modified_row_counts, modifies, support_queries
from repro.indexes import entity_fetch_index, materialized_view_for
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


@pytest.fixture()
def fig3_view(hotel):
    return materialized_view_for(parse_statement(hotel, FIG3))


def _stmt(hotel, text):
    return parse_statement(hotel, text)


def test_update_modifies_only_indexes_with_set_fields(hotel, fig3_view):
    update = _stmt(hotel, "UPDATE Guest SET GuestName = ? "
                          "WHERE Guest.GuestID = ?")
    assert modifies(update, fig3_view)
    other = entity_fetch_index(hotel.entity("Room"))
    assert not modifies(other, other) is None  # sanity: call signature
    assert not modifies(update, other)


def test_delete_modifies_indexes_containing_entity(hotel, fig3_view):
    delete = _stmt(hotel, "DELETE FROM Guest WHERE Guest.GuestID = ?")
    assert modifies(delete, fig3_view)
    assert modifies(delete, entity_fetch_index(hotel.entity("Guest")))
    assert not modifies(delete, entity_fetch_index(hotel.entity("Room")))


def test_insert_requires_connections_for_multi_entity_indexes(hotel,
                                                              fig3_view):
    bare = _stmt(hotel, "INSERT INTO Reservation SET ResID = ?")
    assert not modifies(bare, fig3_view)
    connected = _stmt(hotel,
                      "INSERT INTO Reservation SET ResID = ? "
                      "AND CONNECT TO Guest(?g), Room(?r)")
    assert modifies(connected, fig3_view)


def test_insert_modifies_own_entity_index(hotel):
    insert = _stmt(hotel, "INSERT INTO Guest SET GuestName = ?")
    assert modifies(insert, entity_fetch_index(hotel.entity("Guest")))
    assert not modifies(insert, entity_fetch_index(hotel.entity("Room")))


def test_connect_modifies_indexes_using_edge(hotel, fig3_view):
    connect = _stmt(hotel, "CONNECT Guest(?g) TO Reservations(?r)")
    assert modifies(connect, fig3_view)
    poi_index = entity_fetch_index(hotel.entity("PointOfInterest"))
    assert not modifies(connect, poi_index)
    other_edge = _stmt(hotel, "CONNECT Hotel(?h) TO PointsOfInterest(?p)")
    assert not modifies(other_edge, fig3_view)


def test_update_support_queries_fetch_full_records(hotel, fig3_view):
    update = _stmt(hotel, "UPDATE Guest SET GuestName = ? "
                          "WHERE Guest.GuestID = ?")
    queries = support_queries(update, fig3_view)
    assert queries
    selected = {field.id for query in queries for field in query.select}
    # must locate the clustering values on other entities (e.g. the
    # room rate and path ids) to rewrite the affected records
    assert "Room.RoomRate" in selected
    for query in queries:
        assert query.is_support
        assert query.update is update
        assert query.index is fig3_view
        assert query.eq_conditions


def test_no_support_needed_when_keys_given(hotel):
    update = _stmt(hotel, "UPDATE Guest SET GuestName = ?new "
                          "WHERE Guest.GuestID = ?g")
    index = entity_fetch_index(hotel.entity("Guest"),
                               [hotel.field("Guest", "GuestName")])
    assert modifies(update, index)
    assert support_queries(update, index) == []


def test_update_on_unmodified_index_has_no_support(hotel, fig3_view):
    update = _stmt(hotel, "UPDATE Amenity SET AmenityName = ? "
                          "WHERE Amenity.AmenityID = ?")
    assert support_queries(update, fig3_view) == []


def test_delete_support_covers_path_keys(hotel, fig3_view):
    delete = _stmt(hotel, "DELETE FROM Guest WHERE Guest.GuestID = ?")
    queries = support_queries(delete, fig3_view)
    selected = {field.id for query in queries for field in query.select}
    assert "Room.RoomID" in selected
    assert "Hotel.HotelCity" in selected


def test_insert_support_anchors_at_connected_entity(hotel, fig3_view):
    insert = _stmt(hotel,
                   "INSERT INTO Reservation SET ResID = ? "
                   "AND CONNECT TO Guest(?guest), Room(?room)")
    queries = support_queries(insert, fig3_view)
    # values already given (ResID, GuestID via connection) need no query;
    # the hotel-side attributes do
    assert queries
    for query in queries:
        (condition,) = query.conditions
        assert condition.field.id in ("Room.RoomID", "Guest.GuestID")


def test_connect_support_selects_both_sides(hotel, fig3_view):
    connect = _stmt(hotel, "CONNECT Reservation(?r) TO Room(?room)")
    queries = support_queries(connect, fig3_view)
    anchors = {query.conditions[0].field.id for query in queries}
    assert anchors <= {"Reservation.ResID", "Room.RoomID"}
    assert len(queries) >= 2


def test_modified_row_counts(hotel, fig3_view):
    guest_rows = fig3_view.entries / hotel.entity("Guest").count
    update = _stmt(hotel, "UPDATE Guest SET GuestName = ? "
                          "WHERE Guest.GuestID = ?")
    deleted, inserted = modified_row_counts(update, fig3_view)
    assert deleted == pytest.approx(max(guest_rows, 1.0))
    assert inserted == pytest.approx(max(guest_rows, 1.0))
    delete = _stmt(hotel, "DELETE FROM Guest WHERE Guest.GuestID = ?")
    deleted, inserted = modified_row_counts(delete, fig3_view)
    assert inserted == 0.0
    assert deleted > 0
    insert = _stmt(hotel,
                   "INSERT INTO Reservation SET ResID = ? "
                   "AND CONNECT TO Guest(?g), Room(?r)")
    deleted, inserted = modified_row_counts(insert, fig3_view)
    assert deleted == 0.0
    assert inserted >= 1.0


def test_modified_row_counts_zero_when_unmodified(hotel, fig3_view):
    update = _stmt(hotel, "UPDATE Amenity SET AmenityName = ? "
                          "WHERE Amenity.AmenityID = ?")
    assert modified_row_counts(update, fig3_view) == (0.0, 0.0)


def test_disconnect_counts_mirror_connect(hotel, fig3_view):
    connect = _stmt(hotel, "CONNECT Guest(?g) TO Reservations(?r)")
    disconnect = _stmt(hotel,
                       "DISCONNECT Guest(?g) FROM Reservations(?r)")
    _, inserted = modified_row_counts(connect, fig3_view)
    deleted, _ = modified_row_counts(disconnect, fig3_view)
    assert deleted == pytest.approx(inserted)
