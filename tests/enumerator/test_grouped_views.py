"""Tests for the GROUP BY extension: grouped materialized views.

The paper leaves GROUP BY exploitation as future work and notes the
expert schema beat NoSE at write-heavy mixes partly because of it
(§VII-A).  With ``CandidateEnumerator(grouped=True)`` the enumerator
emits views whose clustering keeps only the target ID, collapsing
duplicate results — and the executor must maintain them correctly even
when one of several supporting join rows disappears.
"""

import pytest

from repro import Advisor, Workload
from repro.backend import Dataset, ExecutionEngine
from repro.enumerator import CandidateEnumerator
from repro.rubis import rubis_model
from repro.workload import parse_statement

QUERY = ("SELECT Item.ItemID, Item.ItemName FROM Item.Bids.Bidder "
         "WHERE User.UserID = ?user")


@pytest.fixture()
def model():
    return rubis_model(users=300)


def test_grouped_view_enumerated_only_when_enabled(model):
    query = parse_statement(model, QUERY)
    plain = CandidateEnumerator(model).enumerate_query(query)
    grouped = CandidateEnumerator(model,
                                  grouped=True).enumerate_query(query)
    assert plain < grouped

    def is_grouped(index):
        order_ids = [f.id for f in index.order_fields]
        return (len(index.path) == 3
                and [f.id for f in index.hash_fields] == ["User.UserID"]
                and order_ids == ["Item.ItemID"])
    assert not any(is_grouped(index) for index in plain)
    assert any(is_grouped(index) for index in grouped)


def test_grouped_view_store_collapses_duplicates(model):
    """Two bids by one user on one item give ONE stored row."""
    query = parse_statement(model, QUERY)
    pool = CandidateEnumerator(model, grouped=True).enumerate_query(query)
    target = next(index for index in pool
                  if [f.id for f in index.order_fields]
                  == ["Item.ItemID"]
                  and [f.id for f in index.hash_fields]
                  == ["User.UserID"])
    dataset = _tiny_dataset(model)
    from repro.backend import Store
    from repro.backend.dataset import materialize_rows
    store = Store()
    column_family = store.create(target)
    column_family.put_many(materialize_rows(dataset, target),
                           charge=False)
    # user 1 bid twice on item 1 and once on item 2 -> two rows
    assert len(column_family.get((1,), charge=False)) == 2


def _tiny_dataset(model):
    dataset = Dataset(model)
    dataset.add_row("User", {"UserID": 1, "UserFirstName": "a",
                             "UserLastName": "b", "UserNickname": "n1",
                             "UserPassword": "p", "UserEmail": "e",
                             "UserRating": 0, "UserBalance": 0.0,
                             "UserCreationDate": None})
    for item in (1, 2):
        dataset.add_row("Item", {
            "ItemID": item, "ItemName": f"item-{item}",
            "ItemDescription": "d", "InitialPrice": 1.0,
            "ItemQuantity": 1, "ReservePrice": 1.0, "BuyNowPrice": 1.0,
            "NbOfBids": 0, "MaxBid": 0.0, "StartDate": None,
            "EndDate": None})
    for bid, item in ((10, 1), (11, 1), (12, 2)):
        dataset.add_row("Bid", {"BidID": bid, "BidQty": 1,
                                "BidAmount": 5.0, "BidDate": None})
        dataset.connect("User", 1, "Bids", bid)
        dataset.connect("Item", item, "Bids", bid)
    return dataset


def test_grouped_view_survives_partial_delete(model):
    """Deleting ONE of two bids must keep the grouped (user, item) row;
    deleting the second removes it."""
    query = parse_statement(model, QUERY, label="items_bid_on")
    workload = Workload(model)
    workload.add_statement(query, weight=5.0)
    delete = workload.add_statement(
        "DELETE FROM Bid WHERE Bid.BidID = ?bid", weight=1.0,
        label="delete_bid")
    dataset = _tiny_dataset(model)
    dataset.sync_counts()
    advisor = Advisor(model,
                      enumerator=CandidateEnumerator(model, grouped=True))
    recommendation = advisor.recommend(workload)
    engine = ExecutionEngine(model, recommendation, dataset)
    engine.load()

    def items_of_user():
        rows = engine.execute_query(query, {"user": 1})
        return {row["Item.ItemID"] for row in rows}

    assert items_of_user() == {1, 2}
    engine.execute_update(delete, {"bid": 10})
    assert items_of_user() == {1, 2}, \
        "item 1 still has bid 11 from user 1"
    engine.execute_update(delete, {"bid": 11})
    assert items_of_user() == {2}
    engine.execute_update(delete, {"bid": 12})
    assert items_of_user() == set()


def test_grouped_enumeration_improves_write_heavy_cost(model):
    """With grouping, the advisor can beat its paper-faithful self on a
    write-heavy workload containing the AboutMe-style query."""
    workload = Workload(model)
    workload.add_statement(QUERY, weight=2.0, label="items_bid_on")
    workload.add_statement(
        "INSERT INTO Bid SET BidID = ?, BidQty = ?, BidAmount = ?, "
        "BidDate = ? AND CONNECT TO Bidder(?user), Item(?item)",
        weight=100.0, label="store_bid")
    plain = Advisor(model).recommend(workload)
    grouped = Advisor(
        model,
        enumerator=CandidateEnumerator(model,
                                       grouped=True)).recommend(workload)
    assert grouped.total_cost <= plain.total_cost * 1.001
