"""Unit tests for candidate enumeration (§IV-A)."""

import pytest

from repro.enumerator import CandidateEnumerator
from repro.indexes import materialized_view_for
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


@pytest.fixture()
def enumerator(hotel):
    return CandidateEnumerator(hotel)


def test_materialized_view_always_enumerated(hotel, enumerator,
                                             hotel_queries):
    for query in hotel_queries.queries:
        pool = enumerator.enumerate_query(query)
        assert materialized_view_for(query) in pool


def test_id_only_variant_enumerated(hotel, enumerator):
    query = parse_statement(hotel, FIG3)
    pool = enumerator.enumerate_query(query)
    from repro.indexes import id_index_for
    assert id_index_for(query) in pool


def test_fetch_indexes_enumerated(hotel, enumerator):
    query = parse_statement(hotel, FIG3)
    pool = enumerator.enumerate_query(query)
    fetches = [index for index in pool
               if len(index.path) == 1
               and index.path.first.name == "Guest"]
    # both the select-field fetch and the all-attribute fetch
    assert any({f.name for f in index.extra_fields}
               == {"GuestName", "GuestEmail"} for index in fetches)


def test_relaxed_range_variants(hotel, enumerator):
    """§IV-A2: the enumerator emits candidates with the range attribute
    moved out of the clustering key (CF2-style) and into the values."""
    query = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate")
    pool = enumerator.enumerate_query(query)
    rate_positions = set()
    for index in pool:
        if [f.id for f in index.hash_fields] != ["Hotel.HotelCity"]:
            continue
        order_ids = [f.id for f in index.order_fields]
        extra_ids = [f.id for f in index.extra_fields]
        if "Room.RoomRate" in order_ids:
            rate_positions.add("clustering")
        elif "Room.RoomRate" in extra_ids:
            rate_positions.add("values")
        else:
            rate_positions.add("absent")
    assert rate_positions == {"clustering", "values", "absent"}


def test_relaxation_disabled(hotel):
    query = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate")
    strict = CandidateEnumerator(hotel, relax=False)
    pool = strict.enumerate_query(query)
    for index in pool:
        if [f.id for f in index.hash_fields] == ["Hotel.HotelCity"] \
                and len(index.path) > 1:
            assert "Room.RoomRate" in [f.id for f in index.order_fields]


def test_order_relaxation_variant(hotel, enumerator):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Hotel.HotelName")
    pool = enumerator.enumerate_query(query)
    placements = set()
    for index in pool:
        if [f.id for f in index.hash_fields] != ["Hotel.HotelCity"]:
            continue
        if index.order_fields and index.order_fields[0].name == "HotelName":
            placements.add("clustering")
        elif any(f.name == "HotelName" for f in index.extra_fields):
            placements.add("values")
    assert placements == {"clustering", "values"}


def test_hash_entity_variants(hotel, enumerator):
    """Fig 9 style: equality predicates on two entities yield views
    hashed on either entity."""
    query = parse_statement(
        hotel,
        "SELECT Room.RoomRate FROM Room.Hotel.PointsOfInterest "
        "WHERE Room.RoomNumber = ?floor "
        "AND PointOfInterest.POIID = ?poi")
    pool = enumerator.enumerate_query(query)
    hash_ids = {tuple(f.id for f in index.hash_fields)
                for index in pool if len(index.path) == 3}
    assert ("Room.RoomNumber",) in hash_ids
    assert ("PointOfInterest.POIID",) in hash_ids


def test_join_segments_enumerated(hotel, enumerator):
    query = parse_statement(hotel, FIG3)
    pool = enumerator.enumerate_query(query)
    segments = {tuple(entity.name for entity in index.path.entities)
                for index in pool}
    # interior join segment Room -> Reservation -> Guest, keyed by RoomID
    assert ("Room", "Reservations".replace("Reservations", "Reservation"),
            "Guest") in segments


def test_workload_enumeration_covers_support_paths(hotel, hotel_full,
                                                   enumerator):
    pool = enumerator.candidates(hotel_full)
    # deleting a guest requires locating reservations and rooms from the
    # guest side: some candidate must be keyed by GuestID over a path
    guest_keyed = [index for index in pool
                   if [f.id for f in index.hash_fields]
                   == ["Guest.GuestID"] and len(index.path) > 1]
    assert guest_keyed


def test_workload_enumeration_is_deterministic(hotel, hotel_full):
    first = CandidateEnumerator(hotel).candidates(hotel_full)
    second = CandidateEnumerator(hotel).candidates(hotel_full)
    assert [index.key for index in first] == [index.key
                                              for index in second]


def test_combine_disabled_is_subset(hotel, hotel_full):
    with_combine = set(CandidateEnumerator(hotel).candidates(hotel_full))
    without = set(CandidateEnumerator(hotel,
                                      combine=False).candidates(hotel_full))
    assert without <= with_combine


def test_combined_candidates_get_support_queries():
    """Regression: Combine runs after the support-enumeration rounds,
    so a combine-merged candidate that an update modifies used to reach
    the planner with no enumerated support candidates — recommend()
    raised PlanningError for its maintenance plan (found by the
    differential fuzzer).  The post-combine support pass must close the
    gap for any seed."""
    from repro import Advisor
    from repro.randgen import random_model, random_workload
    model = random_model(entities=4, seed=55436)
    workload = random_workload(model, queries=5, updates=2, inserts=1,
                               seed=55436)
    # before the closure fix this raised PlanningError while building
    # u0's maintenance plan
    recommendation = Advisor(model, max_plans=100).recommend(workload)
    assert len(recommendation.query_plans) == len(workload.queries)
    for _update, plans in recommendation.update_plans.items():
        assert plans  # every maintained update has a complete plan
