"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_hotel_demo_runs(capsys):
    assert main(["--demo", "hotel", "--cost-model", "simple"]) == 0
    output = capsys.readouterr().out
    assert "Recommended schema" in output
    assert "Plan for" in output


def test_timing_flag(capsys):
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--timing"]) == 0
    output = capsys.readouterr().out
    assert "Stage timing" in output
    assert "bip_solving" in output


def test_cql_flag(capsys):
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--cql"]) == 0
    output = capsys.readouterr().out
    assert "CREATE TABLE" in output
    assert "PRIMARY KEY" in output


def test_output_json_flag(tmp_path, capsys):
    target = tmp_path / "recommendation.json"
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--output-json", str(target)]) == 0
    import json
    document = json.loads(target.read_text())
    assert document["indexes"]
    assert document["query_plans"]


def test_space_limit_flag(capsys):
    assert main(["--demo", "hotel", "--space-limit", "1e9"]) == 0
    assert "Recommended schema" in capsys.readouterr().out


def test_workload_module_loading(tmp_path, capsys):
    module = tmp_path / "tiny_workload.py"
    module.write_text(
        "from repro.demo import hotel_model, hotel_workload\n"
        "def build():\n"
        "    model = hotel_model()\n"
        "    return model, hotel_workload(model, include_updates=False)\n")
    assert main(["--model", str(module)]) == 0
    assert "Recommended schema" in capsys.readouterr().out


def test_workload_module_without_build_fails(tmp_path, capsys):
    module = tmp_path / "broken.py"
    module.write_text("x = 1\n")
    assert main(["--model", str(module)]) == 1
    assert "error" in capsys.readouterr().err


def test_workload_module_build_exception_is_reported(tmp_path, capsys):
    # a crashing build() must not escape as a raw traceback
    module = tmp_path / "crashy.py"
    module.write_text(
        "def build():\n"
        "    raise RuntimeError('boom at build time')\n")
    assert main(["--model", str(module)]) == 1
    error = capsys.readouterr().err
    assert error.startswith("error:")
    assert "boom at build time" in error


def test_workload_module_import_error_is_reported(tmp_path, capsys):
    module = tmp_path / "unimportable.py"
    module.write_text("import not_a_real_module_xyz\n")
    assert main(["--model", str(module)]) == 1
    error = capsys.readouterr().err
    assert error.startswith("error:")
    assert "failed to import" in error


def test_trace_flag_prints_run_report(capsys):
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--trace"]) == 0
    output = capsys.readouterr().out
    assert "run report" in output
    assert "recommend" in output
    assert "enumerator.queries" in output


def test_metrics_out_writes_round_trippable_report(tmp_path, capsys):
    target = tmp_path / "telemetry.json"
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--metrics-out", str(target)]) == 0
    assert "telemetry report written" in capsys.readouterr().out
    from repro.io import load_run_report
    report = load_run_report(target)
    assert report.meta["enabled"] is True
    assert report.stage_totals()["recommend"] > 0
    assert report.metrics["counters"]["enumerator.queries"] > 0


def test_trace_respects_kill_switch(monkeypatch, capsys):
    monkeypatch.setenv("NOSE_TELEMETRY", "0")
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--trace"]) == 0
    output = capsys.readouterr().out
    assert "telemetry disabled" in output
    assert "run report" not in output


def test_metrics_out_skipped_when_telemetry_disabled(monkeypatch,
                                                     tmp_path, capsys):
    monkeypatch.setenv("NOSE_TELEMETRY", "0")
    target = tmp_path / "telemetry.json"
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--metrics-out", str(target)]) == 0
    output = capsys.readouterr().out
    assert "telemetry disabled" in output
    assert not target.exists()


def test_explain_flag_prints_provenance_and_terms(capsys):
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--explain"]) == 0
    output = capsys.readouterr().out
    assert "explain:" in output
    assert "materialize" in output
    assert "after pruning" in output


def test_output_json_is_an_explain_document(tmp_path):
    target = tmp_path / "recommendation.json"
    assert main(["--demo", "hotel", "--cost-model", "simple",
                 "--output-json", str(target)]) == 0
    import json
    document = json.loads(target.read_text())
    assert document["format"] == "nose-explain/1"
    assert document["statements"]


def _write_documents(tmp_path):
    import json
    base = tmp_path / "base.json"
    other = tmp_path / "other.json"
    base.write_text(json.dumps(
        {"total_cost": 10.0, "indexes": [{"key": "ia", "triple": ""}],
         "statements": {}}))
    other.write_text(json.dumps(
        {"total_cost": 12.0, "indexes": [{"key": "ib", "triple": ""}],
         "statements": {}}))
    return base, other


def test_diff_subcommand_reports_changes(tmp_path, capsys):
    base, other = _write_documents(tmp_path)
    assert main(["diff", str(base), str(other)]) == 0
    output = capsys.readouterr().out
    assert "recommendation diff" in output
    assert "+20.00%" in output
    assert "+ ib" in output
    assert "- ia" in output


def test_diff_fail_on_regression_exceeded(tmp_path, capsys):
    base, other = _write_documents(tmp_path)
    assert main(["diff", str(base), str(other),
                 "--fail-on-regression", "10"]) == 2
    assert "exceeds" in capsys.readouterr().err


def test_diff_fail_on_regression_within_threshold(tmp_path, capsys):
    base, other = _write_documents(tmp_path)
    assert main(["diff", str(base), str(other),
                 "--fail-on-regression", "25"]) == 0
    assert capsys.readouterr().err == ""


def test_diff_missing_file_is_an_error(tmp_path, capsys):
    base, _other = _write_documents(tmp_path)
    assert main(["diff", str(base), str(tmp_path / "missing.json")]) == 1
    assert "error:" in capsys.readouterr().err


def test_unknown_demo_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--demo", "bogus"])


def test_requires_a_source():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_verify_hotel_demo(capsys):
    assert main(["verify", "--demo", "hotel", "--scale", "0.01",
                 "--rounds", "1", "--protocols", "nose",
                 "--max-plans", "40"]) == 0
    output = capsys.readouterr().out
    assert "== hotel ==" in output
    assert "verdict: OK" in output


def test_verify_fuzz_mode_writes_report(tmp_path, capsys):
    target = tmp_path / "verify.json"
    assert main(["verify", "--fuzz", "1", "--seed", "3",
                 "--entities", "3", "--max-plans", "40",
                 "--output-json", str(target)]) == 0
    import json
    document = json.loads(target.read_text())
    assert document["ok"] is True
    trials = document["targets"]["fuzz"]["trials"]
    assert trials and all(trial["ok"] for trial in trials)
    output = capsys.readouterr().out
    assert "trial seed" in output


def test_verify_source_flags_are_exclusive():
    from repro.cli import build_verify_parser
    with pytest.raises(SystemExit):
        build_verify_parser().parse_args(["--demo", "hotel",
                                          "--fuzz", "2"])


def test_profile_hotel_demo_writes_document(tmp_path, capsys):
    target = tmp_path / "profile.json"
    assert main(["profile", "--demo", "hotel", "--scale", "0.01",
                 "--requests", "60", "--max-plans", "60",
                 "--output-json", str(target)]) == 0
    output = capsys.readouterr().out
    assert "execution profile" in output
    assert "rank correlation" in output
    import json
    document = json.loads(target.read_text())
    assert document["format"] == "nose-profile/1"
    assert document["workload"]["requests"] >= 60
    assert document["workload"]["rank_correlation"] is not None
    for record in document["statements"].values():
        measured = record["measured"]
        assert measured["p50_ms"] is not None
        assert "rows_scanned" in measured
        assert "partitions_touched" in measured
    # stable, diffable JSON: dumping the loaded document reproduces
    # the file byte for byte
    from repro.io import dump_profile, load_profile
    again = tmp_path / "again.json"
    dump_profile(load_profile(target), again)
    assert target.read_text() == again.read_text()


def test_profile_rejects_bad_protocol():
    from repro.cli import build_profile_parser
    with pytest.raises(SystemExit):
        build_profile_parser().parse_args(["--protocol", "bogus"])
