"""Tests for the windowed schema advisor."""

import pytest

from repro import Advisor
from repro.demo import hotel_model, hotel_workload
from repro.exceptions import OptimizationError, WorkloadError
from repro.io import dump_windows, load_windows
from repro.tools import MigrationCostModel
from repro.windows import (
    WindowSchedule,
    recommend_windows,
    replan_from_monitor,
)

TOLERANCE = 1e-6


@pytest.fixture(scope="module")
def phased():
    """A hotel workload with a quiet phase and a write-heavy phase."""
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    # registers the "writes" mix on the same workload object
    workload.scale_weights(50, mix="writes")
    schedule = WindowSchedule([("default", 400.0), ("writes", 400.0),
                               ("default", 400.0)])
    return model, workload, schedule


def _totals(recommendation):
    best = min(entry["total"]
               for entry in recommendation.baselines.values())
    return recommendation.total_cost, best


def test_windowed_never_worse_than_either_baseline(phased):
    model, workload, schedule = phased
    recommendation = recommend_windows(Advisor(model), workload,
                                       schedule)
    total, best = _totals(recommendation)
    assert total <= best * (1 + TOLERANCE) + TOLERANCE
    assert len(recommendation.windows) == len(schedule)
    for result, window in zip(recommendation.windows, schedule):
        assert result.window.label == window.label
        assert result.serving_cost > 0
        assert result.indexes


def test_huge_migration_cost_holds_one_schema(phased):
    model, workload, schedule = phased
    pricing = MigrationCostModel(row_cost=1e9)
    recommendation = recommend_windows(Advisor(model), workload,
                                       schedule,
                                       migration_model=pricing)
    first = set(recommendation.windows[0].keys)
    for result in recommendation.windows[1:]:
        assert set(result.keys) == first
        assert result.migration.is_noop
        assert result.migration_cost == 0.0
    # holding one schema is exactly the static strategy
    static = recommendation.baselines["static"]["total"]
    assert recommendation.total_cost \
        <= static * (1 + TOLERANCE) + TOLERANCE


def test_free_migrations_track_naive_per_window(phased):
    model, workload, schedule = phased
    pricing = MigrationCostModel(row_cost=0.0)
    recommendation = recommend_windows(Advisor(model), workload,
                                       schedule,
                                       migration_model=pricing)
    assert recommendation.migration_cost == 0.0
    naive = recommendation.baselines["naive_per_window"]
    assert recommendation.serving_cost \
        <= naive["serving"] * (1 + TOLERANCE) + TOLERANCE


def test_initial_schema_makes_first_window_cheaper(phased):
    model, workload, schedule = phased
    advisor = Advisor(model)
    cold = recommend_windows(advisor, workload, schedule)
    # hand the cold run's first-window schema in as already built
    warm = recommend_windows(advisor, workload, schedule,
                             initial=cold.windows[0].indexes)
    assert warm.migration_cost < cold.migration_cost
    held = {index.key for index in warm.initial}
    assert not set(
        index.key for index in warm.windows[0].migration.create) & held


def test_unknown_window_mix_raises(phased):
    model, workload, _schedule = phased
    with pytest.raises(WorkloadError, match="known mixes"):
        recommend_windows(Advisor(model), workload,
                          [("defualt", 100.0)])


def test_document_round_trips_byte_stable(phased, tmp_path):
    model, workload, schedule = phased
    meta = {"source": "test"}
    serial = recommend_windows(Advisor(model), workload, schedule)
    threaded = recommend_windows(Advisor(model, jobs=2), workload,
                                 schedule, jobs=2)
    first = dump_windows(serial.document(meta=meta),
                         tmp_path / "serial.json")
    second = dump_windows(threaded.document(meta=meta),
                          tmp_path / "jobs2.json")
    serial_bytes = (tmp_path / "serial.json").read_bytes()
    assert serial_bytes == (tmp_path / "jobs2.json").read_bytes()
    document = load_windows(first)
    assert document["format"] == "nose-windows/1"
    assert document["totals"]["total_cost"] == pytest.approx(
        serial.total_cost, rel=1e-5)
    assert first != second


def test_load_windows_rejects_untagged_documents(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{\"windows\": []}\n")
    with pytest.raises(ValueError, match="missing 'format'"):
        load_windows(bogus)


def test_replan_from_monitor_decides_for_observed_mix(phased):
    model, workload, _schedule = phased
    advisor = Advisor(model)
    standing = advisor.recommend(workload)
    observed = {label: workload.weight(label, mix="writes")
                for label in workload.statements}
    decision = replan_from_monitor(advisor, workload, standing,
                                   observed, requests=500.0)
    assert len(decision.windows) == 1
    total, best = _totals(decision)
    assert total <= best * (1 + TOLERANCE) + TOLERANCE
    # the old schema is the starting point the migration is priced from
    assert {index.key for index in decision.initial} \
        == {index.key for index in standing.indexes}
    with pytest.raises(OptimizationError, match="empty observation"):
        replan_from_monitor(advisor, workload, standing,
                            {label: 0.0 for label in observed})
