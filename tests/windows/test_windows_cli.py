"""Tests for the ``nose-advisor windows`` subcommand and monitor bridge."""

import pytest

from repro.cli import main
from repro.io import load_windows

MODULE_SOURCE = """\
from repro.demo import hotel_model, hotel_workload

def build():
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    workload.scale_weights(50, mix="writes")
    return model, workload
"""


@pytest.fixture()
def workload_module(tmp_path):
    module = tmp_path / "phased_workload.py"
    module.write_text(MODULE_SOURCE)
    return str(module)


def test_windows_subcommand_on_module(workload_module, tmp_path,
                                      capsys):
    target = tmp_path / "windows.json"
    assert main(["windows", "--model", workload_module,
                 "--windows", "default:400,writes:400",
                 "--timing", "--output-json", str(target)]) == 0
    output = capsys.readouterr().out
    assert "windowed schema schedule" in output
    assert "baselines (same evaluator)" in output
    assert "Stage timing" in output
    document = load_windows(target)
    assert document["format"] == "nose-windows/1"
    assert [entry["mix"] for entry in document["schedule"]] \
        == ["default", "writes"]
    best = min(entry["total_cost"]
               for entry in document["baselines"].values())
    assert document["totals"]["total_cost"] <= best + 1e-6


def test_windows_requires_a_spec_with_model(workload_module, capsys):
    assert main(["windows", "--model", workload_module]) == 1
    assert "--windows" in capsys.readouterr().err


def test_windows_rejects_unknown_mix(workload_module, capsys):
    assert main(["windows", "--model", workload_module,
                 "--windows", "nightly:100"]) == 1
    assert "known mixes" in capsys.readouterr().err


def test_windows_demo_smoke(tmp_path, capsys):
    # tiny RUBiS scale so the smoke stays fast; CI runs the full one
    target = tmp_path / "windows-rubis.json"
    assert main(["windows", "--demo", "rubis-drift", "--users", "300",
                 "--windows", "browsing:300,bidding:300",
                 "--output-json", str(target)]) == 0
    document = load_windows(target)
    assert document["meta"]["source"] == "rubis-drift"
    assert len(document["windows"]) == 2


def test_monitor_replan_bridge(tmp_path, capsys):
    target = tmp_path / "replan.json"
    code = main(["monitor", "--demo", "drift", "--requests", "160",
                 "--users", "300", "--replan-requests", "2000",
                 "--replan-out", str(target)])
    assert code in (0, 3)  # drift detection is the demo's point
    output = capsys.readouterr().out
    assert "windowed schema schedule" in output
    document = load_windows(target)
    assert document["meta"]["source"] == "monitor-replan"
    assert len(document["windows"]) == 1


def test_monitor_replan_out_requires_requests(capsys):
    assert main(["monitor", "--demo", "drift",
                 "--replan-out", "x.json"]) == 1
    assert "--replan-requests" in capsys.readouterr().err
