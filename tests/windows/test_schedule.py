"""Tests for workload window schedules."""

import pytest

from repro.demo import hotel_model, hotel_workload
from repro.exceptions import WorkloadError
from repro.windows import WindowSchedule, WorkloadWindow, parse_window_spec


def test_window_requires_nonempty_mix_name():
    with pytest.raises(WorkloadError, match="non-empty string"):
        WorkloadWindow("")
    with pytest.raises(WorkloadError, match="non-empty string"):
        WorkloadWindow(None)


@pytest.mark.parametrize("requests", [0, -5, float("nan"),
                                      float("inf"), "lots"])
def test_window_rejects_bad_request_volumes(requests):
    with pytest.raises(WorkloadError):
        WorkloadWindow("default", requests)


def test_schedule_auto_labels_positionally():
    schedule = WindowSchedule([("browsing", 10), "bidding",
                               WorkloadWindow("browsing", 5,
                                              label="late")])
    assert [window.label for window in schedule] == ["w0", "w1", "late"]
    assert schedule[1].requests == 1.0
    assert len(schedule) == 3
    assert schedule.total_requests == pytest.approx(16.0)


def test_schedule_rejects_duplicate_labels_and_junk():
    with pytest.raises(WorkloadError, match="unique"):
        WindowSchedule([WorkloadWindow("a", label="x"),
                        WorkloadWindow("b", label="x")])
    with pytest.raises(WorkloadError, match="at least one"):
        WindowSchedule([])
    with pytest.raises(WorkloadError, match="not a workload window"):
        WindowSchedule([42])


def test_parse_window_spec_round_trip():
    schedule = parse_window_spec("browsing:800, bidding:1200,browsing")
    assert [(w.mix, w.requests) for w in schedule] == [
        ("browsing", 800.0), ("bidding", 1200.0), ("browsing", 1.0)]
    with pytest.raises(WorkloadError, match="empty window spec"):
        parse_window_spec(" , ")


def test_validate_rejects_unknown_mixes_strictly():
    model = hotel_model()
    workload = hotel_workload(model)
    schedule = WindowSchedule([("default", 10), ("bidding", 10)])
    # the silent DEFAULT_MIX fallback must not apply on this path
    with pytest.raises(WorkloadError, match="known mixes"):
        schedule.validate(workload)
    assert WindowSchedule([("default", 10)]).validate(workload)
