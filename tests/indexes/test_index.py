"""Unit tests for the column-family (Index) abstraction."""

import pytest

from repro.exceptions import ModelError
from repro.indexes import Index


@pytest.fixture()
def fig3_view(hotel):
    """The paper's Fig 3 materialized view, built by hand."""
    path = hotel.path(["Hotel", "Rooms", "Reservations", "Guest"])
    return Index(
        (hotel.field("Hotel", "HotelCity"),),
        (hotel.field("Room", "RoomRate"),
         hotel.field("Guest", "GuestID"),
         hotel.field("Reservation", "ResID"),
         hotel.field("Room", "RoomID"),
         hotel.field("Hotel", "HotelID")),
        (hotel.field("Guest", "GuestName"),
         hotel.field("Guest", "GuestEmail")),
        path)


def test_requires_hash_field(hotel):
    with pytest.raises(ModelError):
        Index((), (hotel.field("Hotel", "HotelID"),), (),
              hotel.path(["Hotel"]))


def test_fields_must_lie_on_path(hotel):
    with pytest.raises(ModelError):
        Index((hotel.field("Guest", "GuestID"),), (), (),
              hotel.path(["Hotel"]))


def test_duplicate_field_rejected(hotel):
    hotel_id = hotel.field("Hotel", "HotelID")
    with pytest.raises(ModelError):
        Index((hotel_id,), (hotel_id,), (), hotel.path(["Hotel"]))


def test_requires_key_path(hotel):
    with pytest.raises(ModelError):
        Index((hotel.field("Hotel", "HotelID"),), (), (), "Hotel")


def test_key_is_deterministic(hotel, fig3_view):
    rebuilt = Index(fig3_view.hash_fields, fig3_view.order_fields,
                    fig3_view.extra_fields, fig3_view.path)
    assert rebuilt.key == fig3_view.key
    assert rebuilt == fig3_view
    assert hash(rebuilt) == hash(fig3_view)


def test_reversed_path_twin_is_equal(hotel, fig3_view):
    twin = Index(fig3_view.hash_fields, fig3_view.order_fields,
                 fig3_view.extra_fields, fig3_view.path.reverse())
    assert twin == fig3_view


def test_field_groups(fig3_view):
    assert len(fig3_view.key_fields) == 6
    assert len(fig3_view.all_fields) == 8
    assert fig3_view.contains_field(fig3_view.extra_fields[0])
    assert fig3_view.covers(fig3_view.order_fields[:2])


def test_covers_rejects_missing(hotel, fig3_view):
    assert not fig3_view.covers([hotel.field("Hotel", "HotelPhone")])


def test_matches_segment_either_orientation(hotel, fig3_view):
    forward = hotel.path(["Hotel", "Rooms", "Reservations", "Guest"])
    assert fig3_view.matches_segment(forward)
    assert fig3_view.matches_segment(forward.reverse())
    assert not fig3_view.matches_segment(hotel.path(["Hotel", "Rooms"]))


def test_entries_follow_path_cardinality(hotel, fig3_view):
    assert fig3_view.entries == pytest.approx(
        hotel.path(["Hotel", "Rooms", "Reservations",
                    "Guest"]).cardinality)


def test_hash_count_and_partition_size(hotel, fig3_view):
    cities = hotel.field("Hotel", "HotelCity").cardinality
    assert fig3_view.hash_count == pytest.approx(cities)
    assert fig3_view.per_partition_entries == pytest.approx(
        fig3_view.entries / cities)


def test_hash_count_capped_by_entries(hotel):
    # partition key with more combinations than rows
    index = Index((hotel.field("Guest", "GuestID"),
                   hotel.field("Guest", "GuestEmail")), (), (),
                  hotel.path(["Guest"]))
    assert index.hash_count <= index.entries


def test_sizes(hotel, fig3_view):
    per_row = sum(field.size for field in fig3_view.all_fields)
    assert fig3_view.entry_size == per_row
    assert fig3_view.size == pytest.approx(
        per_row * fig3_view.entries)


def test_triple_notation(fig3_view):
    text = fig3_view.triple()
    assert text.startswith("[Hotel.HotelCity][Room.RoomRate")
    assert text.endswith("[Guest.GuestName, Guest.GuestEmail]")
    assert fig3_view.key in repr(fig3_view)
