"""Unit tests for materialized-view construction (§IV-A1)."""

import pytest

from repro.exceptions import ModelError
from repro.indexes import (
    entity_fetch_index,
    id_index_for,
    materialized_view_for,
)
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def test_fig3_materialized_view_matches_paper(hotel):
    """The MV of the running example must be the paper's triple:
    [HotelCity][RoomRate, GuestID (+path IDs)][GuestName, GuestEmail]."""
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    assert [f.id for f in view.hash_fields] == ["Hotel.HotelCity"]
    order_ids = [f.id for f in view.order_fields]
    assert order_ids[0] == "Room.RoomRate"
    assert order_ids[1] == "Guest.GuestID"
    assert set(order_ids[2:]) == {"Reservation.ResID", "Room.RoomID",
                                  "Hotel.HotelID"}
    assert [f.id for f in view.extra_fields] == [
        "Guest.GuestName", "Guest.GuestEmail"]
    # defined over the reversed query path
    assert str(view.path) == "Hotel.Rooms.Reservations.Guest"


def test_hash_entity_defaults_to_deepest_equality(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID = ?g "
        "AND Guest.Reservations.Room.Hotel.HotelCity = ?c")
    view = materialized_view_for(query)
    assert [f.id for f in view.hash_fields] == ["Hotel.HotelCity"]


def test_hash_entity_override(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID = ?g "
        "AND Guest.Reservations.Room.Hotel.HotelCity = ?c")
    view = materialized_view_for(query, hash_entity=hotel.entity("Guest"))
    assert [f.id for f in view.hash_fields] == ["Guest.GuestID"]
    # the other equality leads the clustering key, still bindable by a get
    assert view.order_fields[0].id == "Hotel.HotelCity"


def test_hash_entity_without_equality_rejected(hotel):
    query = parse_statement(hotel, FIG3)
    with pytest.raises(ModelError):
        materialized_view_for(query, hash_entity=hotel.entity("Room"))


def test_order_by_leads_clustering(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Hotel.HotelName")
    view = materialized_view_for(query)
    assert view.order_fields[0].id == "Hotel.HotelName"


def test_single_entity_view_keeps_forward_path(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?")
    view = materialized_view_for(query)
    assert len(view.path) == 1
    assert view.path.first.name == "Guest"


def test_id_index_strips_values(hotel):
    query = parse_statement(hotel, FIG3)
    key_only = id_index_for(query)
    full = materialized_view_for(query)
    assert key_only.hash_fields == full.hash_fields
    assert key_only.order_fields == full.order_fields
    assert key_only.extra_fields == ()
    assert key_only != full


def test_id_index_for_view_without_values(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestID FROM Guest WHERE Guest.GuestID = ?")
    assert id_index_for(query) == materialized_view_for(query)


def test_entity_fetch_index_defaults_to_all_attributes(hotel):
    index = entity_fetch_index(hotel.entity("Guest"))
    assert [f.id for f in index.hash_fields] == ["Guest.GuestID"]
    assert index.order_fields == ()
    assert {f.name for f in index.extra_fields} == {"GuestName",
                                                    "GuestEmail"}


def test_entity_fetch_index_subset(hotel):
    index = entity_fetch_index(hotel.entity("Guest"),
                               [hotel.field("Guest", "GuestName")])
    assert [f.name for f in index.extra_fields] == ["GuestName"]


def test_entity_fetch_index_rejects_foreign_fields(hotel):
    with pytest.raises(ModelError):
        entity_fetch_index(hotel.entity("Guest"),
                           [hotel.field("Room", "RoomRate")])
