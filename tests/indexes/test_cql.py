"""Tests for CQL DDL generation."""

import json

import pytest

from repro import Advisor
from repro.demo import hotel_workload
from repro.indexes import materialized_view_for
from repro.indexes.cql import column_name, cql_type
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def test_cql_types(hotel):
    assert cql_type(hotel.field("Guest", "GuestID")) == "uuid"
    assert cql_type(hotel.field("Guest", "GuestName")) == "text"
    assert cql_type(hotel.field("Room", "RoomRate")) == "double"
    assert cql_type(hotel.field("Room", "RoomNumber")) == "bigint"
    assert cql_type(hotel.field("Reservation",
                                "ResStartDate")) == "timestamp"
    with pytest.raises(TypeError):
        cql_type("not a field")


def test_column_names_flatten(hotel):
    assert column_name(hotel.field("Guest", "GuestName")) \
        == "guest_guestname"


def test_create_table_structure(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    ddl = view.cql()
    assert ddl.startswith(f'CREATE TABLE "{view.key}"')
    assert '"hotel_hotelcity" text' in ddl
    assert '"guest_guestname" text' in ddl
    assert 'PRIMARY KEY (("hotel_hotelcity"), "room_roomrate"' in ddl
    assert ddl.rstrip().endswith(");")


def test_create_table_without_clustering(hotel):
    from repro.indexes import entity_fetch_index
    index = entity_fetch_index(hotel.entity("Guest"))
    ddl = index.cql()
    assert 'PRIMARY KEY (("guest_guestid"))' in ddl


def test_keyspace_prefix(hotel):
    from repro.indexes import entity_fetch_index
    index = entity_fetch_index(hotel.entity("Guest"))
    from repro.indexes.cql import create_table
    ddl = create_table(index, keyspace="rubis")
    assert f'"rubis.{index.key}"' in ddl


def test_recommendation_exports(hotel):
    workload = hotel_workload(hotel, include_updates=False)
    recommendation = Advisor(hotel).recommend(workload)
    ddl = recommendation.as_cql()
    assert ddl.count("CREATE TABLE") == len(recommendation.indexes)
    summary = recommendation.as_dict()
    # must be JSON-serializable and structurally complete
    encoded = json.loads(json.dumps(summary))
    assert encoded["total_cost"] == pytest.approx(
        recommendation.total_cost)
    assert len(encoded["indexes"]) == len(recommendation.indexes)
    assert set(encoded["query_plans"]) \
        == {query.label for query in recommendation.query_plans}


def test_recommendation_export_with_updates(hotel):
    workload = hotel_workload(hotel, include_updates=True)
    recommendation = Advisor(hotel).recommend(workload)
    summary = recommendation.as_dict()
    assert summary["update_plans"]
    for plans in summary["update_plans"].values():
        for plan in plans:
            assert "index" in plan and "steps" in plan
