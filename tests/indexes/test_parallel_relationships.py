"""Regression tests: parallel relationships between the same entities.

RUBiS has two User-Comment relationships (author and recipient).  Column
families over the two paths hold different data and must never be
confused — by identity, by the planner's segment matching, or by the
Combine step.
"""

import pytest

from repro.enumerator import combine_candidates
from repro.indexes import Index
from repro.planner import QueryPlanner
from repro.rubis import rubis_model
from repro.workload import parse_statement


@pytest.fixture(scope="module")
def model():
    return rubis_model(users=500)


def _comment_index(model, relationship):
    user = model.entity("User")
    comment = model.entity("Comment")
    path = model.path(["User", relationship])
    return Index((user["UserID"],), (comment["CommentID"],),
                 (comment["CommentText"],), path)


def test_parallel_relationship_indexes_differ(model):
    written = _comment_index(model, "CommentsWritten")
    received = _comment_index(model, "CommentsReceived")
    assert written != received
    assert written.key != received.key


def test_path_signatures_differ(model):
    written = model.path(["User", "CommentsWritten"])
    received = model.path(["User", "CommentsReceived"])
    assert written.signature != received.signature
    # but each equals its own reverse
    assert written.signature == written.reverse().signature


def test_planner_does_not_cross_relationships(model):
    """A query over comments *received* must not be answered from the
    comments-*written* column family."""
    query = parse_statement(
        model,
        "SELECT Comment.CommentText FROM Comment.Recipient "
        "WHERE User.UserID = ?user")
    written_only = QueryPlanner(model,
                                [_comment_index(model, "CommentsWritten")])
    assert written_only.plans_for(query, require=False) == []
    received_only = QueryPlanner(
        model, [_comment_index(model, "CommentsReceived")])
    plans = received_only.plans_for(query)
    assert plans


def test_combine_does_not_merge_across_relationships(model):
    user = model.entity("User")
    comment = model.entity("Comment")
    written = Index((user["UserID"],), (),
                    (comment["CommentRating"],),
                    model.path(["User", "CommentsWritten"]))
    received = Index((user["UserID"],), (),
                     (comment["CommentText"],),
                     model.path(["User", "CommentsReceived"]))
    assert combine_candidates({written, received}) == set()


def test_matches_segment_respects_edges(model):
    written = _comment_index(model, "CommentsWritten")
    assert written.matches_segment(model.path(["User", "CommentsWritten"]))
    assert written.matches_segment(
        model.path(["Comment", "Author"]))  # same edge, reversed
    assert not written.matches_segment(
        model.path(["User", "CommentsReceived"]))
    assert not written.matches_segment(
        model.path(["Comment", "Recipient"]))
