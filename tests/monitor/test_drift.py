"""Drift detector tests: distances, alerts, hysteresis, telemetry."""

import pytest

from repro import telemetry
from repro.demo import hotel_model, hotel_workload
from repro.monitor import (
    DriftDetector,
    WorkloadMonitor,
    js_divergence,
    l1_distance,
)


@pytest.fixture()
def workload():
    model = hotel_model()
    return hotel_workload(model, include_updates=True)


def test_l1_distance_basics():
    assert l1_distance({"a": 1.0}, {"a": 1.0}) == 0.0
    # disjoint unit masses are at the maximum distance of 2
    assert l1_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(2.0)


def test_js_divergence_identical_is_zero():
    shares = {"a": 0.25, "b": 0.75}
    assert js_divergence(shares, shares) == pytest.approx(0.0)


def test_js_divergence_disjoint_is_one():
    assert js_divergence({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)


def test_no_alert_before_min_requests(workload):
    monitor = WorkloadMonitor(workload)
    detector = DriftDetector(monitor, min_requests=10)
    # one wildly unrepresentative observation must not alert
    monitor.observe(workload.statements["delete_guest"], time=1.0)
    record = detector.check()
    assert record["js"] == 0.0
    assert not record["weight_alert"]
    assert not record["structural_alert"]
    assert not detector.drifted


def test_empty_monitor_never_alerts(workload):
    monitor = WorkloadMonitor(workload)
    detector = DriftDetector(monitor, min_requests=0)
    record = detector.check()
    assert record["l1"] == 0.0
    assert not detector.drifted


def _skewed_detector(workload, **kwargs):
    """All traffic on one statement: maximal observed skew."""
    monitor = WorkloadMonitor(workload, half_life=1000.0)
    statement = workload.statements["guest_by_id"]
    for tick in range(20):
        monitor.observe(statement, time=float(tick))
    return DriftDetector(monitor, min_requests=10, **kwargs)


def test_weight_alert_fires_on_skew(workload):
    detector = _skewed_detector(workload, weight_threshold=0.1)
    record = detector.check()
    assert record["js"] > 0.1
    assert record["weight_alert"]
    assert detector.drifted
    assert detector.alerts[0]["event"] == "weight_alert"


class _StubMonitor:
    """Monitor stand-in with directly controlled distributions."""

    def __init__(self, advised, observed):
        self.advised = advised
        self.observed = observed
        self.requests = 100
        self.clock = 100.0

    def advised_distribution(self):
        return self.advised

    def observed_distribution(self):
        return self.observed


def _mixture(advised, skew):
    """A distribution ``skew`` of the way from ``advised`` to all-'a'."""
    shifted = {key: share * (1 - skew)
               for key, share in advised.items()}
    shifted["a"] = shifted.get("a", 0.0) + skew
    return shifted


def test_hysteresis_holds_alert_between_thresholds():
    advised = {"a": 0.5, "b": 0.5}
    stub = _StubMonitor(advised, dict(advised))
    detector = DriftDetector(stub, min_requests=10,
                             weight_threshold=0.1, hysteresis=0.5)
    # find skews producing js above the raise threshold, between clear
    # and raise, and below the clear threshold
    above = between = below = None
    for step in range(1, 100):
        skew = step / 100.0
        js = js_divergence(advised, _mixture(advised, skew))
        if js >= 0.1 and above is None:
            above = skew
        if 0.05 <= js < 0.1:
            between = skew
        if js < 0.05:
            below = skew
    assert above and between and below
    stub.observed = _mixture(advised, above)
    assert detector.check()["weight_alert"]
    transitions = len(detector.alerts)
    # between clear and raise: the alert holds, no new transition
    stub.observed = _mixture(advised, between)
    assert detector.check()["weight_alert"]
    assert len(detector.alerts) == transitions
    # below the clear threshold: the alert releases
    stub.observed = _mixture(advised, below)
    assert not detector.check()["weight_alert"]
    assert detector.alerts[-1]["event"] == "weight_alert_cleared"
    # climbing back between thresholds does NOT re-raise
    stub.observed = _mixture(advised, between)
    assert not detector.check()["weight_alert"]


def test_structural_alert_on_vanished_statement(workload):
    monitor = WorkloadMonitor(workload, half_life=1000.0)
    # observe every advised statement except one heavyweight query
    for statement, _weight in workload.weighted_statements:
        if statement.label == "hotels_by_location":
            continue
        monitor.observe(statement)
    detector = DriftDetector(monitor, min_requests=1,
                             weight_threshold=2.0,
                             structural_threshold=1)
    record = detector.check()
    assert record["structural_alert"]
    assert len(record["structural_removed"]) == 1
    assert not record["weight_alert"]


def test_structural_removal_ignores_epsilon_advised(workload):
    floored = workload.clone()
    floored.add_statement(
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelID = ?",
        label="rare_lookup", weight=1e-4)
    monitor = WorkloadMonitor(floored, half_life=1000.0)
    for statement, _weight in floored.weighted_statements:
        if statement.label == "rare_lookup":
            continue
        monitor.observe(statement)
    detector = DriftDetector(monitor, min_requests=1,
                             weight_threshold=2.0,
                             min_advised_share=0.005)
    record = detector.check()
    # the epsilon statement is advised below min_advised_share, so its
    # absence from live traffic is expected, not drift
    assert record["structural_removed"] == []
    assert not record["structural_alert"]


def test_detector_emits_telemetry_gauges_and_events(workload):
    detector = _skewed_detector(workload, weight_threshold=0.1)
    with telemetry.activate() as sink:
        if not sink.enabled:
            pytest.skip("telemetry kill-switch set")
        detector.check()
        metrics = sink.metrics.as_dict()
        assert metrics["counters"]["monitor.checks"] == 1
        assert metrics["counters"]["monitor.weight_alerts"] == 1
        assert metrics["gauges"]["monitor.weight_drift_js"] > 0.1
        assert "monitor.weight_drift_l1" in metrics["gauges"]
        names = [event["name"] for event in sink.events]
        assert "monitor.weight_alert" in names


def test_detector_silent_under_kill_switch(workload, monkeypatch):
    monkeypatch.setenv("NOSE_TELEMETRY", "0")
    detector = _skewed_detector(workload, weight_threshold=0.1)
    with telemetry.activate() as sink:
        record = detector.check()
        assert not sink.enabled
        # detection still works; only the telemetry riders are muted
        assert record["weight_alert"]


def test_invalid_hysteresis_rejected(workload):
    monitor = WorkloadMonitor(workload)
    with pytest.raises(ValueError, match="hysteresis"):
        DriftDetector(monitor, hysteresis=0.0)
