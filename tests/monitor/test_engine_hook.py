"""The executor's monitor hook: live ingestion during execution."""

import pytest

from repro import Advisor
from repro.backend.executor import ExecutionEngine
from repro.demo import hotel_model, hotel_workload
from repro.demo.hotel import hotel_dataset
from repro.monitor import WorkloadMonitor
from repro.randgen.data import BindingGenerator


@pytest.fixture(scope="module")
def executed():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    recommendation = Advisor(model).recommend(workload)
    dataset = hotel_dataset(model, seed=0)
    dataset.sync_counts()
    monitor = WorkloadMonitor(workload, half_life=50.0)
    engine = ExecutionEngine(model, recommendation, dataset,
                             monitor=monitor)
    engine.load()
    generator = BindingGenerator(dataset, seed=0, null_rate=0.0)
    labels = ["guest_by_id", "guest_by_id", "hotels_by_location"]
    for label in labels:
        statement = workload.statements[label]
        engine.execute(label, generator.bindings_for(statement))
    return monitor, labels


def test_monitor_sees_every_statement(executed):
    monitor, labels = executed
    assert monitor.requests == len(labels)
    weights = monitor.observed_weights()
    assert weights["guest_by_id"] > weights["hotels_by_location"]


def test_monitor_clock_and_simulated_time_advance(executed):
    monitor, labels = executed
    assert monitor.clock == float(len(labels))
    assert monitor.simulated_seconds > 0.0


def test_support_queries_not_double_counted():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    recommendation = Advisor(model).recommend(workload)
    dataset = hotel_dataset(model, seed=1)
    dataset.sync_counts()
    monitor = WorkloadMonitor(workload)
    engine = ExecutionEngine(model, recommendation, dataset,
                             monitor=monitor)
    engine.load()
    generator = BindingGenerator(dataset, seed=1, null_rate=0.0)
    update = workload.statements["update_poi_description"]
    engine.execute("update_poi_description",
                   generator.bindings_for(update))
    # the update's internal support queries ride under the update label
    assert monitor.requests == 1
    assert set(label for _digest, label in monitor.estimates) \
        == {"update_poi_description"}
