"""Acceptance tests for the RUBiS browsing->bidding drift demo."""

import pytest

from repro.io import dump_monitor, load_monitor
from repro.monitor import drift_demo

DEMO_KWARGS = dict(requests=200, users=400, seed=0)


@pytest.fixture(scope="module")
def document():
    return drift_demo(**DEMO_KWARGS)


def test_demo_document_shape(document):
    assert document["format"] == "nose-monitor/1"
    assert document["ingest"]["requests"] >= DEMO_KWARGS["requests"]
    assert document["ingest"]["statements_tracked"] > 0
    assert document["drift"]["checks"] > 0
    assert document["estimates"]


def test_weight_alert_fires_mid_shift(document):
    """The drift alert must fire during the bidding phase, not before."""
    assert document["drift"]["weight_alert"]
    browsing = document["meta"]["phases"][0]["requests"]
    alert_request = document["meta"]["alert_request"]
    assert alert_request is not None
    assert alert_request > browsing, \
        "alert fired during the advised (browsing) phase"
    raised = [entry for entry in document["drift"]["alerts"]
              if entry["event"] == "weight_alert"]
    assert raised and raised[0]["requests"] > browsing


def test_bidding_statements_dominate_estimates(document):
    """After the shift, decayed weights reflect the bidding mix."""
    estimates = document["estimates"]
    ranked = sorted(estimates, key=lambda label:
                    -estimates[label]["weight"])
    top = set(ranked[:8])
    # store-bid and put-bid statements only occur under bidding
    assert top & {"sb_insert", "sb_update_item", "pb_item", "pb_bids"}


def test_regret_shows_readvising_beats_stale_schema(document):
    regret = document["regret"]
    assert regret["stale_cost"] is not None
    assert regret["fresh_cost"] < regret["stale_cost"]
    assert regret["regret"] > 0
    assert regret["regret_pct"] > 0
    assert regret["fresh_schema"]


def test_demo_deterministic_and_byte_stable_across_jobs(tmp_path,
                                                        document):
    """Serial vs jobs=2 runs serialize byte-identically."""
    parallel = drift_demo(jobs=2, **DEMO_KWARGS)
    serial_path = tmp_path / "serial.json"
    jobs_path = tmp_path / "jobs2.json"
    dump_monitor(document, str(serial_path))
    dump_monitor(parallel, str(jobs_path))
    assert serial_path.read_bytes() == jobs_path.read_bytes()
    reloaded = load_monitor(str(serial_path))
    round_trip = tmp_path / "round.json"
    dump_monitor(reloaded, str(round_trip))
    assert round_trip.read_bytes() == serial_path.read_bytes()


def test_document_has_no_wall_clock(document):
    """Byte-stability depends on logical time only."""
    import json
    text = json.dumps(document, default=str)
    # wall-clock epoch seconds would serialize as ~1.7e9 values
    for token in text.replace("{", " ").replace("}", " ") \
            .replace(",", " ").split():
        try:
            value = float(token.rstrip(":").strip('"'))
        except ValueError:
            continue
        assert value < 1e9, f"suspicious wall-clock value {value}"
