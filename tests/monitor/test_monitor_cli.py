"""The ``nose-advisor monitor`` subcommand."""

import json

import pytest

from repro.cli import main

DEMO_ARGS = ["monitor", "--demo", "drift", "--requests", "160",
             "--users", "400"]


@pytest.fixture(scope="module")
def demo_run(tmp_path_factory):
    """One shared demo run: (exit_code, stdout, document)."""
    out = tmp_path_factory.mktemp("monitor") / "monitor-rubis.json"
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(DEMO_ARGS + ["--output-json", str(out)])
    document = json.loads(out.read_text())
    return code, stdout.getvalue(), document


def test_demo_exits_3_on_drift(demo_run):
    code, _output, document = demo_run
    assert code == 3
    assert document["drift"]["weight_alert"]


def test_demo_prints_monitor_report(demo_run):
    _code, output, _document = demo_run
    assert "workload drift monitor" in output
    assert "drift timeline" in output
    assert "regret under observed mix" in output


def test_demo_output_json_is_a_monitor_document(demo_run, tmp_path):
    _code, output, document = demo_run
    assert "monitor document written to" in output
    assert document["format"] == "nose-monitor/1"
    from repro.io import dump_monitor, load_monitor

    path = tmp_path / "round.json"
    dump_monitor(document, str(path))
    assert load_monitor(str(path)) == document


def test_monitor_requires_a_source(capsys):
    assert main(["monitor"]) == 1
    assert "pass --demo drift or --trace-in" in capsys.readouterr().err


def test_trace_in_requires_advised_workload(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    trace.write_text("[]")
    assert main(["monitor", "--trace-in", str(trace)]) == 1
    assert "--model or" in capsys.readouterr().err


def _hotel_module(tmp_path):
    module = tmp_path / "app.py"
    module.write_text(
        "from repro.demo import hotel_model, hotel_workload\n"
        "def build():\n"
        "    model = hotel_model()\n"
        "    return model, hotel_workload(model, "
        "include_updates=True)\n")
    return str(module)


def test_trace_in_unknown_label_is_an_error(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps([{"label": "no_such_statement"}]))
    code = main(["monitor", "--trace-in", str(trace),
                 "--model", _hotel_module(tmp_path)])
    assert code == 1
    assert "no_such_statement" in capsys.readouterr().err


def test_trace_in_malformed_trace_is_an_error(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps({"not_events": 1}))
    code = main(["monitor", "--trace-in", str(trace),
                 "--model", _hotel_module(tmp_path)])
    assert code == 1
    assert "not a trace" in capsys.readouterr().err


def test_trace_in_detects_skewed_trace(tmp_path, capsys):
    # all traffic on one statement: weight drift vs the advised mix
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps(
        {"events": [{"label": "guest_by_id", "count": 60}]}))
    out = tmp_path / "monitor.json"
    code = main(["monitor", "--trace-in", str(trace),
                 "--model", _hotel_module(tmp_path),
                 "--output-json", str(out)])
    captured = capsys.readouterr()
    assert code == 3
    assert "drift detected" in captured.err
    document = json.loads(out.read_text())
    assert document["drift"]["weight_alert"]
    assert document["meta"]["events"] == 1


def test_trace_in_balanced_trace_exits_0(tmp_path, capsys):
    from repro.demo import hotel_model, hotel_workload

    workload = hotel_workload(hotel_model(), include_updates=True)
    events = [{"label": statement.label,
               "count": max(round(weight * 1000), 1)}
              for statement, weight in workload.weighted_statements]
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps(events))
    # the trace replays each statement as one burst; a huge half-life
    # keeps the early bursts from decaying below their advised share
    code = main(["monitor", "--trace-in", str(trace),
                 "--model", _hotel_module(tmp_path),
                 "--half-life", "1000000"])
    capsys.readouterr()
    assert code == 0


def test_monitor_trace_flag_prints_run_report(tmp_path, capsys,
                                              monkeypatch):
    monkeypatch.delenv("NOSE_TELEMETRY", raising=False)
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps(
        [{"label": "guest_by_id", "count": 60}]))
    code = main(["monitor", "--trace-in", str(trace),
                 "--model", _hotel_module(tmp_path), "--trace"])
    output = capsys.readouterr().out
    assert code == 3
    assert "run report" in output
    assert "monitor.checks" in output
    assert "monitor.weight_alert" in output
