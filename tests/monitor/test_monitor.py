"""Unit tests for the workload monitor's decayed weight estimates."""

import pytest

from repro.demo import hotel_model, hotel_workload
from repro.monitor import WorkloadMonitor
from repro.workload.digest import statement_digest


@pytest.fixture()
def workload():
    model = hotel_model()
    return hotel_workload(model, include_updates=True)


def test_half_life_decay_is_exact(workload):
    monitor = WorkloadMonitor(workload, half_life=10.0)
    statement = workload.statements["hotels_by_location"]
    monitor.observe(statement, time=0.0)
    weights = monitor.observed_weights(time=10.0)
    assert weights["hotels_by_location"] == pytest.approx(0.5)
    assert monitor.observed_weights(time=20.0)[
        "hotels_by_location"] == pytest.approx(0.25)


def test_observations_accumulate_with_decay(workload):
    monitor = WorkloadMonitor(workload, half_life=10.0)
    statement = workload.statements["hotels_by_location"]
    monitor.observe(statement, time=0.0)
    monitor.observe(statement, time=10.0)
    # the first observation halved by the time the second arrived
    assert monitor.observed_weights()["hotels_by_location"] \
        == pytest.approx(1.5)
    assert monitor.requests == 2


def test_clock_ratchets_forward(workload):
    monitor = WorkloadMonitor(workload, half_life=10.0)
    statement = workload.statements["hotels_by_location"]
    monitor.observe(statement, time=50.0)
    monitor.observe(statement, time=10.0)  # stale time clamps to clock
    assert monitor.clock == 50.0


def test_default_clock_ticks_once_per_request(workload):
    monitor = WorkloadMonitor(workload)
    statement = workload.statements["hotels_by_location"]
    for _ in range(5):
        monitor.observe(statement)
    assert monitor.clock == 5.0


def test_estimates_keyed_by_digest_and_label(workload):
    monitor = WorkloadMonitor(workload)
    first = workload.statements["hotels_by_location"]
    second = workload.statements["guest_by_id"]
    monitor.observe(first)
    monitor.observe(second)
    keys = set(monitor.estimates)
    assert (statement_digest(first), "hotels_by_location") in keys
    assert (statement_digest(second), "guest_by_id") in keys


def test_observed_distribution_sums_to_one(workload):
    monitor = WorkloadMonitor(workload, half_life=10.0)
    monitor.observe(workload.statements["hotels_by_location"], time=1.0)
    monitor.observe(workload.statements["guest_by_id"], time=2.0)
    monitor.observe(workload.statements["guest_by_id"], time=3.0)
    distribution = monitor.observed_distribution()
    assert sum(distribution.values()) == pytest.approx(1.0)
    assert len(distribution) == 2


def test_empty_monitor_has_empty_distribution(workload):
    monitor = WorkloadMonitor(workload)
    assert monitor.observed_distribution() == {}
    assert monitor.observed_weights() == {}


def test_advised_distribution_matches_weights(workload):
    monitor = WorkloadMonitor(workload)
    advised = monitor.advised_distribution()
    assert sum(advised.values()) == pytest.approx(1.0)
    total = sum(weight for _statement, weight
                in workload.weighted_statements)
    statement = workload.statements["hotels_by_location"]
    assert advised[statement_digest(statement)] == pytest.approx(
        workload.weight(statement) / total)


def test_replay_trace_resolves_labels(workload):
    monitor = WorkloadMonitor(workload, half_life=10.0)
    monitor.replay_trace([
        {"label": "hotels_by_location", "time": 1.0},
        {"label": "guest_by_id", "time": 2.0, "count": 3},
    ])
    assert monitor.requests == 4
    weights = monitor.observed_weights()
    assert weights["guest_by_id"] > weights["hotels_by_location"]


def test_replay_trace_rejects_unknown_label(workload):
    monitor = WorkloadMonitor(workload)
    with pytest.raises(ValueError, match="no_such_statement"):
        monitor.replay_trace([{"label": "no_such_statement"}])


def test_replay_trace_rejects_missing_label(workload):
    monitor = WorkloadMonitor(workload)
    with pytest.raises(ValueError, match="label"):
        monitor.replay_trace([{"time": 1.0}])


def test_invalid_half_life_rejected(workload):
    with pytest.raises(ValueError, match="half_life"):
        WorkloadMonitor(workload, half_life=0.0)


def test_rolling_log_caps_at_window(workload):
    monitor = WorkloadMonitor(workload, window=4)
    statement = workload.statements["guest_by_id"]
    for _ in range(10):
        monitor.observe(statement)
    assert len(monitor.recent) == 4
    assert monitor.requests == 10


def test_observe_execution_counts_simulated_time(workload):
    monitor = WorkloadMonitor(workload)
    statement = workload.statements["guest_by_id"]
    monitor.observe_execution(statement, "guest_by_id", "query",
                              {"simulated_ms": 250.0})
    monitor.observe_execution(statement, "guest_by_id", "query",
                              {"simulated_ms": 750.0})
    assert monitor.simulated_seconds == pytest.approx(1.0)
    assert monitor.clock == 2.0
    assert monitor.requests == 2
