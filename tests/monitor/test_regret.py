"""Regret estimation tests on the hotel workload."""

import pytest

from repro import Advisor
from repro.demo import hotel_model, hotel_workload
from repro.monitor import WorkloadMonitor, estimate_regret


@pytest.fixture(scope="module")
def advised():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    recommendation = advisor.recommend(workload)
    return model, workload, advisor, recommendation


def test_regret_nonnegative_under_shifted_mix(advised):
    _model, workload, advisor, recommendation = advised
    # all observed traffic on two statements the advised mix spread out
    observed = {"guest_by_id": 10.0, "delete_guest": 5.0}
    section = estimate_regret(advisor, workload, recommendation,
                              observed)
    assert section["stale_cost"] is not None
    # the fresh solve optimizes the objective the stale schema is
    # scored on, so regret is >= 0 up to solver tolerance
    assert section["regret"] >= -1e-6
    assert section["fresh_cost"] <= section["stale_cost"] + 1e-6
    assert section["recommendation"] is not None


def test_zero_regret_under_advised_mix(advised):
    _model, workload, advisor, recommendation = advised
    observed = {statement.label: weight
                for statement, weight in workload.weighted_statements}
    section = estimate_regret(advisor, workload, recommendation,
                              observed)
    # observing exactly the advised mix: re-advising finds the same
    # optimum, so the regret (nearly) vanishes — statement_costs sums
    # each update's cheapest support plans, which can differ from the
    # BIP objective by a hair, so allow a small absolute slack
    assert section["regret"] == pytest.approx(0.0, abs=1e-3)
    assert abs(section["regret_pct"]) < 0.1


def test_regret_accepts_monitor(advised):
    _model, workload, advisor, recommendation = advised
    monitor = WorkloadMonitor(workload)
    monitor.observe(workload.statements["guest_by_id"])
    monitor.observe(workload.statements["hotels_by_location"])
    section = estimate_regret(advisor, workload, recommendation,
                              monitor)
    assert section["stale_cost"] > 0
    assert section["fresh_indexes"] > 0


def test_regret_without_observations(advised):
    _model, workload, advisor, recommendation = advised
    section = estimate_regret(advisor, workload, recommendation, {})
    assert section["regret"] is None
    assert section["stale_cost"] is None
    assert section["recommendation"] is None


def test_regret_reports_unknown_labels(advised):
    _model, workload, advisor, recommendation = advised
    observed = {"guest_by_id": 5.0, "not_in_workload": 3.0}
    section = estimate_regret(advisor, workload, recommendation,
                              observed)
    assert section["ignored_labels"] == ["not_in_workload"]


def test_regret_costs_are_per_request(advised):
    _model, workload, advisor, recommendation = advised
    observed = {"guest_by_id": 1.0, "delete_guest": 1.0}
    scaled = {label: weight * 1000
              for label, weight in observed.items()}
    base = estimate_regret(advisor, workload, recommendation, observed)
    big = estimate_regret(advisor, workload, recommendation, scaled)
    # weights are normalized, so absolute traffic volume cancels out
    assert base["stale_cost"] == pytest.approx(big["stale_cost"])
    assert base["fresh_cost"] == pytest.approx(big["fresh_cost"])
