"""Tests for the ordered parallel map and its failure annotation."""

import sys

import pytest

from repro import telemetry
from repro.parallel import describe_item, parallel_map


class _Labelled:
    def __init__(self, label):
        self.label = label


@pytest.mark.parametrize("jobs", [None, 0, 1, 4])
def test_results_preserve_input_order(jobs):
    items = list(range(20))
    assert parallel_map(lambda n: n * n, items, jobs=jobs) \
        == [n * n for n in items]


def test_empty_and_single_item():
    assert parallel_map(len, [], jobs=4) == []
    assert parallel_map(len, ["ab"], jobs=4) == [2]


def test_describe_item_prefers_labels():
    assert describe_item(_Labelled("q1")) == "q1"

    class Space:
        query = _Labelled("q2")
    assert describe_item(Space()) == "q2"
    assert describe_item(3) == "3"
    long = "x" * 300
    assert len(describe_item(long)) <= 120
    assert describe_item(long).endswith("...")


@pytest.mark.parametrize("jobs", [1, 4])
def test_exception_carries_originating_item(jobs):
    def explode(item):
        if item.label == "bad":
            raise ValueError("boom")
        return item.label

    items = [_Labelled("ok"), _Labelled("bad"), _Labelled("also ok")]
    with pytest.raises(ValueError) as exc_info:
        parallel_map(explode, items, jobs=jobs)
    error = exc_info.value
    assert error.parallel_item == "while processing bad"
    if sys.version_info >= (3, 11):
        assert "while processing bad" in getattr(error, "__notes__", [])


def test_worker_spans_adopt_caller_span():
    with telemetry.activate() as sink:
        with sink.span("stage"):
            def work(item):
                with telemetry.current().span(f"item-{item}"):
                    return item
            assert parallel_map(work, [1, 2, 3], jobs=3) == [1, 2, 3]
    report = sink.report()
    stage_record, = report.spans
    assert stage_record["name"] == "stage"
    names = sorted(child["name"]
                   for child in stage_record.get("children", []))
    assert names == ["item-1", "item-2", "item-3"]
    counters = report.metrics["counters"]
    assert counters["parallel.batches"] == 1
    assert counters["parallel.items"] == 3


def test_serial_path_records_no_pool_metrics():
    with telemetry.activate() as sink:
        parallel_map(lambda n: n, [1, 2, 3], jobs=1)
    assert "parallel.batches" not in sink.report().metrics["counters"]
