"""Tests for the ordered parallel map and its failure annotation."""

import os
import sys

import pytest

from repro import parallel, telemetry
from repro.parallel import describe_item, parallel_map


class _Labelled:
    def __init__(self, label):
        self.label = label


@pytest.mark.parametrize("jobs", [None, 0, 1, 4])
def test_results_preserve_input_order(jobs):
    items = list(range(20))
    assert parallel_map(lambda n: n * n, items, jobs=jobs) \
        == [n * n for n in items]


def test_empty_and_single_item():
    assert parallel_map(len, [], jobs=4) == []
    assert parallel_map(len, ["ab"], jobs=4) == [2]


def test_describe_item_prefers_labels():
    assert describe_item(_Labelled("q1")) == "q1"

    class Space:
        query = _Labelled("q2")
    assert describe_item(Space()) == "q2"
    assert describe_item(3) == "3"
    long = "x" * 300
    assert len(describe_item(long)) <= 120
    assert describe_item(long).endswith("...")


@pytest.mark.parametrize("jobs", [1, 4])
def test_exception_carries_originating_item(jobs):
    def explode(item):
        if item.label == "bad":
            raise ValueError("boom")
        return item.label

    items = [_Labelled("ok"), _Labelled("bad"), _Labelled("also ok")]
    with pytest.raises(ValueError) as exc_info:
        parallel_map(explode, items, jobs=jobs)
    error = exc_info.value
    assert error.parallel_item == "while processing bad"
    if sys.version_info >= (3, 11):
        assert "while processing bad" in getattr(error, "__notes__", [])


def test_worker_spans_adopt_caller_span():
    with telemetry.activate() as sink:
        with sink.span("stage"):
            def work(item):
                with telemetry.current().span(f"item-{item}"):
                    return item
            assert parallel_map(work, [1, 2, 3], jobs=3,
                                force=True) == [1, 2, 3]
    report = sink.report()
    stage_record, = report.spans
    assert stage_record["name"] == "stage"
    names = sorted(child["name"]
                   for child in stage_record.get("children", []))
    assert names == ["item-1", "item-2", "item-3"]
    counters = report.metrics["counters"]
    assert counters["parallel.batches"] == 1
    assert counters["parallel.items"] == 3


def test_serial_path_records_no_pool_metrics():
    with telemetry.activate() as sink:
        parallel_map(lambda n: n, [1, 2, 3], jobs=1)
    assert "parallel.batches" not in sink.report().metrics["counters"]


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown parallel backend"):
        parallel_map(lambda n: n, [1, 2], jobs=2, backend="rayon")


def test_process_backend_preserves_input_order():
    items = list(range(50))
    assert parallel_map(lambda n: n * 3, items, jobs=4,
                        backend="process", force=True) \
        == [n * 3 for n in items]


def test_process_backend_first_exception_in_input_order():
    # two failures land in different chunks; the one earliest in the
    # *input* wins, exactly as the serial loop would raise it
    def explode(item):
        if item.label.startswith("bad"):
            raise ValueError(item.label)
        return item.label

    items = [_Labelled(f"ok{i}") for i in range(12)]
    items[3] = _Labelled("bad-early")
    items[11] = _Labelled("bad-late")
    with pytest.raises(ValueError, match="bad-early") as exc_info:
        parallel_map(explode, items, jobs=4, backend="process",
                     force=True)
    error = exc_info.value
    assert error.parallel_item == "while processing bad-early"
    if sys.version_info >= (3, 11):
        assert "while processing bad-early" \
            in getattr(error, "__notes__", [])


def test_process_backend_killed_worker_raises_not_hangs():
    from concurrent.futures.process import BrokenProcessPool

    def die(n):
        os._exit(13)

    with pytest.raises(BrokenProcessPool):
        parallel_map(die, list(range(8)), jobs=2, backend="process",
                     force=True)


def test_small_work_falls_back_serially_with_counter():
    with telemetry.activate() as sink:
        result = parallel_map(lambda n: n, list(range(5)), jobs=4,
                              cost_hint=1e-6)
    counters = sink.report().metrics["counters"]
    assert result == list(range(5))
    assert counters["parallel.fallback_serial"] == 1
    assert counters["parallel.fallback_serial.small-work"] == 1
    assert "parallel.batches" not in counters


def test_measured_fallback_skips_pool_for_fast_items():
    # no cost hint: the first item is timed and trivially fast work
    # never reaches a pool
    with telemetry.activate() as sink:
        result = parallel_map(lambda n: n + 1, list(range(4)), jobs=4)
    counters = sink.report().metrics["counters"]
    assert result == [1, 2, 3, 4]
    assert counters["parallel.fallback_serial"] == 1
    assert "parallel.batches" not in counters


def test_single_cpu_host_falls_back_serially(monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
    with telemetry.activate() as sink:
        result = parallel_map(lambda n: n * 2, [1, 2, 3], jobs=4,
                              backend="process")
    counters = sink.report().metrics["counters"]
    assert result == [2, 4, 6]
    assert counters["parallel.fallback_serial.single-cpu"] == 1


def _metered(n):
    active = telemetry.current()
    active.count("work.items")
    active.count("work.value", n)
    active.observe("work.size", n, buckets=(2, 5, 10))
    with active.span("work.step"):
        return n * n


def _work_metrics(sink):
    """The work.*-prefixed subset of a sink's metrics, as stable JSON.

    Parent-only bookkeeping (parallel.batches etc.) is legitimately
    absent from the serial run, so only worker-recorded metrics are
    compared.
    """
    import json
    metrics = sink.report().metrics
    subset = {
        section: {name: record
                  for name, record in metrics.get(section, {}).items()
                  if name.startswith("work.")}
        for section in ("counters", "gauges", "histograms")
    }
    return json.dumps(subset, sort_keys=True)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_worker_telemetry_matches_serial_run(backend):
    # the PR 6 fork pool silently dropped everything workers recorded
    # (their registries are copy-on-write copies); chunk snapshots must
    # ship the deltas back so counter totals match the serial run
    items = list(range(17))
    with telemetry.activate() as serial_sink:
        serial = parallel_map(_metered, items, jobs=None)
    with telemetry.activate() as pooled_sink:
        pooled = parallel_map(_metered, items, jobs=4, backend=backend,
                              force=True)
    assert pooled == serial
    assert _work_metrics(pooled_sink) == _work_metrics(serial_sink)


def test_process_worker_spans_survive_the_fork():
    items = list(range(6))
    with telemetry.activate() as sink:
        with sink.span("stage"):
            parallel_map(_metered, items, jobs=2, backend="process",
                         force=True)
    stage, = sink.report().spans
    worker_spans = [span for span in stage.get("children", ())
                    if span["name"] == "work.step"]
    assert len(worker_spans) == len(items)


def test_nested_process_fanout_runs_serial(monkeypatch):
    # a forked worker inherits a non-None _WORK and must not fork
    # grandchildren
    monkeypatch.setattr(parallel, "_WORK", (None, None))
    with telemetry.activate() as sink:
        result = parallel_map(lambda n: n * 2, [1, 2], jobs=4,
                              backend="process", force=True)
    assert result == [2, 4]
    assert "parallel.batches" not in sink.report().metrics["counters"]
