"""Tests reproducing the paper's §II worked example.

The schema-design narrative of §II: a read-only POI-for-guest workload
gets the fully denormalized view ``[GuestID][POIID][POIName,
POIDescription]``; frequent POI updates push the advisor toward the
normalized two/three column-family designs.
"""

import pytest

from repro import Advisor, Workload


@pytest.fixture(scope="module")
def model():
    from repro.demo import hotel_model
    return hotel_model()


def _poi_workload(model, update_weight=None):
    workload = Workload(model)
    workload.add_statement(
        "SELECT PointOfInterest.POIName, PointOfInterest.POIDescription "
        "FROM PointOfInterest.Hotels.Rooms.Reservations.Guest "
        "WHERE Guest.GuestID = ?guest",
        weight=10.0, label="pois_for_guest")
    if update_weight is not None:
        workload.add_statement(
            "UPDATE PointOfInterest SET POIName = ?name, "
            "POIDescription = ?description "
            "WHERE PointOfInterest.POIID = ?poi",
            weight=update_weight, label="update_poi")
    return workload


def test_read_only_poi_query_gets_denormalized_view(model):
    """§II first design: one column family answering the query with a
    single get, POI attributes denormalized per guest."""
    recommendation = Advisor(model).recommend(_poi_workload(model))
    plan = next(iter(recommendation.query_plans.values()))
    assert len(plan.lookup_steps) == 1
    view = plan.lookup_steps[0].index
    assert [f.id for f in view.hash_fields] == ["Guest.GuestID"]
    stored = {f.id for f in view.all_fields}
    assert "PointOfInterest.POIName" in stored
    assert "PointOfInterest.POIDescription" in stored


def test_update_pressure_normalizes_poi_attributes(model):
    """§II second design: with frequent POI updates, POI attributes are
    stored once, keyed by POIID, and the query plan joins."""
    recommendation = Advisor(model).recommend(
        _poi_workload(model, update_weight=1000.0))
    (query,) = recommendation.query_plans
    plan = recommendation.query_plans[query]
    assert len(plan.lookup_steps) >= 2
    # the POI attributes have left the guest-keyed column family and are
    # fetched through a later join step keyed closer to the POI
    first = plan.lookup_steps[0].index
    stored = {f.id for f in first.extra_fields}
    assert "PointOfInterest.POIDescription" not in stored
    final_lookup = plan.lookup_steps[-1]
    assert final_lookup.index.covers(query.select)
    assert "Guest.GuestID" not in {
        f.id for f in final_lookup.index.hash_fields}


def test_update_cost_tradeoff_is_monotone(model):
    """Total cost can only grow as the update weight grows, and the
    number of denormalized copies of POI data can only shrink."""
    description = model.field("PointOfInterest", "POIDescription")
    costs = []
    copies = []
    advisor = Advisor(model)
    for weight in (0.001, 1.0, 1000.0):
        recommendation = advisor.recommend(
            _poi_workload(model, update_weight=weight))
        costs.append(recommendation.total_cost)
        copies.append(sum(1 for index in recommendation.indexes
                          if index.contains_field(description)))
    assert costs == sorted(costs)
    assert copies == sorted(copies, reverse=True)


def test_fig3_query_recommendation_matches_paper(model):
    """The Fig 3 query alone gets exactly the paper's materialized view."""
    workload = Workload(model)
    workload.add_statement(
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate",
        label="fig3")
    recommendation = Advisor(model).recommend(workload)
    assert len(recommendation.indexes) == 1
    (view,) = recommendation.indexes
    assert [f.id for f in view.hash_fields] == ["Hotel.HotelCity"]
    assert view.order_fields[0].id == "Room.RoomRate"
    assert {f.id for f in view.extra_fields} == {"Guest.GuestName",
                                                 "Guest.GuestEmail"}
