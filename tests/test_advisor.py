"""Integration tests for the end-to-end schema advisor."""

import pytest

from repro import Advisor
from repro.advisor import prune_dominated_plans
from repro.cost import SimpleCostModel
from repro.exceptions import PlanningError


@pytest.fixture(scope="module")
def read_recommendation(request):
    from repro.demo import hotel_model, hotel_workload
    model = hotel_model()
    workload = hotel_workload(model, include_updates=False)
    return model, workload, Advisor(model).recommend(workload)


def test_every_query_has_a_plan(read_recommendation):
    _model, workload, recommendation = read_recommendation
    assert set(recommendation.query_plans) == set(workload.queries)


def test_plans_only_use_recommended_indexes(read_recommendation):
    _model, _workload, recommendation = read_recommendation
    keys = {index.key for index in recommendation.indexes}
    for plan in recommendation.query_plans.values():
        assert {index.key for index in plan.indexes} <= keys


def test_read_only_workload_gets_materialized_views(read_recommendation):
    """With no updates and no space limit, every query should be served
    by a single get (the paper's fully denormalized regime)."""
    _model, _workload, recommendation = read_recommendation
    for query, plan in recommendation.query_plans.items():
        assert len(plan.lookup_steps) == 1, query.label


def test_timing_breakdown_populated(read_recommendation):
    _model, _workload, recommendation = read_recommendation
    timing = recommendation.timing
    assert timing.total > 0
    row = timing.as_figure13_row()
    assert set(row) == {"cost_calculation", "bip_construction",
                        "bip_solving", "other", "total"}
    assert row["total"] >= row["cost_calculation"]
    assert timing.other >= 0
    assert timing.candidates > 0


def test_updates_constrain_denormalization(hotel):
    """§II: under update pressure the POI attributes move out of the
    denormalized guest view into a shared, normalized column family."""
    from repro.demo import hotel_model, hotel_workload
    model = hotel_model()
    advisor = Advisor(model)
    reads = advisor.recommend(hotel_workload(model,
                                             include_updates=False))
    description = model.field("PointOfInterest", "POIDescription")
    copies_read_only = sum(1 for index in reads.indexes
                           if index.contains_field(description))
    heavy = hotel_workload(model, include_updates=True)
    heavy.set_weight("update_poi_description", 500.0)
    writes = advisor.recommend(heavy)
    copies_update_heavy = sum(1 for index in writes.indexes
                              if index.contains_field(description))
    assert copies_update_heavy <= copies_read_only


def test_space_limit_shrinks_schema(read_recommendation):
    model, workload, unconstrained = read_recommendation
    limit = unconstrained.size * 0.4
    constrained = Advisor(model).recommend(workload, space_limit=limit)
    assert constrained.size <= limit
    assert constrained.total_cost >= unconstrained.total_cost


def test_alternate_cost_model(read_recommendation):
    model, workload, _ = read_recommendation
    advisor = Advisor(model, cost_model=SimpleCostModel())
    recommendation = advisor.recommend(workload)
    # with request counting, the optimum is one get per query
    assert recommendation.total_cost == pytest.approx(
        sum(workload.weight(query) for query in workload.queries))


def test_plan_for_schema_round_trip(read_recommendation):
    """Planning the workload against the advisor's own schema must find
    plans at most as expensive as the recommendation's."""
    model, workload, recommendation = read_recommendation
    advisor = Advisor(model)
    fixed = advisor.plan_for_schema(workload, recommendation.indexes)
    assert fixed.total_cost <= recommendation.total_cost * 1.001


def test_plan_for_schema_rejects_insufficient_schema(read_recommendation):
    model, workload, _ = read_recommendation
    from repro.indexes import entity_fetch_index
    with pytest.raises(PlanningError):
        Advisor(model).plan_for_schema(
            workload, [entity_fetch_index(model.entity("Guest"))])


def test_prune_dominated_plans_keeps_cheapest():
    class Plan:
        def __init__(self, cost, keys):
            self.cost = cost
            self.indexes = [type("I", (), {"key": key})()
                            for key in keys]
    plans = [Plan(5.0, ["a"]), Plan(3.0, ["a"]), Plan(4.0, ["a", "b"])]
    pruned = prune_dominated_plans(plans)
    assert {plan.cost for plan in pruned} == {3.0, 4.0}
    assert prune_dominated_plans(plans, keep=1)[0].cost == 3.0


def test_recommendation_describe_round_trip(read_recommendation):
    _model, _workload, recommendation = read_recommendation
    text = recommendation.describe()
    assert "column families" in text
    assert "Plan for" in text
