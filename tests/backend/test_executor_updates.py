"""Executor tests for CONNECT/DISCONNECT and maintenance corner cases."""

import pytest

from repro import Advisor, Workload
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model


@pytest.fixture()
def setup():
    model = hotel_model(scale=0.02)
    workload = Workload(model)
    workload.add_statement(
        "SELECT PointOfInterest.POIName FROM PointOfInterest.Hotels "
        "WHERE Hotel.HotelID = ?hotel",
        weight=5.0, label="pois_for_hotel")
    workload.add_statement(
        "SELECT Hotel.HotelName FROM Hotel.PointsOfInterest "
        "WHERE PointOfInterest.POIID = ?poi",
        weight=2.0, label="hotels_for_poi")
    workload.add_statement(
        "CONNECT Hotel(?hotel) TO PointsOfInterest(?poi)",
        weight=1.0, label="add_poi")
    workload.add_statement(
        "DISCONNECT Hotel(?hotel) FROM PointsOfInterest(?poi)",
        weight=1.0, label="remove_poi")
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    engine = ExecutionEngine(model, recommendation, dataset)
    engine.load()
    return model, workload, dataset, engine


def _poi_names(engine, workload, dataset, hotel_id):
    query = workload.statements["pois_for_hotel"]
    rows = engine.execute_query(query, {"hotel": hotel_id})
    got = {row["PointOfInterest.POIName"] for row in rows}
    expected = {name for (name,) in
                dataset.evaluate_query(query, {"hotel": hotel_id})}
    assert got == expected
    return got


def test_connect_adds_rows(setup):
    model, workload, dataset, engine = setup
    before = _poi_names(engine, workload, dataset, 0)
    connect = workload.statements["add_poi"]
    # pick a POI not currently linked to hotel 0
    linked = dataset.related(model.entity("Hotel")["PointsOfInterest"], 0)
    new_poi = next(p for p in dataset.rows["PointOfInterest"]
                   if p not in linked)
    engine.execute_update(connect, {"hotel": 0, "poi": new_poi})
    after = _poi_names(engine, workload, dataset, 0)
    assert len(after) == len(before) + 1


def test_disconnect_removes_rows(setup):
    model, workload, dataset, engine = setup
    linked = dataset.related(model.entity("Hotel")["PointsOfInterest"], 0)
    if not linked:
        pytest.skip("hotel 0 has no POIs in this dataset")
    poi = min(linked)
    disconnect = workload.statements["remove_poi"]
    engine.execute_update(disconnect, {"hotel": 0, "poi": poi})
    names = _poi_names(engine, workload, dataset, 0)
    assert f"poi-{poi}" not in names


def test_connect_maintains_reverse_direction_queries(setup):
    model, workload, dataset, engine = setup
    connect = workload.statements["add_poi"]
    linked = dataset.related(model.entity("Hotel")["PointsOfInterest"], 1)
    new_poi = next(p for p in dataset.rows["PointOfInterest"]
                   if p not in linked)
    engine.execute_update(connect, {"hotel": 1, "poi": new_poi})
    reverse = workload.statements["hotels_for_poi"]
    rows = engine.execute_query(reverse, {"poi": new_poi})
    got = {row["Hotel.HotelName"] for row in rows}
    expected = {name for (name,) in
                dataset.evaluate_query(reverse, {"poi": new_poi})}
    assert got == expected
    assert "hotel-1" in got


def test_connect_is_idempotent_in_store(setup):
    model, workload, dataset, engine = setup
    connect = workload.statements["add_poi"]
    linked = dataset.related(model.entity("Hotel")["PointsOfInterest"], 2)
    new_poi = next(p for p in dataset.rows["PointOfInterest"]
                   if p not in linked)
    engine.execute_update(connect, {"hotel": 2, "poi": new_poi})
    first = _poi_names(engine, workload, dataset, 2)
    engine.execute_update(connect, {"hotel": 2, "poi": new_poi})
    second = _poi_names(engine, workload, dataset, 2)
    assert first == second
