"""Unit tests for the ground-truth dataset and join materialization."""

import pytest

from repro.backend import Dataset, materialize_rows
from repro.exceptions import ExecutionError, ModelError
from repro.indexes import Index, entity_fetch_index
from repro.workload import parse_statement


@pytest.fixture()
def hotel():
    """A private model instance — some tests mutate entity counts."""
    from repro.demo import hotel_model
    return hotel_model()


@pytest.fixture()
def tiny(hotel):
    """Two hotels, four rooms, two guests, four reservations."""
    dataset = Dataset(hotel)
    for h in range(2):
        dataset.add_row("Hotel", {"HotelID": h, "HotelName": f"h{h}",
                                  "HotelCity": "boston" if h == 0
                                  else "chicago",
                                  "HotelState": "MA",
                                  "HotelAddress": "x",
                                  "HotelPhone": "y"})
    for r in range(4):
        dataset.add_row("Room", {"RoomID": r, "RoomNumber": r,
                                 "RoomRate": 100.0 * (r + 1)})
        dataset.connect("Hotel", r % 2, "Rooms", r)
    for g in range(2):
        dataset.add_row("Guest", {"GuestID": g, "GuestName": f"g{g}",
                                  "GuestEmail": f"g{g}@x"})
    import datetime
    day = datetime.datetime(2016, 1, 1)
    for i in range(4):
        dataset.add_row("Reservation", {"ResID": i, "ResStartDate": day,
                                        "ResEndDate": day})
        dataset.connect("Room", i, "Reservations", i)
        dataset.connect("Guest", i % 2, "Reservations", i)
    return dataset


def test_add_row_requires_primary_key(hotel):
    dataset = Dataset(hotel)
    with pytest.raises(ModelError):
        dataset.add_row("Hotel", {"HotelName": "x"})
    with pytest.raises(ModelError):
        dataset.add_row("Hotel", {"HotelID": 1, "Rooms": 2})


def test_row_lookup(tiny, hotel):
    row = tiny.row(hotel.entity("Hotel"), 0)
    assert row["Hotel.HotelCity"] == "boston"
    with pytest.raises(ExecutionError):
        tiny.row(hotel.entity("Hotel"), 99)


def test_related_follows_both_directions(tiny, hotel):
    rooms_fk = hotel.entity("Hotel")["Rooms"]
    assert tiny.related(rooms_fk, 0) == {0, 2}
    back = hotel.entity("Room")["Hotel"]
    assert tiny.related(back, 2) == {0}


def test_disconnect_removes_both_directions(tiny, hotel):
    tiny.disconnect("Hotel", 0, "Rooms", 2)
    assert tiny.related(hotel.entity("Hotel")["Rooms"], 0) == {0}
    assert tiny.related(hotel.entity("Room")["Hotel"], 2) == set()


def test_delete_entity_cleans_links(tiny, hotel):
    tiny.delete_entity("Room", 0)
    assert 0 not in tiny.rows["Room"]
    assert tiny.related(hotel.entity("Hotel")["Rooms"], 0) == {2}
    reservations = hotel.entity("Room")["Reservations"]
    assert tiny.related(reservations, 0) == set()


def test_join_tuples_full(tiny, hotel):
    path = hotel.path(["Hotel", "Rooms"])
    tuples = tiny.join_tuples(path)
    assert sorted(tuples) == [(0, 0), (0, 2), (1, 1), (1, 3)]


def test_join_tuples_anchored_tail(tiny, hotel):
    path = hotel.path(["Hotel", "Rooms"])
    tuples = tiny.join_tuples(path, anchor_position=1, anchor_ids=[2])
    assert tuples == [(0, 2)]


def test_join_tuples_anchored_middle(tiny, hotel):
    path = hotel.path(["Hotel", "Rooms", "Reservations"])
    tuples = tiny.join_tuples(path, anchor_position=1, anchor_ids=[1])
    assert tuples == [(1, 1, 1)]


def test_matching_ids_by_primary_key(tiny, hotel):
    delete = parse_statement(hotel,
                             "DELETE FROM Guest WHERE Guest.GuestID = ?g")
    assert tiny.matching_ids(delete, {"g": 1}) == [1]
    assert tiny.matching_ids(delete, {"g": 42}) == []


def test_matching_ids_through_path(tiny, hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest WHERE "
        "Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")
    # boston rooms are 0 (rate 100) and 2 (rate 300); reservations 0, 2
    # belong to guest 0
    assert tiny.matching_ids(query, {"city": "boston",
                                     "rate": 150.0}) == [0]
    assert tiny.matching_ids(query, {"city": "boston",
                                     "rate": 500.0}) == []


def test_evaluate_query_projects_select(tiny, hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city")
    results = tiny.evaluate_query(query, {"city": "chicago"})
    assert results == {("g1", "g1@x")}


def test_apply_update(tiny, hotel):
    update = parse_statement(
        hotel, "UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?r")
    affected = tiny.apply(update, {"rate": 999.0, "r": 0})
    assert affected == [0]
    assert tiny.rows["Room"][0]["Room.RoomRate"] == 999.0


def test_apply_insert_with_connections(tiny, hotel):
    insert = parse_statement(
        hotel,
        "INSERT INTO Room SET RoomID = ?, RoomNumber = ?n, "
        "RoomRate = ?rate AND CONNECT TO Hotel(?h)")
    affected = tiny.apply(insert, {"RoomID": 77, "n": 7, "rate": 70.0,
                                   "h": 1})
    assert affected == [77]
    assert tiny.related(hotel.entity("Hotel")["Rooms"], 1) == {1, 3, 77}


def test_apply_delete(tiny, hotel):
    delete = parse_statement(hotel,
                             "DELETE FROM Guest WHERE Guest.GuestID = ?g")
    assert tiny.apply(delete, {"g": 0}) == [0]
    assert 0 not in tiny.rows["Guest"]


def test_apply_connect_and_disconnect(tiny, hotel):
    connect = parse_statement(hotel,
                              "CONNECT Guest(?g) TO Reservations(?r)")
    tiny.apply(connect, {"g": 0, "r": 1})
    reservations = hotel.entity("Guest")["Reservations"]
    assert 1 in tiny.related(reservations, 0)
    disconnect = parse_statement(
        hotel, "DISCONNECT Guest(?g) FROM Reservations(?r)")
    tiny.apply(disconnect, {"g": 0, "r": 1})
    assert 1 not in tiny.related(reservations, 0)


def test_apply_rejects_queries(tiny, hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?g")
    with pytest.raises(ExecutionError):
        tiny.apply(query, {"g": 0})


def test_materialize_rows_full(tiny, hotel):
    city = hotel.field("Hotel", "HotelCity")
    rate = hotel.field("Room", "RoomRate")
    room_id = hotel.field("Room", "RoomID")
    index = Index((city,), (rate, room_id), (),
                  hotel.path(["Hotel", "Rooms"]))
    rows = materialize_rows(tiny, index)
    assert len(rows) == 4
    assert {row["Room.RoomID"] for row in rows} == {0, 1, 2, 3}
    assert all(set(row) == {"Hotel.HotelCity", "Room.RoomRate",
                            "Room.RoomID"} for row in rows)


def test_materialize_rows_anchored(tiny, hotel):
    index = entity_fetch_index(hotel.entity("Room"))
    rows = materialize_rows(tiny, index,
                            anchor_entity=hotel.entity("Room"),
                            anchor_ids=[1])
    assert len(rows) == 1
    assert rows[0]["Room.RoomID"] == 1


def test_materialize_rows_for_absent_anchor_entity(tiny, hotel):
    index = entity_fetch_index(hotel.entity("Room"))
    rows = materialize_rows(tiny, index,
                            anchor_entity=hotel.entity("Guest"),
                            anchor_ids=[0])
    assert rows == []


def test_sync_counts(tiny, hotel):
    tiny.sync_counts()
    assert hotel.entity("Room").count == 4
    assert hotel.entity("Guest").count == 2
