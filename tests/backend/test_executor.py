"""Integration tests: plan execution against the simulated store.

Every query result is validated against the oracle
(:meth:`Dataset.evaluate_query`), including after updates mutate the
store — the executor must keep all column families consistent.
"""

import pytest

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.exceptions import ExecutionError


@pytest.fixture(scope="module")
def engine_setup():
    from repro.demo import hotel_dataset, hotel_model, hotel_workload
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    engine = ExecutionEngine(model, recommendation, dataset)
    engine.load()
    return model, workload, dataset, engine


def _check(engine, dataset, query, params):
    rows = engine.execute_query(query, params)
    got = {tuple(row[field.id] for field in query.select)
           for row in rows}
    assert got == dataset.evaluate_query(query, params)
    return rows


def test_load_materializes_all_indexes(engine_setup):
    _model, _workload, _dataset, engine = engine_setup
    for index in engine.recommendation.indexes:
        assert index.key in engine.store


def test_point_query_matches_oracle(engine_setup):
    _model, workload, dataset, engine = engine_setup
    query = workload.statements["guest_by_id"]
    _check(engine, dataset, query, {"guest": 5})


def test_path_query_with_range_matches_oracle(engine_setup):
    _model, workload, dataset, engine = engine_setup
    query = workload.statements["guests_in_city_above_rate"]
    rows = _check(engine, dataset, query,
                  {"city": "city-0", "rate": 200.0})
    assert rows, "expected a non-empty result for the test data"


def test_many_to_many_query_matches_oracle(engine_setup):
    _model, workload, dataset, engine = engine_setup
    query = workload.statements["pois_for_guest"]
    for guest in (1, 7, 13):
        _check(engine, dataset, query, {"guest": guest})


def test_ordered_query_is_sorted(engine_setup):
    _model, workload, dataset, engine = engine_setup
    query = workload.statements["hotels_by_location"]
    rows = engine.execute_query(query, {"city": "city-0", "state": "S0"})
    names = [row["Hotel.HotelName"] for row in rows]
    assert names == sorted(names)


def test_execute_by_label(engine_setup):
    _model, _workload, _dataset, engine = engine_setup
    rows = engine.execute("guest_by_id", {"guest": 3})
    assert rows and "Guest.GuestName" in rows[0]
    with pytest.raises(ExecutionError):
        engine.execute("nonexistent", {})


def test_update_keeps_views_consistent(engine_setup):
    _model, workload, dataset, engine = engine_setup
    update = workload.statements["update_poi_description"]
    engine.execute_update(update, {"description": "UPDATED", "poi": 2})
    assert dataset.rows["PointOfInterest"][2][
        "PointOfInterest.POIDescription"] == "UPDATED"
    query = workload.statements["pois_for_hotel"]
    for hotel_id in range(2):
        _check(engine, dataset, query, {"hotel": hotel_id})


def test_insert_appears_in_queries(engine_setup):
    _model, workload, dataset, engine = engine_setup
    import datetime
    insert = workload.statements["make_reservation"]
    engine.execute_update(insert, {
        "ResID": 555_000, "start": datetime.datetime(2016, 6, 1),
        "end": datetime.datetime(2016, 6, 3), "guest": 11, "room": 4})
    query = workload.statements["pois_for_guest"]
    _check(engine, dataset, query, {"guest": 11})


def test_delete_removes_rows_everywhere(engine_setup):
    _model, workload, dataset, engine = engine_setup
    delete = workload.statements["delete_guest"]
    engine.execute_update(delete, {"guest": 9})
    assert 9 not in dataset.rows["Guest"]
    query = workload.statements["pois_for_guest"]
    rows = engine.execute_query(query, {"guest": 9})
    assert rows == []


def test_transaction_accumulates_simulated_time(engine_setup):
    _model, _workload, _dataset, engine = engine_setup
    elapsed = engine.execute_transaction([
        ("guest_by_id", {"guest": 1}),
        ("pois_for_guest", {"guest": 1}),
    ])
    assert elapsed > 0


def test_shared_reads_cache_identical_gets(engine_setup):
    model, workload, dataset, engine = engine_setup
    sharing = ExecutionEngine(model, engine.recommendation, dataset,
                              share_reads=True, update_protocol="expert")
    sharing.load()
    baseline = sharing.execute_transaction([
        ("guest_by_id", {"guest": 2}),
    ])
    doubled = sharing.execute_transaction([
        ("guest_by_id", {"guest": 2}),
        ("guest_by_id", {"guest": 2}),
    ])
    # the second identical request is answered from the cache
    assert doubled == pytest.approx(baseline)


def test_unshared_reads_pay_twice(engine_setup):
    _model, _workload, _dataset, engine = engine_setup
    baseline = engine.execute_transaction([
        ("guest_by_id", {"guest": 2}),
    ])
    doubled = engine.execute_transaction([
        ("guest_by_id", {"guest": 2}),
        ("guest_by_id", {"guest": 2}),
    ])
    assert doubled == pytest.approx(2 * baseline)


def test_invalid_update_protocol_rejected(engine_setup):
    model, _workload, dataset, engine = engine_setup
    with pytest.raises(ExecutionError):
        ExecutionEngine(model, engine.recommendation, dataset,
                        update_protocol="magic")


def test_sort_is_stable_with_nulls_last(engine_setup):
    """A None/missing sort value must order after every concrete value
    without raising TypeError, and ties must keep arrival order."""
    from types import SimpleNamespace
    _model, _workload, _dataset, engine = engine_setup
    step = SimpleNamespace(fields=[SimpleNamespace(id="f")])
    bindings = [{"f": 2, "tag": 0}, {"f": None, "tag": 1},
                {"tag": 2}, {"f": 1, "tag": 3}]
    ordered = engine._sort(step, bindings)
    assert [binding.get("f") for binding in ordered] \
        == [1, 2, None, None]
    # the explicit None and the missing value keep their relative order
    assert [binding["tag"] for binding in ordered
            if binding.get("f") is None] == [1, 2]


def test_filter_applies_the_canonical_null_rule(engine_setup):
    from types import SimpleNamespace

    from repro.workload.conditions import Condition
    model, _workload, _dataset, engine = engine_setup
    field = model.entity("Guest")["GuestName"]
    bindings = [{field.id: None}, {field.id: "x"}, {}]
    equality = SimpleNamespace(conditions=[Condition(field, "=", "p")])
    # NULL = NULL holds for both an explicit None and a missing value
    assert engine._filter(equality, {"p": None}, bindings) \
        == [{field.id: None}, {}]
    assert engine._filter(equality, {"p": "x"}, bindings) \
        == [{field.id: "x"}]
    ranged = SimpleNamespace(conditions=[Condition(field, ">", "p")])
    # ranges never match when either side is NULL
    assert engine._filter(ranged, {"p": "a"}, bindings) \
        == [{field.id: "x"}]
    assert engine._filter(ranged, {"p": None}, bindings) == []


def test_duplicate_statement_labels_rejected(engine_setup):
    """A query and an update sharing a label must be an error, not a
    silent last-writer-wins shadowing."""
    from types import SimpleNamespace
    model, workload, dataset, engine = engine_setup
    query = workload.statements["guest_by_id"]
    plan = engine._query_plans["guest_by_id"]

    class Impostor:
        label = "guest_by_id"

    impostor = Impostor()
    recommendation = SimpleNamespace(
        query_plans={query: plan},
        update_plans={impostor: []}, indexes=[])
    with pytest.raises(ExecutionError, match="duplicate"):
        ExecutionEngine(model, recommendation, dataset)


def test_expert_protocol_writes_fewer_rows(engine_setup):
    """The diff-upsert protocol must touch no more rows than the paper's
    delete-then-insert protocol for the same update."""
    model, workload, _dataset, engine = engine_setup
    from repro.demo import hotel_dataset
    results = {}
    for protocol in ("nose", "expert"):
        dataset = hotel_dataset(model, seed=42)
        fresh = ExecutionEngine(model, engine.recommendation, dataset,
                                update_protocol=protocol)
        fresh.load()
        fresh.store.reset_metrics()
        update = workload.statements["update_poi_description"]
        fresh.execute_update(update, {"description": "x", "poi": 1})
        metrics = fresh.store.metrics
        results[protocol] = (metrics.rows_written
                             + metrics.rows_deleted)
    assert results["expert"] <= results["nose"]
