"""Unit tests for the in-memory extensible record store."""

import pytest

from repro.backend import LatencyModel, Store
from repro.exceptions import ExecutionError
from repro.indexes import Index


@pytest.fixture()
def store():
    return Store()


@pytest.fixture()
def rooms_cf(hotel, store):
    city = hotel.field("Hotel", "HotelCity")
    rate = hotel.field("Room", "RoomRate")
    room_id = hotel.field("Room", "RoomID")
    index = Index((city,), (rate, room_id), (),
                  hotel.path(["Hotel", "Rooms"]))
    cf = store.create(index)
    for i, (rate_value, room) in enumerate(
            [(100.0, 1), (150.0, 2), (150.0, 3), (200.0, 4)]):
        cf.put({"Hotel.HotelCity": "boston", "Room.RoomRate": rate_value,
                "Room.RoomID": room})
    cf.put({"Hotel.HotelCity": "chicago", "Room.RoomRate": 300.0,
            "Room.RoomID": 9})
    return cf


def test_create_is_idempotent(hotel, store, rooms_cf):
    assert store.create(rooms_cf.index) is rooms_cf
    assert rooms_cf.index.key in store
    assert store[rooms_cf.index.key] is rooms_cf


def test_missing_cf_raises(store):
    with pytest.raises(ExecutionError):
        store["nope"]


def test_get_whole_partition(rooms_cf):
    rows = rooms_cf.get(("boston",))
    assert len(rows) == 4
    rates = [row["Room.RoomRate"] for row in rows]
    assert rates == sorted(rates)


def test_get_missing_partition_is_empty(rooms_cf):
    assert rooms_cf.get(("atlantis",)) == []


def test_get_with_clustering_prefix(rooms_cf):
    rows = rooms_cf.get(("boston",), prefix=(150.0,))
    assert {row["Room.RoomID"] for row in rows} == {2, 3}


def test_get_with_range(rooms_cf):
    rows = rooms_cf.get(("boston",), range_filter=(">", 100.0))
    assert {row["Room.RoomID"] for row in rows} == {2, 3, 4}
    rows = rooms_cf.get(("boston",), range_filter=(">=", 150.0))
    assert {row["Room.RoomID"] for row in rows} == {2, 3, 4}
    rows = rooms_cf.get(("boston",), range_filter=("<", 150.0))
    assert {row["Room.RoomID"] for row in rows} == {1}
    rows = rooms_cf.get(("boston",), range_filter=("<=", 150.0))
    assert {row["Room.RoomID"] for row in rows} == {1, 2, 3}


def test_get_with_bad_range_component(rooms_cf):
    with pytest.raises(ExecutionError):
        rooms_cf.get(("boston",), prefix=(150.0, 2),
                     range_filter=(">", 1))
    with pytest.raises(ExecutionError):
        rooms_cf.get(("boston",), range_filter=("~", 1))


def test_get_with_limit(rooms_cf):
    rows = rooms_cf.get(("boston",), limit=2)
    assert len(rows) == 2
    assert rows[0]["Room.RoomRate"] <= rows[1]["Room.RoomRate"]


def test_put_upserts_values(hotel, store):
    guest_id = hotel.field("Guest", "GuestID")
    name = hotel.field("Guest", "GuestName")
    index = Index((guest_id,), (), (name,), hotel.path(["Guest"]))
    cf = store.create(index)
    cf.put({"Guest.GuestID": 1, "Guest.GuestName": "ada"})
    cf.put({"Guest.GuestID": 1, "Guest.GuestName": "grace"})
    rows = cf.get((1,))
    assert len(rows) == 1
    assert rows[0]["Guest.GuestName"] == "grace"


def test_put_missing_key_column_raises(rooms_cf):
    with pytest.raises(ExecutionError):
        rooms_cf.put({"Hotel.HotelCity": "boston"})


def test_delete_row(rooms_cf):
    row = {"Hotel.HotelCity": "boston", "Room.RoomRate": 100.0,
           "Room.RoomID": 1}
    assert rooms_cf.delete_row(row)
    assert not rooms_cf.delete_row(row)  # already gone
    assert len(rooms_cf.get(("boston",))) == 3


def test_delete_last_row_drops_partition(rooms_cf):
    rooms_cf.delete_row({"Hotel.HotelCity": "chicago",
                         "Room.RoomRate": 300.0, "Room.RoomID": 9})
    assert rooms_cf.partition_count == 1


def test_batch_operations_count_one_request(hotel, store, rooms_cf):
    metrics = store.metrics
    metrics.reset()
    rows = [{"Hotel.HotelCity": "denver", "Room.RoomRate": float(i),
             "Room.RoomID": 100 + i} for i in range(5)]
    rooms_cf.put_many(rows)
    assert metrics.puts == 1
    assert metrics.rows_written == 5
    rooms_cf.delete_many(rows)
    assert metrics.deletes == 1
    assert metrics.rows_deleted == 5


def test_metrics_and_latency_accumulate(rooms_cf, store):
    store.reset_metrics()
    rooms_cf.get(("boston",))
    metrics = store.metrics
    assert metrics.gets == 1
    assert metrics.rows_read == 4
    assert metrics.rows_scanned == 4
    assert metrics.bytes_read > 0
    assert metrics.simulated_ms > 0
    snapshot = metrics.snapshot()
    assert snapshot["gets"] == 1


def test_partitions_touched_counts_distinct_partitions(hotel, store,
                                                       rooms_cf):
    metrics = store.metrics
    metrics.reset()
    rooms_cf.get(("boston",))
    assert metrics.partitions_touched == 1
    # a batch spanning two partitions touches two, charged once
    rows = [{"Hotel.HotelCity": city, "Room.RoomRate": 50.0,
             "Room.RoomID": 200 + i}
            for i, city in enumerate(["miami", "miami", "austin"])]
    rooms_cf.put_many(rows)
    assert metrics.partitions_touched == 3
    rooms_cf.delete_many(rows)
    assert metrics.partitions_touched == 5


class _RecordingStore:
    """Captures observe_op calls the way a flight recorder would."""

    def __init__(self):
        self.calls = []

    def observe_op(self, name, kind, **details):
        self.calls.append((name, kind, details))


def test_store_recorder_sees_every_charged_operation(rooms_cf, store):
    recorder = _RecordingStore()
    store.recorder = recorder
    rooms_cf.get(("boston",))
    row = {"Hotel.HotelCity": "boston", "Room.RoomRate": 99.0,
           "Room.RoomID": 77}
    rooms_cf.put(row)
    rooms_cf.delete_row(row)
    rooms_cf.get(("boston",), charge=False)  # uncharged: not observed
    kinds = [(kind, details["rows"])
             for _name, kind, details in recorder.calls]
    assert kinds == [("get", 4), ("put", 1), ("delete", 1)]
    get_details = recorder.calls[0][2]
    assert get_details["returned"] == 4
    assert get_details["bytes_read"] > 0
    assert get_details["time_ms"] > 0


def test_uncharged_operations_do_not_meter(rooms_cf, store):
    store.reset_metrics()
    rooms_cf.get(("boston",), charge=False)
    assert store.metrics.gets == 0
    assert store.metrics.simulated_ms == 0.0


def test_latency_model_components():
    latency = LatencyModel(get_base=1.0, row_scan=0.1, byte_transfer=0.01,
                           put_base=2.0, put_row=0.5, delete_base=3.0,
                           delete_row=0.25)
    assert latency.get_time(10, 100) == pytest.approx(1 + 1 + 1)
    assert latency.put_time(4) == pytest.approx(4.0)
    assert latency.delete_time(4) == pytest.approx(4.0)


def test_rows_iterator_and_len(rooms_cf):
    assert len(rooms_cf) == 5
    assert len(list(rooms_cf.rows())) == 5
    assert rooms_cf.partition_count == 2
    assert "rows=5" in repr(rooms_cf)


def test_store_totals(store, rooms_cf):
    assert store.total_rows == 5
    store.drop(rooms_cf.index)
    assert store.total_rows == 0
