"""Unit tests for key paths: construction, slicing, reversal, stats."""

import pytest

from repro.exceptions import ModelError
from repro.model import KeyPath


def _guest_to_hotel(hotel):
    return hotel.path(["Guest", "Reservations", "Room", "Hotel"])


def test_path_from_names(hotel):
    path = _guest_to_hotel(hotel)
    assert [entity.name for entity in path] == [
        "Guest", "Reservation", "Room", "Hotel"]
    assert str(path) == "Guest.Reservations.Room.Hotel"


def test_single_entity_path(hotel):
    path = hotel.path(["Guest"])
    assert len(path) == 1
    assert path.first is path.last


def test_path_requires_connected_keys(hotel):
    guest = hotel.entity("Guest")
    room_fk = hotel.entity("Reservation")["Room"]
    with pytest.raises(ModelError):
        KeyPath(guest, (room_fk,))


def test_path_rejects_non_fk_keys(hotel):
    guest = hotel.entity("Guest")
    with pytest.raises(ModelError):
        KeyPath(guest, (guest["GuestName"],))


def test_path_equality_and_hash(hotel):
    first = _guest_to_hotel(hotel)
    second = _guest_to_hotel(hotel)
    assert first == second
    assert hash(first) == hash(second)
    assert first != hotel.path(["Guest"])


def test_path_slicing(hotel):
    path = _guest_to_hotel(hotel)
    middle = path[1:3]
    assert [entity.name for entity in middle] == ["Reservation", "Room"]
    assert middle.keys == path.keys[1:2]
    with pytest.raises(ModelError):
        path[2:2]
    assert path[0].name == "Guest"
    assert path[-1].name == "Hotel"


def test_path_reverse_round_trip(hotel):
    path = _guest_to_hotel(hotel)
    reverse = path.reverse()
    assert [entity.name for entity in reverse] == [
        "Hotel", "Room", "Reservation", "Guest"]
    assert reverse.reverse() == path


def test_path_concat(hotel):
    left = hotel.path(["Guest", "Reservations"])
    right = hotel.path(["Reservation", "Room"])
    joined = left.concat(right)
    assert [entity.name for entity in joined] == [
        "Guest", "Reservation", "Room"]
    with pytest.raises(ModelError):
        right.concat(left)


def test_is_prefix_of(hotel):
    path = _guest_to_hotel(hotel)
    assert hotel.path(["Guest", "Reservations"]).is_prefix_of(path)
    assert path.is_prefix_of(path)
    assert not path.is_prefix_of(hotel.path(["Guest"]))
    assert not hotel.path(["Room"]).is_prefix_of(path)


def test_splits_enumerates_decompositions(hotel):
    path = _guest_to_hotel(hotel)
    splits = list(path.splits())
    assert len(splits) == 4
    for prefix, remainder in splits:
        assert prefix.last is remainder.first
        assert len(prefix) + len(remainder) == len(path) + 1


def test_index_of_and_includes(hotel):
    path = _guest_to_hotel(hotel)
    assert path.index_of(hotel.entity("Room")) == 2
    assert path.includes(hotel.entity("Hotel"))
    assert path.index_of(hotel.entity("Amenity")) == -1


def test_cardinality_follows_fanout(hotel):
    # Guest(50k) -> Reservations: many (fanout 2) -> Room: one -> Hotel: one
    path = _guest_to_hotel(hotel)
    reservations = hotel.entity("Reservation").count
    assert path.cardinality == pytest.approx(reservations)
    # the reverse direction visits the same join rows
    assert path.reverse().cardinality == pytest.approx(reservations)


def test_fanout_from(hotel):
    path = _guest_to_hotel(hotel)
    guests = hotel.entity("Guest").count
    reservations = hotel.entity("Reservation").count
    assert path.fanout_from(0) == pytest.approx(reservations / guests)
    assert path.fanout_from(1) == pytest.approx(1.0)


def test_cardinality_floors_at_one(hotel):
    tiny = hotel.path(["Hotel", "PointsOfInterest"])
    assert tiny.cardinality >= 1.0
