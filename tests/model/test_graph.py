"""Unit tests for the Model (entity graph) container."""

import pytest

from repro.exceptions import ModelError
from repro.model import Entity, IDField, Model


def _two_entity_model():
    model = Model("m")
    model.add_entity(Entity("A", count=10)).add_field(IDField("AID"))
    model.add_entity(Entity("B", count=40)).add_field(IDField("BID"))
    return model


def test_duplicate_entity_rejected():
    model = _two_entity_model()
    with pytest.raises(ModelError):
        model.add_entity(Entity("A"))


def test_add_entity_rejects_non_entity():
    with pytest.raises(ModelError):
        Model("m").add_entity("A")


def test_entity_lookup_and_passthrough():
    model = _two_entity_model()
    a = model.entity("A")
    assert model.entity(a) is a
    assert model["B"].name == "B"
    assert "A" in model and "C" not in model
    with pytest.raises(ModelError):
        model.entity("C")


def test_entity_passthrough_rejects_foreign_entity():
    model = _two_entity_model()
    other = Entity("A", count=3)
    with pytest.raises(ModelError):
        model.entity(other)


def test_field_lookup():
    model = _two_entity_model()
    assert model.field("A", "AID").id == "A.AID"


def test_add_relationship_wires_both_directions():
    model = _two_entity_model()
    forward = model.add_relationship("A", "Bs", "B", "A")
    assert forward.parent.name == "A"
    assert forward.entity.name == "B"
    assert forward.relationship == "many"
    assert forward.reverse.parent.name == "B"
    assert forward.reverse.relationship == "one"
    assert forward.reverse.reverse is forward


def test_relationship_kinds():
    for kind, (fwd, rev) in {
        "one_to_one": ("one", "one"),
        "one_to_many": ("many", "one"),
        "many_to_one": ("one", "many"),
        "many_to_many": ("many", "many"),
    }.items():
        model = _two_entity_model()
        forward = model.add_relationship("A", "Bs", "B", "As", kind=kind)
        assert (forward.relationship, forward.reverse.relationship) \
            == (fwd, rev)
    with pytest.raises(ModelError):
        _two_entity_model().add_relationship("A", "Bs", "B", "As",
                                             kind="octopus")


def test_relationship_count(hotel):
    assert hotel.relationship_count == 5


def test_path_rejects_bad_components(hotel):
    with pytest.raises(ModelError):
        hotel.path([])
    with pytest.raises(ModelError):
        hotel.path(["Guest", "GuestName"])
    with pytest.raises(ModelError):
        hotel.path(["Guest", "Nothing"])


def test_validate_empty_model():
    with pytest.raises(ModelError):
        Model("empty").validate()


def test_validate_passes_for_hotel(hotel):
    assert hotel.validate() is hotel


def test_describe_lists_entities(hotel):
    text = hotel.describe()
    for name in hotel.entities:
        assert name in text
    assert "Rooms -> Room" in text


def test_model_field_uniqueness():
    model = _two_entity_model()
    model.add_relationship("A", "Bs", "B", "A")
    with pytest.raises(ModelError):
        # reverse name clashes with B's existing field
        model.add_relationship("A", "MoreBs", "B", "BID")
