"""Unit tests for entity construction and introspection."""

import pytest

from repro.exceptions import ModelError
from repro.model import Entity, IDField, IntegerField, Model, StringField


def test_entity_requires_valid_name_and_count():
    with pytest.raises(ValueError):
        Entity("")
    with pytest.raises(ValueError):
        Entity("Hotel", count=0)


def test_add_fields_chains():
    entity = Entity("Hotel", count=5).add_fields(
        IDField("HotelID"), StringField("HotelName"))
    assert list(entity.fields) == ["HotelID", "HotelName"]


def test_duplicate_field_rejected():
    entity = Entity("Hotel")
    entity.add_field(StringField("Name"))
    with pytest.raises(ModelError):
        entity.add_field(IntegerField("Name"))


def test_second_id_field_rejected():
    entity = Entity("Hotel")
    entity.add_field(IDField("A"))
    with pytest.raises(ModelError):
        entity.add_field(IDField("B"))


def test_add_field_rejects_non_field():
    with pytest.raises(ModelError):
        Entity("Hotel").add_field("not a field")


def test_getitem_and_contains():
    entity = Entity("Hotel").add_fields(IDField("HotelID"))
    assert entity["HotelID"].name == "HotelID"
    assert "HotelID" in entity
    assert "Missing" not in entity
    with pytest.raises(ModelError):
        entity["Missing"]


def test_field_groups(hotel):
    room = hotel.entity("Room")
    assert room.id_field.name == "RoomID"
    data_names = {field.name for field in room.data_fields}
    assert data_names == {"RoomNumber", "RoomRate"}
    fk_names = {field.name for field in room.foreign_keys}
    assert fk_names == {"Hotel", "Reservations"}
    attribute_names = [field.name for field in room.attributes]
    assert attribute_names[0] == "RoomID"
    assert set(attribute_names) == {"RoomID", "RoomNumber", "RoomRate"}


def test_validate_requires_id_field():
    entity = Entity("Hotel")
    entity.add_field(StringField("Name"))
    with pytest.raises(ModelError):
        entity.validate()


def test_validate_requires_reversible_foreign_keys():
    model = Model("m")
    a = model.add_entity(Entity("A", count=2))
    a.add_field(IDField("AID"))
    b = model.add_entity(Entity("B", count=2))
    b.add_field(IDField("BID"))
    from repro.model import ForeignKeyField
    a.add_field(ForeignKeyField("Bs", b, relationship="many"))
    with pytest.raises(ModelError):
        a.validate()


def test_repr_mentions_name_and_count():
    assert "Hotel" in repr(Entity("Hotel", count=7))
    assert "7" in repr(Entity("Hotel", count=7))
