"""Unit tests for field types and their statistics."""

import datetime

import pytest

from repro.model import (
    BooleanField,
    DateField,
    Entity,
    FloatField,
    ForeignKeyField,
    IDField,
    IntegerField,
    Model,
    StringField,
)


def test_field_id_includes_parent():
    entity = Entity("Hotel", count=10)
    field = entity.add_field(StringField("HotelName"))
    assert field.id == "Hotel.HotelName"
    assert str(field) == "Hotel.HotelName"


def test_field_id_without_parent_is_marked_unknown():
    field = StringField("Loose")
    assert field.id == "?.Loose"


def test_field_requires_name():
    with pytest.raises(ValueError):
        StringField("")
    with pytest.raises(ValueError):
        StringField(None)


def test_default_sizes_differ_by_type():
    assert IDField("x").size == 16
    assert StringField("x").size == 10
    assert IntegerField("x").size == 8
    assert BooleanField("x").size == 1


def test_explicit_size_overrides_default():
    assert StringField("x", size=99).size == 99


def test_cardinality_defaults_to_entity_count():
    entity = Entity("Guest", count=500)
    field = entity.add_field(StringField("GuestName"))
    assert field.cardinality == 500


def test_cardinality_capped_by_entity_count():
    entity = Entity("Guest", count=10)
    field = entity.add_field(StringField("GuestName", cardinality=1000))
    assert field.cardinality == 10


def test_explicit_cardinality_below_count_is_kept():
    entity = Entity("Guest", count=1000)
    field = entity.add_field(StringField("City", cardinality=20))
    assert field.cardinality == 20


def test_id_field_cardinality_is_entity_count():
    entity = Entity("Guest", count=321)
    field = entity.add_field(IDField("GuestID"))
    assert field.cardinality == 321
    with pytest.raises(ValueError):
        field.cardinality = 5


def test_boolean_field_cardinality_defaults_to_two():
    entity = Entity("Guest", count=1000)
    field = entity.add_field(BooleanField("Active"))
    assert field.cardinality == 2


def test_field_validation_by_type():
    assert IntegerField("x").validate(5)
    assert not IntegerField("x").validate(True)
    assert not IntegerField("x").validate(5.0)
    assert FloatField("x").validate(5.0)
    assert FloatField("x").validate(5)
    assert not FloatField("x").validate(True)
    assert StringField("x").validate("hi")
    assert not StringField("x").validate(7)
    assert DateField("x").validate(datetime.datetime(2016, 1, 1))
    assert not DateField("x").validate("2016-01-01")


def _linked_pair():
    model = Model("m")
    model.add_entity(Entity("A", count=10)).add_field(IDField("AID"))
    model.add_entity(Entity("B", count=100)).add_field(IDField("BID"))
    forward = model.add_relationship("A", "Bs", "B", "A")
    return model, forward


def test_foreign_key_relationship_validation():
    with pytest.raises(ValueError):
        ForeignKeyField("x", Entity("A"), relationship="several")


def test_foreign_key_cardinality_is_target_count():
    _model, forward = _linked_pair()
    assert forward.cardinality == 100
    assert forward.reverse.cardinality == 10


def test_foreign_key_fanout_one_to_many():
    _model, forward = _linked_pair()
    assert forward.fanout == pytest.approx(10.0)
    assert forward.reverse.fanout == 1.0


def test_foreign_key_fanout_override():
    model = Model("m")
    model.add_entity(Entity("A", count=30)).add_field(IDField("AID"))
    model.add_entity(Entity("B", count=70)).add_field(IDField("BID"))
    forward = model.add_relationship("A", "Bs", "B", "A",
                                     kind="many_to_many",
                                     forward_fanout=7.0,
                                     reverse_fanout=3.0)
    assert forward.fanout == 7.0
    assert forward.reverse.fanout == 3.0


def test_inconsistent_fanout_overrides_rejected():
    from repro.exceptions import ModelError
    model = Model("m")
    model.add_entity(Entity("A", count=10)).add_field(IDField("AID"))
    model.add_entity(Entity("B", count=100)).add_field(IDField("BID"))
    with pytest.raises(ModelError):
        model.add_relationship("A", "Bs", "B", "A", kind="many_to_many",
                               forward_fanout=7.0, reverse_fanout=3.0)


def test_foreign_key_cardinality_cannot_be_set():
    _model, forward = _linked_pair()
    with pytest.raises(ValueError):
        forward.cardinality = 7
