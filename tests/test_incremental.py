"""Incremental (delta) preparation: correctness and accounting.

The contract of the per-statement artifact store: for ANY sequence of
workload edits, an advisor that prepared earlier versions incrementally
must produce *exactly* the recommendation a cold advisor produces on
the final workload — same total cost, byte-identical explain document
(timing aside).  Cold and incremental prepares share one code path, so
these tests guard the artifact keying (structural signature + stage
config + relevant-pool fingerprints) that makes reuse safe.
"""

import json
import warnings

import pytest

from repro import Advisor, telemetry
from repro.demo import hotel_model, hotel_workload
from repro.exceptions import TruncationWarning
from repro.explain import explain_document
from repro.pipeline import ArtifactStore
from repro.workload.statements import Query


@pytest.fixture(autouse=True)
def _quiet_truncation():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TruncationWarning)
        yield


def _canonical(recommendation):
    document = json.loads(json.dumps(explain_document(recommendation)))
    document.pop("timing", None)
    meta = document.get("meta")
    if isinstance(meta, dict):
        meta.pop("timing", None)
    return json.dumps(document)


def _edit_query(workload, label, weight=2.0):
    """Structurally edit one query in place: change its selected fields."""
    original = workload.remove_statement(label)
    select = list(original.select)
    if len(select) > 1:
        select = select[:-1]
    else:
        extra = [field for field in original.entity.attributes
                 if field not in select]
        select = select + extra[:1]
    edited = Query(original.key_path, select, original.conditions,
                   order_by=original.order_by, limit=original.limit,
                   label=label)
    workload.add_statement(edited, weight=weight, label=label)
    return edited


def _assert_equivalent(incremental, final_workload, model, **advisor_kw):
    served = incremental.recommend(final_workload)
    cold = Advisor(model, **advisor_kw).recommend(final_workload)
    assert served.total_cost == cold.total_cost
    assert _canonical(served) == _canonical(cold)
    return served


# -- equivalence: incremental == cold on the final workload ----------------


def test_hotel_add_remove_edit_sequence_matches_cold():
    model = hotel_model()
    base = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    advisor.recommend(base)

    # remove a query
    step1 = base.clone()
    step1.remove_statement("pois_for_hotel")
    _assert_equivalent(advisor, step1, model)

    # add a new query
    step2 = step1.clone()
    step2.add_statement(
        "SELECT Guest.GuestEmail FROM Guest "
        "WHERE Guest.GuestID = ?gid", label="guest_email")
    _assert_equivalent(advisor, step2, model)

    # edit an existing query (same label, different structure)
    step3 = step2.clone()
    _edit_query(step3, "guest_by_id")
    _assert_equivalent(advisor, step3, model)

    # and going back to the base workload still matches cold
    _assert_equivalent(advisor, base, model)


def test_rubis_add_remove_edit_sequence_matches_cold():
    from repro.rubis import rubis_model, rubis_workload
    model = rubis_model()
    base = rubis_workload(model, mix="bidding")
    advisor = Advisor(model, max_plans=100)
    advisor.recommend(base)

    edited = base.clone()
    removed = edited.remove_statement("bc_categories")
    _edit_query(edited, "vi_item")
    edited.add_statement(removed, weight=0.5, label="bc_categories")
    _assert_equivalent(advisor, edited, model, max_plans=100)


# -- delta accounting -------------------------------------------------------


def test_single_edit_replans_only_affected_statements():
    model = hotel_model()
    base = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    prepared = advisor.prepare(base)
    total = len(prepared.query_plans) + len(prepared.update_plans)
    assert prepared.reused_statements == 0
    assert prepared.replanned_statements == total

    edited = base.clone()
    edited.remove_statement("pois_for_hotel")
    delta = advisor.prepare(edited)
    remaining = len(delta.query_plans) + len(delta.update_plans)
    assert delta.reused_statements + delta.replanned_statements \
        == remaining
    assert delta.reused_statements > 0
    assert delta.replanned_statements < remaining

    # structurally identical re-prepare is a whole-workload cache hit
    again = advisor.prepare(edited.clone())
    assert again is delta
    assert again.reused_statements == remaining
    assert again.replanned_statements == 0


def test_delta_counters_and_timing_report():
    model = hotel_model()
    base = hotel_workload(model, include_updates=True)
    edited = base.clone()
    edited.remove_statement("pois_for_hotel")
    with telemetry.activate() as sink:
        advisor = Advisor(model)
        advisor.recommend(base)
        recommendation = advisor.recommend(edited)
        report = sink.report()
    counters = report.as_dict()["metrics"]["counters"]
    assert counters["advisor.delta_reused_statements"] > 0
    assert counters["advisor.delta_replanned_statements"] > 0
    timing = recommendation.timing
    assert timing.reused_statements > 0
    assert timing.reused_statements + timing.replanned_statements \
        == len(edited.queries) + len(edited.updates)


# -- warm-started solves ----------------------------------------------------


def test_warm_start_reaches_the_same_cost():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    first = advisor.recommend(workload)
    heavier = workload.scale_weights(4)
    with telemetry.activate() as sink:
        warm = advisor.recommend(heavier, warm_start=first)
        report = sink.report()
    cold = Advisor(model).recommend(heavier)
    assert warm.total_cost == pytest.approx(cold.total_cost)
    counters = report.as_dict()["metrics"]["counters"]
    assert counters.get("bip.warm_starts_applied", 0) == 1


def test_infeasible_warm_start_is_ignored():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    baseline = Advisor(model).recommend(workload)
    # an empty schema can answer no query: the incumbent is infeasible
    # and the solve must fall back to the unbounded path
    warm = advisor.recommend(workload, warm_start=[])
    assert warm.total_cost == pytest.approx(baseline.total_cost)


# -- the artifact store itself ----------------------------------------------


def test_artifact_store_is_a_bounded_lru():
    store = ArtifactStore(capacity=2)
    store.put("a", 1)
    store.put("b", 2)
    assert store.get("a") == 1  # refreshes "a"
    store.put("c", 3)  # evicts "b", the least recently used
    assert store.get("b") is None
    assert store.get("a") == 1
    assert store.get("c") == 3
    stats = store.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 3 and stats["misses"] == 1
    assert stats["size"] == 2
    assert "a" in store and "b" not in store
    assert len(store) == 2
    store.clear()
    assert len(store) == 0


def test_artifact_store_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        ArtifactStore(capacity=0)


def test_advisor_store_fills_and_serves():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    advisor.prepare(workload)
    assert len(advisor.artifacts) > 0
    before = advisor.artifacts.stats()["hits"]
    advisor.clear_cache()  # prepared-workload cache, not artifacts
    replayed = advisor.prepare(workload)
    total = len(replayed.query_plans) + len(replayed.update_plans)
    assert replayed.reused_statements == total
    assert advisor.artifacts.stats()["hits"] > before
