"""The fuzz driver: seeded random trials through the oracle."""

from repro.backend.executor import ExecutionEngine
from repro.verify import fuzz_workloads


class DroppingEngine(ExecutionEngine):
    """Broken on purpose: silently loses the first result row."""

    def execute_query(self, query, params, plan=None):
        rows = super().execute_query(query, params, plan=plan)
        return rows[1:]


SMALL = dict(trials=1, seed=3, entities=3, queries=3, updates=1,
             inserts=1, requests=12, rows_per_entity=8, max_plans=40)


def test_fuzz_trials_pass_and_are_deterministic():
    first = fuzz_workloads(**SMALL)
    assert len(first) == 2  # one result per update protocol
    assert all(trial.ok for trial in first), [
        trial.as_dict() for trial in first if not trial.ok]
    assert {trial.protocol for trial in first} == {"nose", "expert"}
    assert all(trial.checks > 0 for trial in first)
    second = fuzz_workloads(**SMALL)
    assert [trial.as_dict() for trial in first] \
        == [trial.as_dict() for trial in second]


def test_fuzz_catches_an_injected_bug_with_a_reproducer():
    results = fuzz_workloads(engine_factory=DroppingEngine, **SMALL)
    failing = [trial for trial in results if not trial.ok]
    assert failing
    trial = failing[0]
    assert trial.divergences
    assert trial.shrunk is not None
    record = trial.shrunk.as_dict()
    assert record["requests"]
    assert record["replays"] > 0
    # the shrunk dataset is no larger than the one the trial started with
    assert all(count <= SMALL["rows_per_entity"]
               for count in record["dataset_rows"].values())
