"""Differential verification of the extended statement constructs.

Every new construct — aggregation, IN-lists, disjunction, ``!=`` —
must execute through recommended plans to exactly the answer the
reference interpreter computes, under both update protocols.
"""

import pytest

from repro import Advisor
from repro.demo import hotel_dataset, hotel_model
from repro.verify import DifferentialRunner, verify_recommendation
from repro.verify.fuzz import fuzz_workloads
from repro.workload.parser import parse_statement
from repro.workload.workload import Workload

TEXTS = {
    "agg_global": "SELECT COUNT(*), MIN(Reservation.ResStartDate), "
                  "MAX(Reservation.ResEndDate) FROM Reservation.Guest "
                  "WHERE Guest.GuestID = ?gid",
    "agg_grouped": "SELECT Reservation.ResStartDate, "
                   "COUNT(Reservation.ResID) FROM Reservation.Room "
                   "WHERE Room.RoomID = ?r "
                   "GROUP BY Reservation.ResStartDate",
    "in_list": "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
               "WHERE Guest.GuestID IN (?a, ?b, ?c)",
    "disjunct": "SELECT Guest.GuestName FROM Guest "
                "WHERE Guest.GuestID = ?x OR Guest.GuestName = ?n",
    "neq": "SELECT Room.RoomRate FROM Room.Hotel "
           "WHERE Hotel.HotelCity = ?c AND Room.RoomNumber != ?num",
    "in_update": "UPDATE Guest SET GuestEmail = ?mail "
                 "WHERE Guest.GuestID IN (?a, ?b)",
}


@pytest.fixture(scope="module")
def extended_world():
    model = hotel_model(scale=0.01)
    dataset = hotel_dataset(model, seed=0)
    dataset.sync_counts()
    workload = Workload(model)
    for label, text in TEXTS.items():
        workload.add_statement(parse_statement(model, text, label=label),
                               weight=1.0)
    recommendation = Advisor(model, max_plans=60).recommend(workload)
    return model, workload, dataset, recommendation


def test_extended_constructs_verify_under_both_protocols(extended_world):
    model, workload, dataset, recommendation = extended_world
    report = verify_recommendation(model, workload, recommendation,
                                   dataset, seed=7, rounds=3)
    assert report["ok"], report
    for protocol in ("nose", "expert"):
        entry = report["protocols"][protocol]
        assert entry["ok"], entry
        assert entry["checks"] == 3 * len(workload.statements)


def test_global_aggregate_over_zero_rows_returns_one_row(extended_world):
    model, workload, dataset, recommendation = extended_world
    runner = DifferentialRunner(model, recommendation, dataset.copy())
    query = workload.statements["agg_global"]
    # a guest ID that matches nothing: COUNT must be 0, MIN/MAX NULL
    assert runner.check(query, {"gid": -1}) == []
    executed = runner.engine.execute_query(query, {"gid": -1})
    assert executed == [{"COUNT(*)": 0,
                         "MIN(Reservation.ResStartDate)": None,
                         "MAX(Reservation.ResEndDate)": None}]


def test_in_list_with_duplicate_values_stays_distinct(extended_world):
    model, workload, dataset, recommendation = extended_world
    runner = DifferentialRunner(model, recommendation, dataset.copy())
    query = workload.statements["in_list"]
    # duplicate members must not duplicate result rows
    assert runner.check(query, {"a": 1, "b": 1, "c": 2}) == []


def test_extended_fuzz_rounds_find_no_divergence():
    """Seeded extended-language fuzz: the CI gate in miniature."""
    results = fuzz_workloads(trials=2, seed=2026, extended=True)
    assert all(trial.ok for trial in results), [
        trial.as_dict() for trial in results if not trial.ok]
