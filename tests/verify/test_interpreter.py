"""The reference interpreter: canonical statement semantics.

Cross-checks against :meth:`Dataset.evaluate_query` (the set-level
oracle the executor tests already use) and pins the ordering, LIMIT,
and NULL behaviour that set-level comparison cannot see.
"""

import pytest

from repro.verify import ReferenceInterpreter
from repro.workload import parse_statement


@pytest.fixture()
def interpreter(small_hotel, small_hotel_data):
    small_hotel_data.sync_counts()
    return ReferenceInterpreter(small_hotel, small_hotel_data)


def test_matches_set_level_oracle(small_hotel, small_hotel_data,
                                  interpreter, hotel_full):
    workload = hotel_full
    cases = [
        ("guest_by_id", {"guest": 5}),
        ("guests_in_city_above_rate", {"city": "city-0", "rate": 200.0}),
        ("pois_for_guest", {"guest": 7}),
        ("hotels_by_location", {"city": "city-0", "state": "S0"}),
    ]
    for label, params in cases:
        query = _statement(small_hotel, workload, label)
        result = interpreter.evaluate_query(query, params)
        got = {result.key_of(row) for row in result.rows}
        assert got == small_hotel_data.evaluate_query(query, params)


def _statement(model, workload, label):
    # workload fixtures are built over the session-scoped full model;
    # re-parse the statement against the small model under test
    return parse_statement(model, workload.statements[label].text)


def test_order_by_is_sorted_and_stable(small_hotel, small_hotel_data,
                                       interpreter, hotel_full):
    query = _statement(small_hotel, hotel_full, "hotels_by_location")
    result = interpreter.evaluate_query(
        query, {"city": "city-0", "state": "S0"})
    names = [row["Hotel.HotelName"] for row in result.rows]
    assert names == sorted(names)


def test_limit_truncates_rows_but_not_full_rows(small_hotel,
                                                interpreter):
    query = parse_statement(
        small_hotel,
        "SELECT Room.RoomID FROM Room "
        "WHERE Room.Hotel.HotelCity = ?city LIMIT 3")
    result = interpreter.evaluate_query(query, {"city": "city-0"})
    assert len(result.rows) == 3
    assert len(result.full_rows) > 3
    # the LIMIT cut keeps the sorted/deduplicated prefix
    assert result.rows == result.full_rows[:3]


def test_null_equality_matches_null_rows(small_hotel, small_hotel_data,
                                         interpreter):
    small_hotel_data.rows["Guest"][3]["Guest.GuestName"] = None
    query = parse_statement(
        small_hotel,
        "SELECT Guest.GuestID FROM Guest "
        "WHERE Guest.GuestName = ?name")
    result = interpreter.evaluate_query(query, {"name": None})
    assert {row["Guest.GuestID"] for row in result.rows} == {3}


def test_null_never_satisfies_ranges(small_hotel, small_hotel_data,
                                     interpreter):
    small_hotel_data.rows["Room"][0]["Room.RoomRate"] = None
    city = small_hotel_data.rows["Hotel"][0]["Hotel.HotelCity"]
    query = parse_statement(
        small_hotel,
        "SELECT Room.RoomID FROM Room "
        "WHERE Room.Hotel.HotelCity = ?city "
        "AND Room.RoomRate >= ?rate")
    result = interpreter.evaluate_query(query,
                                        {"city": city, "rate": 0.0})
    assert result.rows
    assert 0 not in {row["Room.RoomID"] for row in result.rows}
    # a NULL bound matches nothing at all
    empty = interpreter.evaluate_query(query,
                                       {"city": city, "rate": None})
    assert len(empty.rows) == 0


def test_nulls_order_last(small_hotel, small_hotel_data, interpreter):
    # room 5 belongs to hotel 1 in the generated data
    small_hotel_data.rows["Room"][5]["Room.RoomRate"] = None
    query = parse_statement(
        small_hotel,
        "SELECT Room.RoomRate, Room.RoomID FROM Room "
        "WHERE Room.Hotel.HotelID = ?hotel ORDER BY Room.RoomRate")
    result = interpreter.evaluate_query(query, {"hotel": 1})
    rates = [row["Room.RoomRate"] for row in result.rows]
    assert len(rates) > 1
    assert rates[-1] is None
    assert all(rate is not None for rate in rates[:-1])


def test_write_statements_mutate_the_dataset(small_hotel,
                                             small_hotel_data,
                                             interpreter, hotel_full):
    update = _statement(small_hotel, hotel_full,
                        "update_poi_description")
    interpreter.execute(update, {"description": "CHANGED", "poi": 1})
    assert small_hotel_data.rows["PointOfInterest"][1][
        "PointOfInterest.POIDescription"] == "CHANGED"
