"""The canonical NULL comparison and ordering rules.

One shared definition (:mod:`repro.workload.semantics`) governs every
layer that compares attribute values; these tests pin the rules the
differential oracle depends on.
"""

import pytest

from repro.model import StringField
from repro.workload.conditions import Condition
from repro.workload.semantics import (
    matches,
    ordering_key,
    row_ordering_key,
)


def test_null_equality():
    assert matches("=", None, None)
    assert not matches("=", None, "x")
    assert not matches("=", "x", None)
    assert matches("=", "x", "x")


@pytest.mark.parametrize("operator", [">", ">=", "<", "<="])
def test_ranges_never_match_null(operator):
    assert not matches(operator, None, 5)
    assert not matches(operator, 5, None)
    assert not matches(operator, None, None)


def test_range_operators_on_values():
    assert matches(">", 2, 1)
    assert not matches(">", 1, 1)
    assert matches(">=", 1, 1)
    assert matches("<", 1, 2)
    assert matches("<=", 2, 2)


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        matches("LIKE", 1, 2)


def test_inequality_and_membership_matching():
    assert matches("!=", 1, 2)
    assert not matches("!=", 1, 1)
    # != is the exact complement of =, so NULL != NULL is False and
    # NULL != 1 is True
    assert not matches("!=", None, None)
    assert matches("!=", None, 1)
    assert matches("!=", 1, None)
    assert matches("IN", 2, (1, 2, 3))
    assert not matches("IN", 4, (1, 2, 3))
    # membership is member-wise equality, so NULL IN (.., NULL, ..) holds
    assert matches("IN", None, (1, None))
    assert not matches("IN", None, (1, 2))
    assert not matches("IN", 1, ())


def test_nulls_sort_last():
    values = [3, None, 1, None, 2]
    ordered = sorted(values, key=ordering_key)
    assert ordered == [1, 2, 3, None, None]


def test_row_ordering_key_handles_mixed_nulls():
    rows = [(1, None), (None, 1), (1, 1)]
    ordered = sorted(rows, key=row_ordering_key)
    assert ordered == [(1, 1), (1, None), (None, 1)]


def test_condition_matches_uses_the_canonical_rule():
    field = StringField("Name")
    equality = Condition(field, "=", "p")
    assert equality.matches(None, None)
    assert not equality.matches(None, "x")
    ranged = Condition(field, ">", "p")
    assert not ranged.matches(None, "a")
    assert not ranged.matches("b", None)
    assert ranged.matches("b", "a")
