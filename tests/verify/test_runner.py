"""The differential runner and whole-recommendation verification."""

import pytest

from repro import Advisor
from repro.randgen import random_dataset, random_model, random_workload
from repro.verify import DifferentialRunner, verify_recommendation


@pytest.fixture(scope="module")
def verified_hotel():
    from repro.demo import hotel_dataset, hotel_model, hotel_workload
    model = hotel_model(scale=0.01)
    workload = hotel_workload(model, include_updates=True)
    dataset = hotel_dataset(model, seed=0)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    return model, workload, dataset, recommendation


def test_hotel_verifies_cleanly_under_both_protocols(verified_hotel):
    model, workload, dataset, recommendation = verified_hotel
    report = verify_recommendation(model, workload, recommendation,
                                   dataset, seed=0)
    assert report["ok"], report
    for protocol in ("nose", "expert"):
        entry = report["protocols"][protocol]
        assert entry["ok"]
        assert entry["checks"] == 3 * len(workload.statements)
        assert entry["divergences"] == []


def test_verification_leaves_the_input_dataset_untouched(verified_hotel):
    model, workload, dataset, recommendation = verified_hotel
    before = {name: dict(rows) for name, rows in dataset.rows.items()}
    verify_recommendation(model, workload, recommendation, dataset,
                          seed=1, rounds=1, protocols=("nose",))
    assert {name: dict(rows)
            for name, rows in dataset.rows.items()} == before


def test_sweep_catches_store_corruption(verified_hotel):
    model, workload, dataset, recommendation = verified_hotel
    runner = DifferentialRunner(model, recommendation, dataset.copy())
    assert runner.sweep() == []
    index = recommendation.indexes[0]
    column_family = runner.engine.store[index.key]
    victim = next(iter(column_family.rows()))
    column_family.delete_many([victim])
    divergences = runner.sweep(label="corruption")
    assert divergences
    assert divergences[0].kind == "store_inconsistent"
    assert divergences[0].index == index.key


def test_query_mismatch_reports_missing_rows(verified_hotel):
    model, workload, dataset, recommendation = verified_hotel
    runner = DifferentialRunner(model, recommendation, dataset.copy())
    query = workload.statements["guest_by_id"]
    # corrupt the store row the query reads, then check it
    for index in recommendation.indexes:
        column_family = runner.engine.store[index.key]
        column_family.delete_many(list(column_family.rows()))
    found = runner.check(query, {"guest": 1})
    assert any(d.kind == "result_mismatch" for d in found)
    assert not runner.ok


def test_random_workload_verifies_cleanly():
    """Fuzz pin: one seeded random trial through the full oracle."""
    seed = 4
    model = random_model(entities=4, seed=seed)
    workload = random_workload(model, queries=4, updates=2, inserts=1,
                               seed=seed)
    dataset = random_dataset(model, seed=seed, rows_per_entity=10)
    dataset.sync_counts()
    recommendation = Advisor(model, max_plans=60).recommend(workload)
    report = verify_recommendation(model, workload, recommendation,
                                   dataset, seed=seed, rounds=1)
    assert report["ok"], report
