"""Mutation tests: deliberately broken engines must be caught.

The oracle is only trustworthy if it fails when the executor is wrong;
these tests inject known-bad engines through ``engine_factory`` and
assert the divergence is detected and shrunk to a minimal reproducer.
"""

from repro import Advisor
from repro.backend.dataset import Dataset
from repro.backend.executor import ExecutionEngine
from repro.model import Entity, IDField, Model, StringField
from repro.verify import verify_recommendation
from repro.workload import Workload


class DroppingEngine(ExecutionEngine):
    """Broken on purpose: silently loses the first result row."""

    def execute_query(self, query, params, plan=None):
        rows = super().execute_query(query, params, plan=plan)
        return rows[1:]


class StaleStoreEngine(ExecutionEngine):
    """Broken on purpose: mutates the dataset but never maintains the
    recommended column families."""

    def execute_update(self, update, params):
        self.dataset.apply(update, params)
        return 0


def _tiny_application(with_update=False):
    model = Model("tiny")
    entity = Entity("A", count=6)
    entity.add_field(IDField("AID"))
    entity.add_field(StringField("AName", cardinality=6))
    model.add_entity(entity)
    model.validate()
    workload = Workload(model)
    workload.add_statement("SELECT A.AName FROM A WHERE A.AID = ?id",
                           label="q0")
    if with_update:
        workload.add_statement(
            "UPDATE A SET AName = ?value WHERE A.AID = ?id",
            weight=1.0, label="u0")
    dataset = Dataset(model)
    for identifier in range(6):
        dataset.add_row("A", {"AID": identifier,
                              "AName": f"a{identifier}"})
    dataset.sync_counts()
    return model, workload, dataset


def test_dropped_rows_are_caught_and_shrunk():
    model, workload, dataset = _tiny_application()
    recommendation = Advisor(model).recommend(workload)
    report = verify_recommendation(
        model, workload, recommendation, dataset, seed=0,
        protocols=("nose",), engine_factory=DroppingEngine)
    assert not report["ok"]
    entry = report["protocols"]["nose"]
    divergence = entry["divergences"][0]
    assert divergence["kind"] == "result_mismatch"
    assert divergence["label"] == "q0"
    shrunk = entry["shrunk"]
    # minimal reproducer: one request against a one-row dataset
    assert len(shrunk["requests"]) == 1
    assert shrunk["requests"][0]["label"] == "q0"
    assert sum(shrunk["dataset_rows"].values()) == 1
    assert shrunk["divergence"]["kind"] == "result_mismatch"


def test_skipped_view_maintenance_is_caught():
    model, workload, dataset = _tiny_application(with_update=True)
    recommendation = Advisor(model).recommend(workload)
    report = verify_recommendation(
        model, workload, recommendation, dataset, seed=0,
        protocols=("expert",), engine_factory=StaleStoreEngine,
        shrink=False)
    assert not report["ok"]
    kinds = {divergence["kind"] for divergence
             in report["protocols"]["expert"]["divergences"]}
    assert "store_inconsistent" in kinds


def test_healthy_engine_passes_the_same_checks():
    model, workload, dataset = _tiny_application(with_update=True)
    recommendation = Advisor(model).recommend(workload)
    report = verify_recommendation(
        model, workload, recommendation, dataset, seed=0)
    assert report["ok"], report
