"""Tests for the ASCII chart rendering helpers."""

import pytest

from repro.exceptions import NoseError
from repro.reporting import bar_chart, grouped_bar_chart, stacked_series


def test_bar_chart_scales_linearly():
    chart = bar_chart({"a": 10.0, "b": 5.0, "c": 0.0}, width=20)
    lines = chart.splitlines()
    assert len(lines) == 3
    bars = {line.split()[0]: line.count("█") for line in lines}
    assert bars["a"] == 20
    assert bars["b"] == 10
    assert bars["c"] == 0
    assert "10.000" in lines[0]


def test_bar_chart_log_scale_compresses():
    linear = bar_chart({"small": 1.0, "big": 100.0}, width=20)
    logarithmic = bar_chart({"small": 1.0, "big": 100.0}, width=20,
                            log_scale=True)
    small_linear = linear.splitlines()[0].count("█")
    small_log = logarithmic.splitlines()[0].count("█")
    assert small_log > small_linear


def test_bar_chart_accepts_pairs_and_unit():
    chart = bar_chart([("x", 2.0), ("y", 1.0)], unit=" ms")
    assert "ms" in chart


def test_bar_chart_empty_rejected():
    with pytest.raises(NoseError):
        bar_chart({})


def test_grouped_bar_chart_structure():
    table = {"ViewItem": {"NoSE": 1.0, "Expert": 2.0},
             "StoreBid": {"NoSE": 3.0, "Expert": 1.5}}
    chart = grouped_bar_chart(table, width=10)
    assert "ViewItem:" in chart
    assert "StoreBid:" in chart
    assert chart.count("NoSE") == 2
    with pytest.raises(NoseError):
        grouped_bar_chart({})


def test_stacked_series_renders_components():
    rows = {1: {"solve": 1.0, "other": 1.0},
            2: {"solve": 3.0, "other": 2.0}}
    chart = stacked_series(rows, ["solve", "other"], width=20)
    lines = chart.splitlines()
    assert len(lines) == 3  # two rows + legend
    assert "solve" in lines[-1] and "other" in lines[-1]
    # the factor-2 bar is longer overall
    assert len(lines[1].split()[1]) > len(lines[0].split()[1])


def test_stacked_series_limits_components():
    with pytest.raises(NoseError):
        stacked_series({1: {}}, ["a", "b", "c", "d", "e"])
    with pytest.raises(NoseError):
        stacked_series({}, ["a"])
