"""Tests for the ASCII chart rendering helpers."""

import pytest

from repro.exceptions import NoseError
from repro.reporting import (
    bar_chart,
    diff_report,
    explain_report,
    grouped_bar_chart,
    metrics_summary,
    profile_report,
    render_run_report,
    span_tree,
    stacked_series,
    timing_table,
)

_BAR = "█"


def test_bar_chart_scales_linearly():
    chart = bar_chart({"a": 10.0, "b": 5.0, "c": 0.0}, width=20)
    lines = chart.splitlines()
    assert len(lines) == 3
    bars = {line.split()[0]: line.count("█") for line in lines}
    assert bars["a"] == 20
    assert bars["b"] == 10
    assert bars["c"] == 0
    assert "10.000" in lines[0]


def test_bar_chart_log_scale_compresses():
    linear = bar_chart({"small": 1.0, "big": 100.0}, width=20)
    logarithmic = bar_chart({"small": 1.0, "big": 100.0}, width=20,
                            log_scale=True)
    small_linear = linear.splitlines()[0].count("█")
    small_log = logarithmic.splitlines()[0].count("█")
    assert small_log > small_linear


def test_bar_chart_accepts_pairs_and_unit():
    chart = bar_chart([("x", 2.0), ("y", 1.0)], unit=" ms")
    assert "ms" in chart


def test_bar_chart_empty_rejected():
    with pytest.raises(NoseError):
        bar_chart({})


def test_bar_chart_log_scale_all_nonpositive_falls_back_to_linear():
    # regression: log scaling used to crash with ValueError when no
    # value was positive (min() over an empty sequence)
    chart = bar_chart({"a": 0.0, "b": -1.0}, width=20, log_scale=True)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert all(_BAR not in line for line in lines)


def test_bar_chart_log_scale_with_some_nonpositive_values():
    chart = bar_chart({"a": 0.0, "b": 10.0}, width=20, log_scale=True)
    assert len(chart.splitlines()) == 2


def test_grouped_bar_chart_structure():
    table = {"ViewItem": {"NoSE": 1.0, "Expert": 2.0},
             "StoreBid": {"NoSE": 3.0, "Expert": 1.5}}
    chart = grouped_bar_chart(table, width=10)
    assert "ViewItem:" in chart
    assert "StoreBid:" in chart
    assert chart.count("NoSE") == 2
    with pytest.raises(NoseError):
        grouped_bar_chart({})


def test_stacked_series_renders_components():
    rows = {1: {"solve": 1.0, "other": 1.0},
            2: {"solve": 3.0, "other": 2.0}}
    chart = stacked_series(rows, ["solve", "other"], width=20)
    lines = chart.splitlines()
    assert len(lines) == 3  # two rows + legend
    assert "solve" in lines[-1] and "other" in lines[-1]
    # the factor-2 bar is longer overall
    assert len(lines[1].split()[1]) > len(lines[0].split()[1])


def test_stacked_series_limits_components():
    with pytest.raises(NoseError):
        stacked_series({1: {}}, ["a", "b", "c", "d", "e"])
    with pytest.raises(NoseError):
        stacked_series({}, ["a"])


# -- renderer edge cases ------------------------------------------------------


def test_explain_report_empty_recommendation():
    # an infeasible or trivial optimization can recommend nothing;
    # the renderer must still produce a coherent report
    document = {"total_cost": 0.0, "indexes": [], "statements": {}}
    report = explain_report(document)
    assert report == "explain: 0 column families, total cost 0.0000"


def test_explain_report_single_statement_workload():
    document = {
        "total_cost": 1.5,
        "indexes": [{"key": "ia", "triple": "[a][][]",
                     "status": "chosen",
                     "provenance": [{"index": "ia",
                                     "rules": ["materialize"],
                                     "sources": ["q1"],
                                     "parents": []}]}],
        "statements": {
            "q1": {"kind": "query", "weight": 1.0, "cost": 1.5,
                   "weighted_cost": 1.5,
                   "plan": {"signature": "L:ia", "cost": 1.5,
                            "steps": [{"op": "lookup ia", "cost": 1.5,
                                       "terms": {"rows_read": 3.0}}]}},
        },
    }
    report = explain_report(document)
    assert "1 column families" in report
    assert "materialize <- q1" in report
    assert "rows_read=3.0000" in report
    # the single statement renders identically when selected directly
    assert explain_report(document, statement="q1") in report


def test_timing_table_single_row():
    class Timing:
        enumeration = 0.1
        planning = 0.2
        total = 0.3
        cache_hits = 7

    table = timing_table({"cold": Timing()})
    lines = table.splitlines()
    assert len(lines) == 2  # header + the one row
    assert "cold" in lines[1]
    assert "7" in lines[1]


def test_timing_table_empty_rejected():
    with pytest.raises(NoseError):
        timing_table({})


def test_diff_report_no_changes():
    diff = {"total_cost": {"base": 1.0, "other": 1.0, "delta": 0.0,
                           "regression_pct": 0.0},
            "size_bytes": {"base": 1, "other": 1},
            "indexes_added": [], "indexes_dropped": [],
            "statements": {}}
    report = diff_report(diff)
    assert "indexes added (0)" in report
    assert "statement changes (0)" in report


# -- telemetry run-report rendering ------------------------------------------


_SPANS = [
    {"name": "recommend", "total_seconds": 1.0, "self_seconds": 0.1,
     "children": [
         {"name": "planning", "total_seconds": 0.9,
          "self_seconds": 0.9, "attributes": {"mode": "build"}},
     ]},
]


def test_span_tree_indents_children_and_shows_attributes():
    tree = span_tree(_SPANS)
    lines = tree.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("recommend")
    assert lines[1].startswith("  planning")
    assert "[mode=build]" in lines[1]
    assert "1.0000s" in lines[0]


def test_metrics_summary_lists_scalars_and_top_histograms():
    metrics = {
        "counters": {"a.count": 3},
        "gauges": {"b.size": 1.5},
        "histograms": {
            "big": {"boundaries": [1, 10], "counts": [2, 1, 0],
                    "count": 3, "min": 0, "max": 5, "sum": 7},
            "small": {"boundaries": [1], "counts": [1, 0],
                      "count": 1, "min": 1, "max": 1, "sum": 1},
        },
    }
    summary = metrics_summary(metrics, top=1)
    assert "a.count" in summary
    assert "b.size" in summary
    assert "big" in summary  # largest histogram kept
    assert "small" not in summary  # beyond top=1
    assert "<= 1" in summary


def test_metrics_summary_shows_percentiles_when_present():
    metrics = {
        "counters": {}, "gauges": {},
        "histograms": {
            "lat": {"boundaries": [1, 10], "counts": [2, 1, 0],
                    "count": 3, "min": 0.2, "max": 5, "sum": 7,
                    "p50": 0.75, "p95": 4.1, "p99": 4.8},
        },
    }
    summary = metrics_summary(metrics, top=1)
    assert "p50=0.75" in summary
    assert "p95=4.1" in summary
    assert "p99=4.8" in summary


def test_profile_report_renders_all_sections():
    document = {
        "format": "nose-profile/1",
        "meta": {"source": "hotel", "seed": 0},
        "workload": {
            "requests": 10, "statements_measured": 2,
            "statements_joined": 2, "rank_correlation": 0.9,
            "median_measured_over_predicted": 1.2,
            "worst_divergences": [
                {"label": "q1", "normalized_ratio": 3.0,
                 "predicted_cost": 1.0, "measured_mean_ms": 3.6,
                 "log10_divergence": 0.477}],
        },
        "statements": {
            "q1": {"kind": "query",
                   "measured": {"requests": 6, "mean_ms": 3.6,
                                "p50_ms": 3.5, "p95_ms": 4.0,
                                "p99_ms": 4.1},
                   "predicted": {"cost": 1.0},
                   "measured_over_predicted": 3.6,
                   "normalized_ratio": 3.0},
            "q2": {"kind": "query",
                   "measured": {"requests": 4, "mean_ms": 1.2,
                                "p50_ms": 1.1, "p95_ms": 1.4,
                                "p99_ms": 1.5}},
        },
        "column_families": {
            "i1": {"get": {"requests": 10, "rows": 40, "bytes": 640,
                           "total_ms": 5.0, "mean_ms": 0.5,
                           "p50_ms": 0.5, "p95_ms": 0.6,
                           "p99_ms": 0.7}},
        },
        "calibration": {"captured": 10, "dropped": 0, "listed": 10,
                        "truncated": False, "samples": []},
    }
    rendered = profile_report(document)
    assert rendered.startswith("execution profile")
    assert "source: hotel" in rendered
    assert "rank correlation" in rendered and "0.9" in rendered
    assert "q1" in rendered and "q2" in rendered
    assert "worst divergences" in rendered
    assert "i1 get" in rendered
    assert "calibration samples captured: 10" in rendered


def test_profile_report_minimal_document():
    rendered = profile_report({"workload": {}, "statements": {},
                               "column_families": {}})
    assert "execution profile" in rendered
    assert "rank correlation" in rendered


def test_render_run_report_combines_sections():
    class Report:
        spans = _SPANS
        metrics = {"counters": {"n": 1}, "gauges": {}, "histograms": {}}
        meta = {"enabled": True, "total_seconds": 1.0}

    rendered = render_run_report(Report())
    assert rendered.startswith("run report")
    assert "enabled: True" in rendered
    assert "recommend" in rendered
    assert "n" in rendered


# -- degenerate inputs (PR 8 hardening) ---------------------------------------


def test_grouped_bar_chart_empty_group_renders_placeholder():
    chart = grouped_bar_chart({"mix_a": {"q1": 1.0}, "mix_b": {}})
    lines = chart.splitlines()
    assert "mix_b:" in lines
    assert lines[lines.index("mix_b:") + 1] == "  (no data)"


def test_grouped_bar_chart_all_groups_empty():
    chart = grouped_bar_chart({"only": {}})
    assert "(no data)" in chart


def test_bar_chart_all_zero_values():
    chart = bar_chart({"a": 0.0, "b": 0.0})
    lines = chart.splitlines()
    assert len(lines) == 2
    assert _BAR not in chart


def test_metrics_summary_zero_sample_histogram():
    metrics = {"counters": {}, "gauges": {},
               "histograms": {"empty": {
                   "boundaries": [1, 2], "count": 0,
                   "counts": [0, 0, 0], "min": None, "max": None,
                   "p50": None, "p95": None, "p99": None, "sum": 0.0}}}
    rendered = metrics_summary(metrics)
    assert "min=n/a" in rendered
    assert "max=n/a" in rendered
    assert "(no observations)" in rendered


def test_metrics_summary_empty_registry():
    assert metrics_summary({"counters": {}, "gauges": {},
                            "histograms": {}}) == ""


def test_render_run_report_empty_report():
    class Report:
        spans = []
        metrics = {"counters": {}, "gauges": {}, "histograms": {}}
        meta = {}
        events = []

    rendered = render_run_report(Report())
    assert rendered == "run report"


# -- monitor documents --------------------------------------------------------


def _monitor_document(**overrides):
    document = {
        "format": "nose-monitor/1",
        "meta": {"source": "test"},
        "ingest": {"requests": 40, "half_life": 60.0, "clock": 40.0,
                   "simulated_seconds": 0.5, "statements_tracked": 2,
                   "recent": []},
        "drift": {
            "checks": 2,
            "weight_threshold": 0.1,
            "structural_threshold": 1,
            "hysteresis": 0.8,
            "weight_alert": True,
            "structural_alert": False,
            "latest": {"time": 40.0, "requests": 40, "l1": 0.9,
                       "js": 0.25, "structural_added": [],
                       "structural_removed": [],
                       "weight_alert": True,
                       "structural_alert": False},
            "timeline": [
                {"time": 20.0, "requests": 20, "l1": 0.1, "js": 0.02,
                 "weight_alert": False, "structural_alert": False},
                {"time": 40.0, "requests": 40, "l1": 0.9, "js": 0.25,
                 "weight_alert": True, "structural_alert": False},
            ],
            "alerts": [{"event": "weight_alert", "time": 40.0,
                        "requests": 40, "js": 0.25, "l1": 0.9,
                        "threshold": 0.1}],
            "structural": {"added": {"abc123": ["new_query"]},
                           "removed": {}},
        },
        "estimates": {
            "q_hot": {"digest": "d1", "kind": "query", "requests": 30,
                      "weight": 12.5},
            "q_cold": {"digest": "d2", "kind": "query", "requests": 10,
                       "weight": 1.5},
        },
        "regret": {"stale_cost": 1.2, "fresh_cost": 1.0, "regret": 0.2,
                   "regret_pct": 16.7, "fresh_indexes": 9,
                   "stale_indexes": 11, "fresh_schema": ["i1"]},
    }
    document.update(overrides)
    return document


def test_monitor_report_renders_all_sections():
    from repro.reporting import monitor_report

    rendered = monitor_report(_monitor_document())
    assert rendered.startswith("workload drift monitor")
    assert "drift timeline" in rendered
    assert "weight ALERT" in rendered
    # the alerting checkpoint is flagged, the quiet one is not
    flagged = [line for line in rendered.splitlines()
               if line.rstrip().endswith("*")]
    assert len(flagged) == 1 and "0.2500" in flagged[0]
    assert "+ abc123  (new_query)" in rendered
    assert "weight_alert" in rendered
    assert "q_hot" in rendered
    assert "regret under observed mix" in rendered
    assert "16.7" in rendered


def test_monitor_report_empty_document():
    from repro.reporting import monitor_report

    rendered = monitor_report({
        "format": "nose-monitor/1", "meta": {},
        "ingest": {"requests": 0, "statements_tracked": 0},
        "estimates": {},
    })
    assert "0 request(s)" in rendered
    assert "(no statements observed)" in rendered


def test_monitor_report_no_checks_and_no_regret():
    from repro.reporting import monitor_report

    document = _monitor_document()
    document["drift"]["timeline"] = []
    document["drift"]["checks"] = 0
    document["regret"] = {"stale_cost": None, "fresh_cost": None,
                          "regret": None, "regret_pct": None,
                          "fresh_indexes": None, "stale_indexes": None}
    rendered = monitor_report(document)
    assert "(no drift checks recorded)" in rendered
    assert "regret: not estimated" in rendered


def test_monitor_report_zero_threshold_timeline():
    from repro.reporting import monitor_report

    document = _monitor_document()
    document["drift"]["weight_threshold"] = 0.0
    rendered = monitor_report(document)
    assert "drift timeline" in rendered
