"""Tests for the telemetry subsystem (spans, metrics, run reports)."""

import json
import threading
import time

import pytest

from repro import telemetry
from repro.advisor import Advisor
from repro.cost import SimpleCostModel
from repro.demo import hotel_model, hotel_workload
from repro.io import dump_run_report, load_run_report
from repro.telemetry import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    RunReport,
    Telemetry,
    Tracer,
    activate,
    current,
    traced,
)


# -- spans -------------------------------------------------------------------


def test_span_nesting_and_timing():
    tracer = Tracer()
    with tracer.span("outer"):
        time.sleep(0.01)
        with tracer.span("inner"):
            time.sleep(0.01)
    tracer.finish()
    outer, = tracer.root.children
    inner, = outer.children
    assert outer.name == "outer" and inner.name == "inner"
    assert outer.total_seconds >= inner.total_seconds
    assert outer.self_seconds >= 0.0
    assert tracer.span_count == 2
    assert tracer.root.total_seconds >= outer.total_seconds


def test_span_attributes_and_dict_shape():
    tracer = Tracer()
    with tracer.span("stage", kind="test") as span:
        span.set(mode="build")
    record = tracer.root.children[0].as_dict()
    assert list(record)[:3] == ["name", "total_seconds", "self_seconds"]
    assert record["attributes"] == {"kind": "test", "mode": "build"}


def test_span_self_seconds_clamped_for_concurrent_children():
    # children recorded on worker threads can overlap, summing past the
    # parent's wall clock; self time must clamp at zero
    tracer = Tracer()
    with tracer.span("parent") as parent:
        def work():
            with tracer.adopt(parent):
                with tracer.span("child"):
                    time.sleep(0.02)
        threads = [threading.Thread(target=work) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert len(parent.children) == 3
    assert parent.self_seconds >= 0.0


def test_fresh_thread_attaches_to_root_without_adopt():
    tracer = Tracer()
    def work():
        with tracer.span("worker"):
            pass
    thread = threading.Thread(target=work)
    thread.start()
    thread.join()
    assert [span.name for span in tracer.root.children] == ["worker"]


def test_adopt_nests_worker_spans_under_caller():
    tracer = Tracer()
    with tracer.span("stage") as stage:
        def work():
            with tracer.adopt(stage):
                with tracer.span("worker"):
                    pass
        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
    assert [span.name for span in stage.children] == ["worker"]


def test_tracer_finish_is_idempotent():
    tracer = Tracer()
    tracer.finish()
    ended = tracer.root.ended
    tracer.finish()
    assert tracer.root.ended == ended


# -- metrics -----------------------------------------------------------------


def test_histogram_bucket_placement():
    histogram = Histogram(boundaries=(1, 10, 100))
    for value in (0, 1, 5, 10, 50, 1000):
        histogram.observe(value)
    # bins: <=1, <=10, <=100, overflow
    assert histogram.counts == [2, 2, 1, 1]
    assert histogram.count == 6
    assert histogram.minimum == 0 and histogram.maximum == 1000
    assert histogram.as_dict()["sum"] == 1066


def test_histogram_quantiles_interpolate_within_buckets():
    histogram = Histogram(boundaries=(10, 20, 30))
    for value in range(1, 21):  # uniform over (0, 20]
        histogram.observe(value)
    # exact quantiles of the uniform sample, up to the linear
    # interpolation the fixed buckets allow
    assert histogram.quantile(0.5) == pytest.approx(10.0, abs=1.0)
    assert histogram.quantile(0.25) == pytest.approx(5.0, abs=1.5)
    assert histogram.quantile(0.95) == pytest.approx(19.0, abs=1.0)
    # quantiles are clamped to the observed range
    assert histogram.quantile(0.0) >= histogram.minimum
    assert histogram.quantile(1.0) <= histogram.maximum


def test_histogram_quantile_single_observation():
    histogram = Histogram(boundaries=(1, 10))
    histogram.observe(4.2)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram.quantile(q) == pytest.approx(4.2)


def test_histogram_quantile_overflow_bucket_uses_maximum():
    histogram = Histogram(boundaries=(1,))
    histogram.observe(100)
    histogram.observe(200)
    value = histogram.quantile(0.99)
    assert 100 <= value <= 200


def test_histogram_quantile_empty_is_none():
    histogram = Histogram(boundaries=(1, 2))
    assert histogram.quantile(0.5) is None
    record = histogram.as_dict()
    assert record["p50"] is None and record["p99"] is None


def test_histogram_as_dict_carries_percentiles():
    histogram = Histogram(boundaries=(1, 10, 100))
    for value in (1, 2, 3, 50, 90):
        histogram.observe(value)
    record = histogram.as_dict()
    for key in ("p50", "p95", "p99"):
        assert isinstance(record[key], float)
    assert record["p50"] <= record["p95"] <= record["p99"]


def test_histogram_merge_dict_accumulates():
    first = Histogram(boundaries=(1, 10))
    second = Histogram(boundaries=(1, 10))
    for value in (0.5, 5):
        first.observe(value)
    for value in (7, 20):
        second.observe(value)
    first.merge_dict(second.as_dict())
    assert first.count == 4
    assert first.minimum == 0.5 and first.maximum == 20
    assert first.counts == [1, 2, 1]


def test_histogram_merge_dict_rejects_mismatched_boundaries():
    histogram = Histogram(boundaries=(1, 10))
    other = Histogram(boundaries=(1, 2)).as_dict()
    with pytest.raises(ValueError):
        histogram.merge_dict(other)


def test_metrics_registry_merge():
    parent = MetricsRegistry()
    parent.count("shared", 2)
    parent.gauge("g", 1)
    child = MetricsRegistry()
    child.count("shared", 3)
    child.count("child_only", 1)
    child.gauge("g", 9)
    child.observe("h", 5, buckets=(1, 10))
    parent.merge(child.as_dict())
    snapshot = parent.as_dict()
    assert snapshot["counters"] == {"shared": 5, "child_only": 1}
    assert snapshot["gauges"] == {"g": 9}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_telemetry_merge_snapshot_grafts_spans():
    child = Telemetry("child")
    with child.span("work"):
        child.count("items", 4)
    child.tracer.finish()
    snapshot = {"metrics": child.metrics.as_dict(),
                "spans": [span.as_dict()
                          for span in child.tracer.root.children]}
    with activate() as sink:
        with sink.span("stage"):
            sink.merge_snapshot(snapshot)
    report = sink.report()
    stage, = report.spans
    assert [span["name"] for span in stage["children"]] == ["work"]
    assert report.metrics["counters"]["items"] == 4


def test_metrics_registry_operations():
    registry = MetricsRegistry()
    registry.count("a")
    registry.count("a", 4)
    registry.gauge("b", 7)
    registry.gauge("b", 9)
    registry.observe("c", 3, buckets=(1, 5))
    snapshot = registry.as_dict()
    assert snapshot["counters"] == {"a": 5}
    assert snapshot["gauges"] == {"b": 9}
    assert snapshot["histograms"]["c"]["count"] == 1
    assert registry.ops == 5


def test_metrics_snapshot_is_sorted():
    registry = MetricsRegistry()
    for name in ("z", "a", "m"):
        registry.count(name)
    assert list(registry.as_dict()["counters"]) == ["a", "m", "z"]


# -- activation and the null sink --------------------------------------------


def test_current_defaults_to_null_sink():
    sink = current()
    assert isinstance(sink, NullTelemetry)
    assert not sink.enabled


def test_activate_installs_and_restores():
    assert not current().enabled
    with activate() as sink:
        assert sink.enabled
        assert current() is sink
    assert not current().enabled


def test_activate_accepts_existing_handle():
    handle = Telemetry()
    with activate(handle) as sink:
        assert sink is handle


def test_kill_switch_keeps_null_sink(monkeypatch):
    monkeypatch.setenv(telemetry.KILL_SWITCH, "0")
    with activate() as sink:
        assert not sink.enabled
        assert isinstance(current(), NullTelemetry)
        report = sink.report()
    assert report.meta == {"enabled": False}
    assert report.spans == [] and report.metrics == {}


def test_null_sink_operations_are_noops():
    sink = NullTelemetry()
    with sink.span("x") as span:
        assert span is None
    with sink.adopt(None):
        pass
    sink.count("c")
    sink.gauge("g", 1)
    sink.observe("h", 1)
    assert sink.current_span() is None


def test_traced_decorator_records_span():
    calls = []

    @traced("labelled")
    def work(value):
        calls.append(value)
        return value * 2

    assert work(2) == 4  # disabled: plain passthrough
    with activate() as sink:
        assert work(3) == 6
    names = [span["name"] for span in sink.report().spans]
    assert names == ["labelled"]
    assert calls == [2, 3]


# -- run reports -------------------------------------------------------------


def test_report_round_trips_through_dict():
    with activate() as sink:
        with sink.span("stage"):
            sink.count("things", 3)
            sink.observe("sizes", 12, buckets=COUNT_BUCKETS)
    report = sink.report()
    document = json.loads(json.dumps(report.as_dict()))
    rebuilt = RunReport.from_dict(document)
    assert rebuilt.as_dict() == report.as_dict()
    assert rebuilt.stage_totals() == report.stage_totals()


def test_report_json_is_stable_and_diffable():
    with activate() as sink:
        sink.count("b")
        sink.count("a")
        sink.gauge("z", 1)
    document = sink.report().as_dict()
    assert list(document) == ["format", "meta", "spans", "metrics"]
    assert document["format"] == "nose-run-report/1"
    assert list(document["metrics"]["counters"]) == ["a", "b"]
    assert list(document["meta"]) == sorted(document["meta"])


def test_stage_totals_sum_across_tree():
    spans = [
        {"name": "a", "total_seconds": 1.0,
         "children": [{"name": "b", "total_seconds": 0.25},
                      {"name": "a", "total_seconds": 0.5}]},
    ]
    report = RunReport(spans, {})
    totals = report.stage_totals()
    assert totals == {"a": 1.5, "b": 0.25}


# -- pipeline integration ----------------------------------------------------


STAGES = ("enumeration", "planning", "cost_calculation", "pruning",
          "bip_construction", "bip_solving", "recommendation")


def _advise_traced(model, workload):
    with activate() as sink:
        advisor = Advisor(model, cost_model=SimpleCostModel())
        recommendation = advisor.recommend(workload)
    return recommendation, sink.report()


def test_trace_agrees_with_advisor_timing_hotel():
    model = hotel_model()
    recommendation, report = _advise_traced(model, hotel_workload(model))
    totals = report.stage_totals()
    timing = recommendation.timing
    for stage in STAGES:
        bucket = getattr(timing, stage)
        span_total = totals.get(stage, 0.0)
        tolerance = max(0.05 * bucket, 0.02)
        assert abs(span_total - bucket) <= tolerance, (
            f"{stage}: span {span_total:.4f}s vs timing {bucket:.4f}s")


def test_trace_agrees_with_advisor_timing_rubis():
    from repro.rubis import rubis_model, rubis_workload
    model = rubis_model()
    workload = rubis_workload(model, mix="bidding")
    recommendation, report = _advise_traced(model, workload)
    totals = report.stage_totals()
    timing = recommendation.timing
    for stage in STAGES:
        bucket = getattr(timing, stage)
        span_total = totals.get(stage, 0.0)
        tolerance = max(0.05 * bucket, 0.02)
        assert abs(span_total - bucket) <= tolerance, (
            f"{stage}: span {span_total:.4f}s vs timing {bucket:.4f}s")


def test_pipeline_metrics_are_consistent():
    model = hotel_model()
    recommendation, report = _advise_traced(model, hotel_workload(model))
    counters = report.metrics["counters"]
    gauges = report.metrics["gauges"]
    # pruning never invents plans
    assert counters["prune.plans_out"] <= counters["prune.plans_in"]
    removed = (counters["prune.removed_duplicate_cfset"]
               + counters["prune.removed_superset"]
               + counters.get("prune.removed_cap", 0))
    assert counters["prune.plans_in"] - removed \
        == counters["prune.plans_out"]
    # the candidate pool matches what the timing reports
    assert gauges["enumeration.pool_size"] \
        == recommendation.timing.candidates
    assert gauges["planner.query_plan_count"] \
        == recommendation.timing.query_plan_count
    assert counters["planner.truncated_statements"] \
        == recommendation.timing.truncated_queries
    # every workload query was enumerated
    workload = hotel_workload(model)
    assert counters["enumerator.queries"] == len(workload.queries)
    assert gauges["bip.columns"] >= gauges["bip.binary_columns"]


def test_run_report_file_round_trip(tmp_path):
    model = hotel_model()
    _, report = _advise_traced(model, hotel_workload(model))
    path = tmp_path / "report.json"
    dump_run_report(report, path)
    rebuilt = load_run_report(path)
    assert rebuilt.as_dict() == report.as_dict()
    # the file itself is stable: dumping the rebuilt report is identical
    second = tmp_path / "again.json"
    dump_run_report(rebuilt, second)
    assert path.read_text() == second.read_text()


def test_disabled_pipeline_records_nothing():
    model = hotel_model()
    advisor = Advisor(model, cost_model=SimpleCostModel())
    recommendation = advisor.recommend(hotel_workload(model))
    assert recommendation.indexes
    sink = current()
    assert not sink.enabled


def test_report_render_is_ascii_and_complete():
    model = hotel_model()
    _, report = _advise_traced(model, hotel_workload(model))
    rendered = report.render(top=3)
    assert "run report" in rendered
    assert "recommend" in rendered
    assert "enumerator.queries" in rendered
    for line in rendered.splitlines():
        assert len(line) < 200


@pytest.mark.parametrize("jobs", [1, 4])
def test_parallel_planning_spans_nest_under_stage(jobs):
    model = hotel_model()
    with activate() as sink:
        advisor = Advisor(model, cost_model=SimpleCostModel(),
                          jobs=jobs)
        advisor.recommend(hotel_workload(model))
    report = sink.report()
    # worker-side spans must not create orphan roots: the recommend
    # span is the only top-level span and every stage nests inside it
    recommend, = report.spans
    assert recommend["name"] == "recommend"
    assert set(STAGES) <= set(report.stage_totals())
