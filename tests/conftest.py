"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.demo import hotel_dataset, hotel_model, hotel_workload


@pytest.fixture(scope="session")
def hotel():
    """The full-size hotel model (statistics only; no data)."""
    return hotel_model()


@pytest.fixture(scope="session")
def hotel_queries(hotel):
    """Read-only hotel workload over the session model."""
    return hotel_workload(hotel, include_updates=False)


@pytest.fixture(scope="session")
def hotel_full(hotel):
    """Hotel workload including update statements."""
    return hotel_workload(hotel, include_updates=True)


@pytest.fixture()
def small_hotel():
    """A small hotel model suitable for loading data in tests."""
    return hotel_model(scale=0.02)


@pytest.fixture()
def small_hotel_data(small_hotel):
    """A populated dataset for the small hotel model."""
    return hotel_dataset(small_hotel, seed=42)
