"""Tests for the hand-written comparison schemas (§VII-A)."""

import pytest

from repro import Advisor
from repro.rubis import (
    expert_schema,
    normalized_schema,
    rubis_model,
    rubis_workload,
)


@pytest.fixture(scope="module")
def model():
    return rubis_model(users=1000)


@pytest.fixture(scope="module")
def workload(model):
    return rubis_workload(model, mix="bidding")


def test_normalized_schema_structure(model):
    schema = normalized_schema(model)
    # one entity table per entity
    entity_tables = [index for index in schema
                     if len(index.path) == 1 and not index.order_fields
                     and index.hash_fields[0].name.endswith("ID")]
    assert len(entity_tables) >= len(model.entities)
    # relationship indexes in both directions for all 11 relationships
    relationship_tables = [index for index in schema
                           if len(index.path) == 2]
    assert len(relationship_tables) == 22


def test_normalized_schema_covers_workload(model, workload):
    advisor = Advisor(model)
    result = advisor.plan_for_schema(workload, normalized_schema(model))
    assert set(result.query_plans) == set(workload.queries)


def test_expert_schema_covers_workload(model, workload):
    advisor = Advisor(model)
    result = advisor.plan_for_schema(workload, expert_schema(model))
    assert set(result.query_plans) == set(workload.queries)


def test_expert_schema_answers_hot_queries_with_one_get(model, workload):
    advisor = Advisor(model)
    result = advisor.plan_for_schema(workload, expert_schema(model))
    by_label = {query.label: plan
                for query, plan in result.query_plans.items()}
    for label in ("vi_item", "vbh_bids", "vui_comments",
                  "bc_categories", "am_old_items"):
        assert len(by_label[label].lookup_steps) == 1, label
    # the rules-of-thumb expert does NOT denormalize the per-bid
    # statistics into the search table, paying extra fetches instead
    assert len(by_label["sic_items"].lookup_steps) >= 2


def test_normalized_schema_needs_joins(model, workload):
    advisor = Advisor(model)
    result = advisor.plan_for_schema(workload, normalized_schema(model))
    by_label = {query.label: plan
                for query, plan in result.query_plans.items()}
    # bid history needs at least the relationship index plus a fetch
    assert len(by_label["vbh_bids"].lookup_steps) >= 2


def test_expert_grouped_table_has_no_bid_id(model):
    schema = expert_schema(model)
    grouped = [index for index in schema
               if tuple(entity.name for entity in index.path.entities)
               == ("User", "Bid", "Item")
               and any(f.name == "ItemName" for f in index.extra_fields)]
    assert grouped, "expert schema must group items bid on"
    for index in grouped:
        assert all(field.name != "BidID"
                   for field in index.order_fields)


def test_cost_ordering_matches_paper():
    """Under the advisor's cost model at evaluation scale: NoSE beats
    both hand-written schemas on the bidding mix, and the normalized
    schema is the most expensive (Fig 11's weighted ordering).

    (At toy scales the expert's fetch-based compromises are nearly free,
    so the paper's ordering only emerges with realistic cardinalities.)
    """
    model = rubis_model(users=20_000)
    workload = rubis_workload(model, mix="bidding")
    advisor = Advisor(model)
    nose = advisor.recommend(workload)
    expert = advisor.plan_for_schema(workload, expert_schema(model))
    normalized = advisor.plan_for_schema(workload,
                                         normalized_schema(model))
    assert nose.total_cost <= expert.total_cost
    assert nose.total_cost < normalized.total_cost
    assert expert.total_cost < normalized.total_cost
