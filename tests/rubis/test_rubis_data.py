"""Unit tests for the RUBiS data and parameter generators."""

import pytest

from repro.rubis import (
    RubisParameterGenerator,
    generate_dataset,
    rubis_model,
)
from repro.rubis.transactions import TRANSACTIONS


@pytest.fixture(scope="module")
def model():
    return rubis_model(users=600)


@pytest.fixture(scope="module")
def dataset(model):
    return generate_dataset(model, seed=7)


def test_row_counts_match_model(model, dataset):
    for name, entity in model.entities.items():
        assert len(dataset.rows[name]) == entity.count


def test_generation_is_deterministic(model):
    first = generate_dataset(model, seed=7)
    second = generate_dataset(model, seed=7)
    assert first.rows["User"][5] == second.rows["User"][5]
    assert first.rows["Item"][3] == second.rows["Item"][3]


def test_item_bid_statistics_consistent(model, dataset):
    """NbOfBids and MaxBid on items must match the generated bids."""
    bids_fk = model.entity("Item")["Bids"]
    for item_id, row in dataset.rows["Item"].items():
        bids = dataset.related(bids_fk, item_id)
        assert row["Item.NbOfBids"] == len(bids)
        if bids:
            top = max(dataset.rows["Bid"][b]["Bid.BidAmount"]
                      for b in bids)
            assert row["Item.MaxBid"] == pytest.approx(top)
        else:
            assert row["Item.MaxBid"] == 0.0


def test_every_entity_connected(model, dataset):
    region_fk = model.entity("User")["Region"]
    for user_id in list(dataset.rows["User"])[:50]:
        assert dataset.related(region_fk, user_id)
    seller_fk = model.entity("Item")["Seller"]
    for item_id in list(dataset.rows["Item"])[:50]:
        assert dataset.related(seller_fk, item_id)


def test_parameter_generator_covers_all_transactions(dataset):
    generator = RubisParameterGenerator(dataset, seed=11)
    for transaction in TRANSACTIONS:
        requests = generator.requests_for(transaction)
        assert [label for label, _ in requests] \
            == TRANSACTIONS[transaction]
        for _label, params in requests:
            assert params["item"] in dataset.rows["Item"]
            assert params["user"] in dataset.rows["User"]


def test_fresh_ids_do_not_collide(dataset):
    generator = RubisParameterGenerator(dataset, seed=11)
    seen = set()
    for _ in range(10):
        (_, params), _ = generator.requests_for("StoreBid")
        assert params["BidID"] not in dataset.rows["Bid"]
        assert params["BidID"] not in seen
        seen.add(params["BidID"])


def test_store_bid_parameters_consistent(dataset):
    generator = RubisParameterGenerator(dataset, seed=13)
    (_, params), _ = generator.requests_for("StoreBid")
    item = dataset.rows["Item"][params["item"]]
    assert params["amount"] > item["Item.MaxBid"]
    assert params["nb_of_bids"] == item["Item.NbOfBids"] + 1
    assert params["max_bid"] >= item["Item.MaxBid"]
