"""End-to-end RUBiS execution: correctness of all three schemas.

Loads a small RUBiS dataset, executes every transaction against the
NoSE-recommended, normalized, and expert schemas, and validates query
results against the ground-truth oracle.
"""

import pytest

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.rubis import (
    RubisParameterGenerator,
    TRANSACTIONS,
    expert_schema,
    generate_dataset,
    normalized_schema,
    rubis_model,
    rubis_workload,
)
from repro.workload.statements import Query


@pytest.fixture(scope="module")
def setup():
    model = rubis_model(users=400)
    workload = rubis_workload(model, mix="bidding")
    return model, workload


def _engine(model, workload, schema_name):
    advisor = Advisor(model)
    if schema_name == "nose":
        recommendation = advisor.recommend(workload)
        share, protocol = False, "nose"
    elif schema_name == "normalized":
        recommendation = advisor.plan_for_schema(
            workload, normalized_schema(model))
        share, protocol = False, "nose"
    else:
        recommendation = advisor.plan_for_schema(
            workload, expert_schema(model))
        share, protocol = True, "expert"
    dataset = generate_dataset(model, seed=7)
    engine = ExecutionEngine(model, recommendation, dataset,
                             share_reads=share, update_protocol=protocol)
    engine.load()
    return dataset, engine


@pytest.mark.parametrize("schema_name", ["nose", "normalized", "expert"])
def test_all_transactions_execute_and_match_oracle(setup, schema_name):
    model, workload = setup
    dataset, engine = _engine(model, workload, schema_name)
    generator = RubisParameterGenerator(dataset, seed=11)
    for transaction in TRANSACTIONS:
        for _ in range(3):
            requests = generator.requests_for(transaction)
            # validate each read against the oracle *before* executing
            # the writes of the same transaction mutate state
            for label, params in requests:
                statement = workload.statements[label]
                if isinstance(statement, Query):
                    rows = engine.execute_query(statement, params)
                    got = {tuple(row[f.id] for f in statement.select)
                           for row in rows}
                    expected = dataset.evaluate_query(statement, params)
                    if statement.limit is not None:
                        assert got <= expected
                        assert len(rows) <= statement.limit
                    else:
                        assert got == expected, (transaction, label)
                else:
                    engine.execute_update(statement, params)


@pytest.mark.parametrize("schema_name", ["nose", "expert"])
def test_queries_consistent_after_heavy_writes(setup, schema_name):
    model, workload = setup
    dataset, engine = _engine(model, workload, schema_name)
    generator = RubisParameterGenerator(dataset, seed=23)
    for _ in range(15):
        for transaction in ("StoreBid", "RegisterItem", "StoreComment",
                            "StoreBuyNow", "RegisterUser"):
            for label, params in generator.requests_for(transaction):
                engine.execute(label, params)
    # after the writes, read queries still agree with the oracle
    for label in ("vi_bids", "am_bid_items", "vui_comments",
                  "sic_items", "am_purchases"):
        statement = workload.statements[label]
        params = generator.requests_for("AboutMe")[0][1]
        rows = engine.execute_query(statement, params)
        got = {tuple(row[f.id] for f in statement.select)
               for row in rows}
        expected = dataset.evaluate_query(statement, params)
        if statement.limit is not None:
            assert got <= expected
        else:
            assert got == expected, label


def test_execute_transaction_expert_with_shared_reads(setup):
    """Whole RUBiS transactions through the expert schema with the
    per-transaction read cache enabled: every read must still match the
    oracle after all transactions' writes have been applied."""
    model, workload = setup
    dataset, engine = _engine(model, workload, "expert")
    assert engine.share_reads and engine.update_protocol == "expert"
    generator = RubisParameterGenerator(dataset, seed=23)
    total = 0.0
    for transaction in sorted(TRANSACTIONS):
        elapsed = engine.execute_transaction(
            generator.requests_for(transaction))
        assert elapsed >= 0.0
        total += elapsed
    assert total > 0.0
    # the transaction cache must not outlive its transaction
    assert engine._transaction_cache is None
    for transaction in sorted(TRANSACTIONS):
        for label, params in generator.requests_for(transaction):
            statement = workload.statements[label]
            if not isinstance(statement, Query):
                continue
            rows = engine.execute_query(statement, params)
            got = {tuple(row[f.id] for f in statement.select)
                   for row in rows}
            expected = dataset.evaluate_query(statement, params)
            if statement.limit is not None:
                assert got <= expected
                assert len(rows) <= statement.limit
            else:
                assert got == expected, (transaction, label)
