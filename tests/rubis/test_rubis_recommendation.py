"""Structural checks on the advisor's RUBiS recommendation."""

import pytest

from repro import Advisor
from repro.rubis import rubis_model, rubis_workload


@pytest.fixture(scope="module")
def recommendation():
    model = rubis_model(users=20_000)
    workload = rubis_workload(model, mix="bidding")
    return model, workload, Advisor(model).recommend(workload)


def test_every_statement_planned(recommendation):
    _model, workload, result = recommendation
    assert set(result.query_plans) == set(workload.queries)
    planned_updates = set(result.update_plans)
    # every update that modifies some recommended column family has a
    # maintenance plan; the others legitimately have none
    for update in workload.updates:
        from repro.enumerator import modifies
        touches = any(modifies(update, index) for index in result.indexes)
        assert (update in planned_updates) == touches


def test_plans_closed_over_schema(recommendation):
    _model, _workload, result = recommendation
    keys = {index.key for index in result.indexes}
    for plan in result.query_plans.values():
        assert {index.key for index in plan.indexes} <= keys
    for plans in result.update_plans.values():
        for update_plan in plans:
            assert update_plan.index.key in keys
            for support_plan in update_plan.support_plans:
                assert {index.key
                        for index in support_plan.indexes} <= keys


def test_statement_costs_are_complete(recommendation):
    _model, workload, result = recommendation
    costs = result.statement_costs
    for query in workload.queries:
        assert query.label in costs
    weighted = sum(weight * cost for weight, cost in costs.values())
    # the per-statement costs re-derive the BIP objective up to the
    # solver's MIP gap and the second phase's cost-pin slack
    assert weighted == pytest.approx(result.total_cost, rel=1e-2)


def test_hot_queries_get_single_lookup_plans(recommendation):
    """On the bidding mix, the frequent read paths must be one get."""
    _model, _workload, result = recommendation
    by_label = {query.label: plan
                for query, plan in result.query_plans.items()}
    for label in ("sic_items", "vi_item", "bc_categories", "pb_item"):
        assert len(by_label[label].lookup_steps) == 1, label


def test_advisor_runtime_matches_paper_claim(recommendation):
    """'Running NoSE for the RUBiS workload takes less than ten
    seconds' — ours should satisfy the same bound comfortably."""
    _model, _workload, result = recommendation
    assert result.timing.total < 10.0


def test_every_index_has_provenance_chain(recommendation):
    """Acceptance: each recommended column family carries a non-empty
    derivation chain terminating at a workload statement."""
    _model, workload, result = recommendation
    labels = set(workload.statements)
    data = result.explain_data
    assert data is not None and data.provenance is not None
    for index in result.indexes:
        chain = data.chain(index.key)
        assert chain, f"no provenance for {index.key}"
        sources = {source for record in chain
                   for source in record["sources"]}
        assert sources & labels, \
            f"{index.key} does not terminate at a workload statement"


def test_schema_is_reasonably_sized(recommendation):
    _model, _workload, result = recommendation
    # workload-specific but not absurd: between 5 and 40 column families
    assert 5 <= len(result.indexes) <= 40
