"""Unit tests for the RUBiS conceptual model and workload."""

import pytest

from repro.rubis import rubis_model, rubis_workload
from repro.rubis.model import rubis_counts
from repro.rubis.transactions import (
    BIDDING_MIX,
    BROWSING_MIX,
    TRANSACTIONS,
    WRITE_TRANSACTIONS,
    transaction_weights,
    write_statement_labels,
)
from repro.rubis.workload import STATEMENTS


@pytest.fixture(scope="module")
def model():
    return rubis_model(users=1000)


def test_eight_entities_eleven_relationships(model):
    assert len(model.entities) == 8
    assert model.relationship_count == 11


def test_counts_follow_user_scale():
    counts = rubis_counts(30_000)
    assert counts["User"] == 30_000
    assert counts["Item"] == 1000
    assert counts["Bid"] == 10_000
    assert counts["Region"] == 62
    assert counts["Category"] == 20


def test_model_validates(model):
    assert model.validate() is model


def test_dummy_attribute_for_browse_all(model):
    dummy = model.field("Category", "Dummy")
    assert dummy.cardinality == 1


def test_all_statements_parse(model):
    workload = rubis_workload(model)
    assert set(workload.statements) == set(STATEMENTS)


def test_every_statement_belongs_to_a_transaction():
    in_transactions = {label for labels in TRANSACTIONS.values()
                       for label in labels}
    assert in_transactions == set(STATEMENTS)


def test_fourteen_transactions():
    assert len(TRANSACTIONS) == 14


def test_mix_weights_normalized():
    for mix in ("bidding", "browsing"):
        weights = transaction_weights(mix)
        assert sum(weights.values()) == pytest.approx(1.0)


def test_browsing_mix_is_read_only():
    assert not set(BROWSING_MIX) & WRITE_TRANSACTIONS


def test_bidding_mix_covers_all_transactions():
    assert set(BIDDING_MIX) == set(TRANSACTIONS)


def test_write_statement_labels_are_writes(model):
    workload = rubis_workload(model)
    update_labels = {statement.label for statement in workload.updates}
    assert write_statement_labels() <= update_labels | {
        label for label in write_statement_labels()}
    for label in write_statement_labels():
        assert label in workload.statements


def test_workload_mixes(model):
    bidding = rubis_workload(model, mix="bidding")
    browsing = bidding.with_mix("browsing")
    assert bidding.weight("sb_insert") > 0
    assert browsing.weight("sb_insert") == 0
    assert browsing.weight("sic_items") > bidding.weight("sic_items")


def test_statement_weights_match_transaction_frequency(model):
    workload = rubis_workload(model, mix="bidding")
    weights = transaction_weights("bidding")
    for transaction, labels in TRANSACTIONS.items():
        for label in labels:
            assert workload.weight(label) == pytest.approx(
                weights[transaction])
