"""Property-based tests for structural statement digests.

Digests must identify a statement's *structure* only: relabelling,
reweighting, switching mixes and reordering predicates may never change
a digest, while `structural_diff` must account for every statement of
both workloads under arbitrary churn (multiset semantics).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.randgen import random_model, random_workload
from repro.workload import Workload, statement_digest
from repro.workload.statements import Query


def _model(seed):
    return random_model(entities=6, seed=seed, mean_degree=3)


def _workload(seed, **kwargs):
    options = {"queries": 6, "updates": 2, "inserts": 1}
    options.update(kwargs)
    return random_workload(_model(seed % 5), seed=seed, **options)


@given(seed=st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_digest_ignores_label_and_weight(seed):
    # the same seed builds a structural twin with independent
    # statement objects; relabelling and reweighting the twin must
    # leave every digest identical to the original's
    workload = _workload(seed)
    twin = _workload(seed)
    relabelled = Workload(twin.model)
    for number, (statement, _) in enumerate(twin.weighted_statements):
        relabelled.add_statement(statement,
                                 weight=float(number + 1) * 3.5,
                                 label=f"renamed_{number}")
    original = [statement_digest(statement)
                for statement, _ in workload.weighted_statements]
    renamed = [statement_digest(statement)
               for statement, _ in relabelled.weighted_statements]
    assert original == renamed


@given(seed=st.integers(0, 200), mix_seed=st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_digest_ignores_mix(seed, mix_seed):
    workload = _workload(seed)
    weights = {label: float((mix_seed + position) % 7 + 1)
               for position, label in enumerate(workload.statements)}
    before = {label: statement_digest(statement)
              for label, statement in workload.statements.items()}
    for label, weight in weights.items():
        workload.set_weight(label, weight)
    after = {label: statement_digest(statement)
             for label, statement in workload.statements.items()}
    assert before == after


@given(seed=st.integers(0, 200), data=st.data())
@settings(max_examples=40, deadline=None)
def test_digest_ignores_condition_order(seed, data):
    workload = _workload(seed)
    for query in workload.queries:
        conditions = list(query.conditions)
        permuted = data.draw(st.permutations(conditions),
                             label=f"conditions of {query.label}")
        shuffled = Query(query.key_path, query.select, permuted,
                         order_by=query.order_by, limit=query.limit,
                         label=query.label)
        assert statement_digest(shuffled) == statement_digest(query)


def _digests(workload):
    return Counter(statement_digest(statement)
                   for statement in workload.statements.values())


@given(seed=st.integers(0, 200), churn_seed=st.integers(0, 100),
       data=st.data())
@settings(max_examples=40, deadline=None)
def test_structural_diff_accounts_for_churn(seed, churn_seed, data):
    base = _workload(seed)
    edited = base.clone()
    labels = list(edited.statements)
    removals = data.draw(
        st.lists(st.sampled_from(labels), unique=True,
                 max_size=len(labels) - 1),
        label="removed labels")
    for label in removals:
        edited.remove_statement(label)
    extra = _workload(churn_seed + 1000, queries=3, updates=1,
                      inserts=0) if churn_seed % 2 else None
    if extra is not None:
        for number, (statement, weight) in enumerate(
                extra.weighted_statements):
            edited.add_statement(statement, weight=weight,
                                 label=f"churn_{number}")

    diff = base.structural_diff(edited)
    # every statement of both workloads is accounted for exactly once
    assert Counter(statement_digest(s) for s in diff.unchanged) \
        + Counter(statement_digest(s) for s in diff.added) \
        == _digests(edited)
    assert Counter(statement_digest(s) for s in diff.unchanged) \
        + Counter(statement_digest(s) for s in diff.removed) \
        == _digests(base)
    assert diff.changed == (_digests(base) != _digests(edited))


@given(seed=st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_structural_diff_ignores_relabel_and_reweight(seed):
    base = _workload(seed)
    twin = _workload(seed)
    edited = Workload(twin.model)
    for number, (statement, weight) in enumerate(
            reversed(list(twin.weighted_statements))):
        edited.add_statement(statement, weight=weight * 2.0 + 1.0,
                             label=f"other_{number}")
    diff = base.structural_diff(edited)
    assert not diff.changed
    assert len(diff.unchanged) == len(base.statements)
    assert diff.summary() == f"+0 -0 ={len(base.statements)}"
