"""Property-based tests: the record store against a naive reference.

The column family must behave exactly like "sort all rows, filter by
partition, clustering prefix and range" for any sequence of puts and
deletes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import Store
from repro.indexes import Index
from repro.model import Entity, IDField, IntegerField, Model


def _index():
    model = Model("prop")
    entity = Entity("E", count=100)
    entity.add_fields(IDField("ID"), IntegerField("A"), IntegerField("B"),
                      IntegerField("V"))
    model.add_entity(entity)
    return Index((entity["A"],), (entity["B"], entity["ID"]),
                 (entity["V"],), model.path(["E"]))


INDEX = _index()

row_strategy = st.fixed_dictionaries({
    "E.A": st.integers(0, 3),
    "E.B": st.integers(0, 5),
    "E.ID": st.integers(0, 5),
    "E.V": st.integers(-10, 10),
})

operators = st.sampled_from([">", ">=", "<", "<="])


def _reference(rows, partition, prefix, range_filter):
    """Naive model: last write wins per key, then filter and sort."""
    state = {}
    for row in rows:
        state[(row["E.A"], row["E.B"], row["E.ID"])] = row
    kept = [row for key, row in sorted(state.items())
            if row["E.A"] == partition[0]]
    if prefix:
        kept = [row for row in kept if row["E.B"] == prefix[0]]
    if range_filter is not None:
        operator, bound = range_filter
        component = "E.ID" if prefix else "E.B"
        def matches(value):
            if operator == ">":
                return value > bound
            if operator == ">=":
                return value >= bound
            if operator == "<":
                return value < bound
            return value <= bound
        kept = [row for row in kept if matches(row[component])]
    return kept


@settings(max_examples=120, deadline=None)
@given(rows=st.lists(row_strategy, max_size=30),
       partition=st.integers(0, 3),
       prefix=st.booleans(),
       prefix_value=st.integers(0, 5),
       use_range=st.booleans(),
       operator=operators,
       bound=st.integers(-1, 6))
def test_get_matches_reference(rows, partition, prefix, prefix_value,
                               use_range, operator, bound):
    store = Store()
    cf = store.create(INDEX)
    for row in rows:
        cf.put(row, charge=False)
    prefix_tuple = (prefix_value,) if prefix else ()
    range_filter = (operator, bound) if use_range else None
    got = cf.get((partition,), prefix=prefix_tuple,
                 range_filter=range_filter, charge=False)
    expected = _reference(rows, (partition,), prefix_tuple, range_filter)
    assert [(r["E.A"], r["E.B"], r["E.ID"], r["E.V"]) for r in got] \
        == [(r["E.A"], r["E.B"], r["E.ID"], r["E.V"]) for r in expected]


@settings(max_examples=80, deadline=None)
@given(puts=st.lists(row_strategy, max_size=20),
       deletes=st.lists(row_strategy, max_size=10))
def test_put_delete_sequences(puts, deletes):
    store = Store()
    cf = store.create(INDEX)
    state = {}
    for row in puts:
        cf.put(row, charge=False)
        state[(row["E.A"], row["E.B"], row["E.ID"])] = row["E.V"]
    for row in deletes:
        cf.delete_row(row, charge=False)
        state.pop((row["E.A"], row["E.B"], row["E.ID"]), None)
    assert len(cf) == len(state)
    for row in cf.rows():
        key = (row["E.A"], row["E.B"], row["E.ID"])
        assert state[key] == row["E.V"]


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_strategy, min_size=1, max_size=25))
def test_rows_sorted_within_partition(rows):
    store = Store()
    cf = store.create(INDEX)
    cf.put_many(rows, charge=False)
    for partition in {row["E.A"] for row in rows}:
        got = cf.get((partition,), charge=False)
        keys = [(row["E.B"], row["E.ID"]) for row in got]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
