"""Property-based tests on key-path invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.demo import hotel_model

MODEL = hotel_model()

PATHS = [
    ["Guest"],
    ["Guest", "Reservations"],
    ["Guest", "Reservations", "Room"],
    ["Guest", "Reservations", "Room", "Hotel"],
    ["Guest", "Reservations", "Room", "Hotel", "PointsOfInterest"],
    ["Hotel", "Rooms", "Reservations", "Guest"],
    ["PointOfInterest", "Hotels", "Amenities"],
    ["Room", "Hotel", "PointsOfInterest"],
]

path_strategy = st.sampled_from(PATHS).map(MODEL.path)


@given(path=path_strategy)
def test_reverse_is_involution(path):
    assert path.reverse().reverse() == path


@given(path=path_strategy)
def test_cardinality_orientation_independent(path):
    assert path.cardinality == pytest.approx(path.reverse().cardinality)


@given(path=path_strategy)
def test_signature_orientation_independent(path):
    assert path.signature == path.reverse().signature


@given(path=path_strategy, data=st.data())
def test_slices_are_consistent(path, data):
    start = data.draw(st.integers(0, len(path) - 1))
    stop = data.draw(st.integers(start + 1, len(path)))
    piece = path[start:stop]
    assert piece.entities == path.entities[start:stop]
    assert piece.keys == path.keys[start:stop - 1]


@given(path=path_strategy)
def test_splits_reassemble(path):
    for prefix, remainder in path.splits():
        assert prefix.concat(remainder) == path


@given(path=path_strategy)
def test_full_fanout_matches_cardinality(path):
    first_count = path.entities[0].count
    assert first_count * path.fanout_from(0) == pytest.approx(
        max(path.cardinality, 1.0), rel=1e-6)
