"""Property-based end-to-end checks: executor vs oracle.

For randomly drawn parameters on a loaded small hotel instance, the
recommended plans must return exactly what direct evaluation over the
ground truth returns — including after random interleaved updates.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model, hotel_workload


@pytest.fixture(scope="module")
def world():
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    engine = ExecutionEngine(model, recommendation, dataset)
    engine.load()
    return model, workload, dataset, engine


def _check(engine, dataset, query, params):
    rows = engine.execute_query(query, params)
    got = {tuple(row[field.id] for field in query.select)
           for row in rows}
    assert got == dataset.evaluate_query(query, params)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(guest=st.integers(0, 999), city=st.integers(0, 19),
       rate=st.floats(50, 500))
def test_random_parameters_match_oracle(world, guest, city, rate):
    _model, workload, dataset, engine = world
    guest %= max(len(dataset.rows["Guest"]), 1)
    _check(engine, dataset, workload.statements["guest_by_id"],
           {"guest": guest})
    _check(engine, dataset, workload.statements["pois_for_guest"],
           {"guest": guest})
    _check(engine, dataset,
           workload.statements["guests_in_city_above_rate"],
           {"city": f"city-{city % 20}", "rate": rate})


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(poi=st.integers(0, 9), text=st.text(min_size=1, max_size=20),
       probe=st.integers(0, 4))
def test_random_updates_keep_consistency(world, poi, text, probe):
    _model, workload, dataset, engine = world
    poi %= max(len(dataset.rows["PointOfInterest"]), 1)
    engine.execute_update(workload.statements["update_poi_description"],
                          {"description": text, "poi": poi})
    assert dataset.rows["PointOfInterest"][poi][
        "PointOfInterest.POIDescription"] == text
    _check(engine, dataset, workload.statements["pois_for_hotel"],
           {"hotel": probe % 2})
