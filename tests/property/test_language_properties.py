"""Property-based checks of the statement language invariants.

The digest must be a *structural* identity: reordering the members of an
IN list or the branches of an OR disjunction is a cosmetic change, and
every statement the random generator emits must survive a parse →
``str`` → parse round trip with its digest and signature intact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.randgen import random_model, random_workload
from repro.workload.digest import statement_digest, statement_signature
from repro.workload.parser import parse_statement


@settings(max_examples=25, deadline=None)
@given(permutation=st.permutations(["a", "b", "c", "d"]))
def test_digest_invariant_under_in_list_value_order(hotel, permutation):
    names = ", ".join(f"?{name}" for name in permutation)
    query = parse_statement(
        hotel,
        f"SELECT Guest.GuestName FROM Guest "
        f"WHERE Guest.GuestID IN ({names})")
    baseline = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID IN (?a, ?b, ?c, ?d)")
    assert statement_digest(query) == statement_digest(baseline)
    assert statement_signature(query) == statement_signature(baseline)


BRANCHES = [
    "Guest.GuestID = ?a",
    "Guest.GuestName = ?b AND Guest.GuestEmail != ?c",
    "Guest.GuestEmail = ?d",
]


@settings(max_examples=25, deadline=None)
@given(permutation=st.permutations(BRANCHES))
def test_digest_invariant_under_or_branch_order(hotel, permutation):
    def parse(branches):
        where = " OR ".join(f"({branch})" for branch in branches)
        return parse_statement(
            hotel,
            f"SELECT Guest.GuestName FROM Guest WHERE {where}")

    shuffled = parse(permutation)
    baseline = parse(BRANCHES)
    # the digest is structural and must ignore branch order; the
    # *signature* deliberately keeps written order, since branch order
    # steers plan-discovery order and the artifact store promises
    # byte-identical explain replay
    assert statement_digest(shuffled) == statement_digest(baseline)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), extended=st.booleans())
def test_randgen_statements_round_trip_through_the_grammar(seed,
                                                           extended):
    model = random_model(entities=4, seed=seed)
    workload = random_workload(model, queries=3, updates=2, inserts=1,
                               seed=seed, extended=extended)
    for statement in workload.statements.values():
        rendered = str(statement)
        reparsed = parse_statement(model, rendered)
        assert statement_digest(reparsed) == statement_digest(statement)
        assert statement_signature(reparsed) == statement_signature(
            statement)
        # unparse is a fixed point: rendering the reparsed statement
        # reproduces the same text
        assert str(reparsed) == rendered
