"""Property-based parser tests: render/parse round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demo import hotel_model
from repro.workload import parse_statement
from repro.workload.conditions import Condition
from repro.workload.statements import Query

MODEL = hotel_model()

PATH_NAMES = [
    ["Guest"],
    ["Guest", "Reservations", "Room"],
    ["Guest", "Reservations", "Room", "Hotel"],
    ["Room", "Hotel"],
    ["Hotel", "Rooms"],
]


def _render(query):
    """Render a Query back to the statement language."""
    select = ", ".join(field.id for field in query.select)
    path = str(query.key_path)
    clauses = []
    for condition in query.conditions:
        clauses.append(f"{_reference(query, condition.field)} "
                       f"{condition.operator} ?{condition.parameter}")
    text = f"SELECT {select} FROM {path}"
    if clauses:
        text += " WHERE " + " AND ".join(clauses)
    if query.order_by:
        text += " ORDER BY " + ", ".join(
            _reference(query, field) for field in query.order_by)
    if query.limit is not None:
        text += f" LIMIT {query.limit}"
    return text


def _reference(query, field):
    """A parseable reference to a field on the query path."""
    return field.id  # Entity.Field resolves via the entity alias


@st.composite
def queries(draw):
    path = MODEL.path(draw(st.sampled_from(PATH_NAMES)))
    target = path.first
    select = draw(st.lists(st.sampled_from(target.attributes),
                           min_size=1, max_size=3, unique_by=id))
    fields = [field for entity in path.entities
              for field in entity.attributes]
    eq_field = draw(st.sampled_from(fields))
    conditions = [Condition(eq_field, "=", "p0")]
    others = [field for field in fields if field is not eq_field]
    if others and draw(st.booleans()):
        range_field = draw(st.sampled_from(others))
        conditions.append(Condition(
            range_field, draw(st.sampled_from([">", ">=", "<", "<="])),
            "p1"))
    order_by = ()
    if draw(st.booleans()):
        order_by = (draw(st.sampled_from(target.attributes)),)
    limit = draw(st.one_of(st.none(), st.integers(1, 100)))
    return Query(path, select, conditions, order_by=order_by,
                 limit=limit)


@settings(max_examples=60, deadline=None)
@given(query=queries())
def test_render_parse_round_trip(query):
    """Parsing the rendered text reproduces the same statement.

    Entity names appearing on the path are unique in the hotel model,
    so ``Entity.Field`` references resolve unambiguously.
    """
    text = _render(query)
    parsed = parse_statement(MODEL, text)
    assert parsed.key_path == query.key_path
    assert [f.id for f in parsed.select] == [f.id for f in query.select]
    assert {(c.field.id, c.operator, c.parameter)
            for c in parsed.conditions} \
        == {(c.field.id, c.operator, c.parameter)
            for c in query.conditions}
    assert [f.id for f in parsed.order_by] \
        == [f.id for f in query.order_by]
    assert parsed.limit == query.limit


@settings(max_examples=60, deadline=None)
@given(query=queries())
def test_parse_is_deterministic(query):
    text = _render(query)
    first = parse_statement(MODEL, text)
    second = parse_statement(MODEL, text)
    assert first.key_path == second.key_path
    assert [f.id for f in first.select] == [f.id for f in second.select]
