"""Property-based tests for decayed-weight estimation and drift math.

The monitor's invariants: a longer half-life always favours *older*
traffic relative to newer traffic (monotonicity), digest-keyed
accumulation sees exactly the structural statement sets
``Workload.structural_diff`` sees, and the Jensen–Shannon divergence
behind the weight-drift alert is a symmetric, [0, 1]-bounded metric.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.monitor import WorkloadMonitor, js_divergence, l1_distance
from repro.monitor.drift import DriftDetector
from repro.randgen import random_model, random_workload
from repro.workload import statement_digest


def _workload(seed, **kwargs):
    options = {"queries": 6, "updates": 2, "inserts": 1}
    options.update(kwargs)
    return random_workload(random_model(entities=6, seed=seed % 5,
                                        mean_degree=3),
                           seed=seed, **options)


# -- half-life monotonicity ---------------------------------------------------


@given(seed=st.integers(0, 200),
       old_times=st.lists(st.floats(0.0, 50.0), min_size=1,
                          max_size=8),
       new_times=st.lists(st.floats(50.0, 100.0), min_size=1,
                          max_size=8),
       half_lives=st.tuples(st.floats(1.0, 50.0),
                            st.floats(1.0, 50.0)))
@settings(max_examples=60, deadline=None)
def test_longer_half_life_favours_older_traffic(seed, old_times,
                                                new_times, half_lives):
    """With every 'old' event before every 'new' event, the old/new
    decayed-weight ratio is non-decreasing in the half-life."""
    short, long = sorted(half_lives)
    assume(long > short * 1.001)
    workload = _workload(seed)
    labels = sorted(workload.statements)
    assume(len(labels) >= 2)
    old_label, new_label = labels[0], labels[1]
    assume(statement_digest(workload.statements[old_label])
           != statement_digest(workload.statements[new_label]))

    def ratio(half_life):
        monitor = WorkloadMonitor(workload, half_life=half_life)
        for time in sorted(old_times):
            monitor.observe(workload.statements[old_label],
                            time=time)
        for time in sorted(new_times):
            monitor.observe(workload.statements[new_label],
                            time=time)
        weights = monitor.observed_weights(time=100.0)
        return weights[old_label] / weights[new_label]

    assert ratio(short) <= ratio(long) * (1 + 1e-9)


@given(seed=st.integers(0, 100),
       times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
       half_life=st.floats(0.5, 200.0))
@settings(max_examples=60, deadline=None)
def test_decayed_weight_bounded_by_event_count(seed, times, half_life):
    """Decay only shrinks: total weight never exceeds the event count
    and stays positive."""
    workload = _workload(seed)
    label = sorted(workload.statements)[0]
    monitor = WorkloadMonitor(workload, half_life=half_life)
    for time in sorted(times):
        monitor.observe(workload.statements[label], time=time)
    weight = monitor.observed_weights()[label]
    assert 0.0 < weight <= len(times) + 1e-9


# -- digest-keyed accumulation vs structural_diff -----------------------------


@given(seed=st.integers(0, 200), other_seed=st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_structural_drift_matches_structural_diff(seed, other_seed):
    """Observing workload B against advised workload A reports exactly
    the digest-set difference ``A.structural_diff(B)`` describes."""
    advised = _workload(seed)
    live = _workload(other_seed)
    monitor = WorkloadMonitor(advised)
    for statement in live.statements.values():
        monitor.observe(statement, label=statement.label)
    detector = DriftDetector(monitor, min_requests=1,
                             weight_threshold=10.0,
                             min_advised_share=0.0)
    record = detector.check()

    advised_digests = {statement_digest(statement)
                       for statement in advised.statements.values()}
    live_digests = {statement_digest(statement)
                    for statement in live.statements.values()}
    assert set(record["structural_added"]) \
        == live_digests - advised_digests
    assert set(record["structural_removed"]) \
        == advised_digests - live_digests

    diff = advised.structural_diff(live)
    # structural_diff's added/removed statements carry exactly the
    # digests the detector flagged (multiset -> set projection)
    assert {statement_digest(s) for s in diff.added} \
        - advised_digests == set(record["structural_added"])
    assert {statement_digest(s) for s in diff.removed} \
        - live_digests == set(record["structural_removed"])


@given(seed=st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_observing_advised_workload_reports_no_structural_drift(seed):
    advised = _workload(seed)
    monitor = WorkloadMonitor(advised)
    for statement in advised.statements.values():
        monitor.observe(statement, label=statement.label)
    detector = DriftDetector(monitor, min_requests=1,
                             weight_threshold=10.0,
                             min_advised_share=0.0)
    record = detector.check()
    assert record["structural_added"] == []
    assert record["structural_removed"] == []


# -- Jensen–Shannon divergence ------------------------------------------------


def _distributions(draw_keys, draw_masses):
    total = sum(draw_masses)
    return {key: mass / total
            for key, mass in zip(draw_keys, draw_masses) if mass > 0}


shares = st.lists(st.floats(0.001, 10.0), min_size=1, max_size=8)


@given(first=shares, second=shares)
@settings(max_examples=80, deadline=None)
def test_js_divergence_symmetric_and_bounded(first, second):
    keys = [f"k{i}" for i in range(max(len(first), len(second)))]
    p = _distributions(keys, first)
    q = _distributions(keys, second)
    forward = js_divergence(p, q)
    backward = js_divergence(q, p)
    assert abs(forward - backward) < 1e-12
    assert 0.0 <= forward <= 1.0


@given(masses=shares)
@settings(max_examples=40, deadline=None)
def test_js_divergence_identity(masses):
    keys = [f"k{i}" for i in range(len(masses))]
    p = _distributions(keys, masses)
    assert js_divergence(p, p) == 0.0


@given(first=shares, second=shares)
@settings(max_examples=40, deadline=None)
def test_l1_symmetric_and_bounded(first, second):
    keys = [f"k{i}" for i in range(max(len(first), len(second)))]
    p = _distributions(keys, first)
    q = _distributions(keys, second)
    assert l1_distance(p, q) == l1_distance(q, p)
    assert 0.0 <= l1_distance(p, q) <= 2.0 + 1e-12
