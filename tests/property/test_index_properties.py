"""Property-based invariants for column families and enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demo import hotel_model
from repro.enumerator import combine_candidates, modifies, support_queries
from repro.indexes import Index
from repro.workload import parse_statement

MODEL = hotel_model()

PATHS = [
    ["Guest"],
    ["Room"],
    ["Hotel"],
    ["Hotel", "Rooms"],
    ["Room", "Hotel"],
    ["Guest", "Reservations", "Room"],
    ["Hotel", "Rooms", "Reservations", "Guest"],
]


@st.composite
def indexes(draw):
    path = MODEL.path(draw(st.sampled_from(PATHS)))
    fields = [field for entity in path.entities
              for field in entity.attributes]
    hash_count = draw(st.integers(1, min(2, len(fields))))
    shuffled = draw(st.permutations(fields))
    hash_fields = shuffled[:hash_count]
    rest = shuffled[hash_count:]
    order_count = draw(st.integers(0, min(3, len(rest))))
    order_fields = rest[:order_count]
    extra_count = draw(st.integers(0, min(3, len(rest) - order_count)))
    extra_fields = rest[order_count:order_count + extra_count]
    return Index(hash_fields, order_fields, extra_fields, path)


@settings(max_examples=80, deadline=None)
@given(index=indexes())
def test_key_is_stable_and_orientation_free(index):
    twin = Index(index.hash_fields, index.order_fields,
                 index.extra_fields,
                 index.path.reverse() if len(index.path) > 1
                 else index.path)
    assert twin.key == index.key
    assert twin == index


@settings(max_examples=80, deadline=None)
@given(index=indexes())
def test_statistics_are_positive_and_consistent(index):
    assert index.entries >= 1.0
    assert 1.0 <= index.hash_count <= index.entries
    assert index.per_partition_entries * index.hash_count \
        == pytest.approx(index.entries)
    assert index.entry_size == sum(f.size for f in index.all_fields)
    assert index.size == pytest.approx(index.entries * index.entry_size)


@settings(max_examples=80, deadline=None)
@given(index=indexes())
def test_field_groups_partition_all_fields(index):
    all_ids = [field.id for field in index.all_fields]
    assert len(all_ids) == len(set(all_ids))
    assert index.covers(index.key_fields)
    assert index.covers(index.extra_fields)


@settings(max_examples=40, deadline=None)
@given(left=indexes(), right=indexes())
def test_combine_output_is_valid(left, right):
    merged = combine_candidates({left, right})
    for combined in merged:
        assert set(combined.hash_fields) == set(left.hash_fields)
        assert combined.order_fields == ()
        extras = {field.id for field in combined.extra_fields}
        source = ({field.id for field in left.extra_fields}
                  | {field.id for field in right.extra_fields})
        assert extras <= source
        assert combined.covers(left.extra_fields)
        assert combined.covers(right.extra_fields)


UPDATES = [
    "UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?",
    "UPDATE Room SET RoomRate = ? WHERE Room.RoomID = ?",
    "DELETE FROM Guest WHERE Guest.GuestID = ?",
    "DELETE FROM Reservation WHERE Reservation.ResID = ?",
    "INSERT INTO Reservation SET ResID = ? "
    "AND CONNECT TO Guest(?g), Room(?r)",
    "CONNECT Guest(?g) TO Reservations(?r)",
    "DISCONNECT Guest(?g) FROM Reservations(?r)",
]


@settings(max_examples=60, deadline=None)
@given(index=indexes(), text=st.sampled_from(UPDATES))
def test_support_queries_only_for_modified_indexes(index, text):
    update = parse_statement(MODEL, text)
    queries = support_queries(update, index)
    if not modifies(update, index):
        assert queries == []
    for query in queries:
        # support queries are well-formed: anchored, on-path selects
        assert query.eq_conditions
        for field in query.select:
            assert query.key_path.includes(field.parent)
        assert query.update is update
        assert query.index is index
