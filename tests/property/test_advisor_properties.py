"""Property-based tests over the advisor pipeline.

Random queries over the hotel model exercise enumeration, planning, and
optimization invariants; small random problems cross-check the BIP
encoding against brute force.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advisor import Advisor
from repro.cost import CassandraCostModel
from repro.demo import hotel_model
from repro.enumerator import CandidateEnumerator
from repro.indexes import materialized_view_for
from repro.optimizer import (
    BIPOptimizer,
    BruteForceOptimizer,
    OptimizationProblem,
)
from repro.planner import QueryPlanner
from repro.workload import Workload
from repro.workload.conditions import Condition
from repro.workload.statements import Query

MODEL = hotel_model()

PATH_NAMES = [
    ["Guest"],
    ["Guest", "Reservations", "Room"],
    ["Guest", "Reservations", "Room", "Hotel"],
    ["Room", "Hotel"],
    ["Hotel", "Rooms"],
    ["PointOfInterest", "Hotels"],
]


@st.composite
def queries(draw):
    """A random, valid query over the hotel model."""
    path = MODEL.path(draw(st.sampled_from(PATH_NAMES)))
    target = path.first
    attributes = target.attributes
    select = draw(st.lists(st.sampled_from(attributes), min_size=1,
                           max_size=len(attributes), unique_by=id))
    condition_fields = [field
                       for entity in path.entities
                       for field in entity.attributes]
    eq_field = draw(st.sampled_from(condition_fields))
    conditions = [Condition(eq_field, "=", "p0")]
    remaining = [field for field in condition_fields
                 if field is not eq_field]
    if remaining and draw(st.booleans()):
        range_field = draw(st.sampled_from(remaining))
        operator = draw(st.sampled_from([">", ">=", "<", "<="]))
        conditions.append(Condition(range_field, operator, "p1"))
    return Query(path, select, conditions, label="prop_query")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries())
def test_enumeration_contains_materialized_view(query):
    pool = CandidateEnumerator(MODEL).enumerate_query(query)
    assert materialized_view_for(query) in pool


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries())
def test_every_random_query_is_plannable(query):
    pool = CandidateEnumerator(MODEL).enumerate_query(query)
    planner = QueryPlanner(MODEL, pool, max_plans=100)
    plans = planner.plans_for(query)
    assert plans
    for plan in plans:
        # the chain covers all select fields and at most one range bind
        range_binds = [step for step in plan.lookup_steps
                       if step.range_field is not None]
        assert len(range_binds) <= 1
        available = set()
        for step in plan.lookup_steps:
            available.update(f.id for f in step.index.all_fields)
        assert {f.id for f in query.select} <= available


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries())
def test_plan_costs_positive_and_mv_is_single_get(query):
    pool = CandidateEnumerator(MODEL).enumerate_query(query)
    planner = QueryPlanner(MODEL, pool, max_plans=100)
    cost_model = CassandraCostModel()
    plans = planner.plans_for(query)
    for plan in plans:
        assert cost_model.cost_plan(plan) > 0
    single_gets = [plan for plan in plans
                   if len(plan.lookup_steps) == 1]
    assert single_gets, "the materialized view plan must exist"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries(), weight=st.floats(0.1, 100.0))
def test_bip_matches_brute_force_on_random_queries(query, weight):
    """The HiGHS encoding must agree with exhaustive search."""
    pool = sorted(CandidateEnumerator(MODEL).enumerate_query(query),
                  key=lambda index: index.key)[:10]
    planner = QueryPlanner(MODEL, pool, max_plans=60)
    plans = planner.plans_for(query, require=False)
    if not plans:
        return
    cost_model = CassandraCostModel()
    for plan in plans:
        cost_model.cost_plan(plan)
    problem = OptimizationProblem({query: plans}, {},
                                  {"prop_query": weight})
    bip = BIPOptimizer(mip_rel_gap=0.0).solve(problem)
    brute = BruteForceOptimizer().solve(problem)
    assert bip.total_cost == pytest.approx(brute.total_cost, rel=1e-6)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries(), weight=st.floats(0.1, 10.0))
def test_advisor_end_to_end_on_random_query(query, weight):
    workload = Workload(MODEL)
    # add_statement registers a relabelled copy when the statement
    # already carries a different label; the return value is the
    # registered object, which keys the recommendation's plans
    query = workload.add_statement(query, weight=weight, label="only")
    recommendation = Advisor(MODEL).recommend(workload)
    assert recommendation.indexes
    plan = recommendation.query_plans[query]
    assert plan.cost <= materialized_view_cost(query) * 1.0001


def materialized_view_cost(query):
    view = materialized_view_for(query)
    planner = QueryPlanner(MODEL, [view])
    plans = planner.plans_for(query)
    cost_model = CassandraCostModel()
    return min(cost_model.cost_plan(plan) for plan in plans)
