"""Planning the extended constructs: unions, aggregation, multi-gets."""

import pytest

from repro.cost import CassandraCostModel, SimpleCostModel
from repro.enumerator import CandidateEnumerator
from repro.planner import QueryPlanner
from repro.planner.plans import UnionPlan
from repro.planner.steps import (
    AggregateStep,
    FilterStep,
    IndexLookupStep,
    SortStep,
    UnionStep,
)
from repro.workload.parser import parse_statement


def _plans(model, text, **kwargs):
    query = parse_statement(model, text)
    enumerator = CandidateEnumerator(model)
    candidates = enumerator.enumerate_query(query)
    planner = QueryPlanner(model, candidates, **kwargs)
    return query, planner.plans_for(query)


def test_disjunctive_query_plans_as_a_union(hotel):
    query, space = _plans(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID = ?a OR Guest.GuestName = ?b "
        "ORDER BY Guest.GuestName")
    assert space
    for plan in space:
        assert isinstance(plan, UnionPlan)
        assert len(plan.branch_plans) == 2
        kinds = [type(step) for step in plan.tail_steps]
        assert kinds[0] is UnionStep
        # a union's merged stream is never in index order: the sort is
        # always client-side
        assert SortStep in kinds
        # flattened steps expose every branch step to cost/dominance
        assert len(plan.steps) == sum(
            len(branch.steps) for branch in plan.branch_plans) + len(
                plan.tail_steps)
    signatures = [plan.signature for plan in space]
    assert len(set(signatures)) == len(signatures)
    assert all(")U(" in signature for signature in signatures)


def test_aggregate_query_plans_with_a_fold_step(hotel):
    query, space = _plans(
        hotel,
        "SELECT Room.RoomNumber, COUNT(*) FROM Room.Hotel "
        "WHERE Hotel.HotelCity = ?city GROUP BY Room.RoomNumber")
    assert space
    for plan in space:
        folds = [step for step in plan.steps
                 if isinstance(step, AggregateStep)]
        assert len(folds) == 1
        # groups cannot exceed the estimated group count
        assert folds[0].cardinality <= query.group_rows
        assert plan.steps[-1] is folds[0]


def test_in_list_multiplies_get_requests(hotel):
    _, eq_space = _plans(hotel,
                         "SELECT Guest.GuestName FROM Guest "
                         "WHERE Guest.GuestID = ?g")
    _, in_space = _plans(hotel,
                         "SELECT Guest.GuestName FROM Guest "
                         "WHERE Guest.GuestID IN (?a, ?b, ?c)")

    def first_lookup(space):
        return min((plan.steps[0] for plan in space
                    if isinstance(plan.steps[0], IndexLookupStep)),
                   key=lambda step: step.bindings)

    assert first_lookup(in_space).bindings == pytest.approx(
        3 * first_lookup(eq_space).bindings)
    # k point gets cost more than one under a request-dominated model
    model = CassandraCostModel()
    eq_cost = min(model.cost_plan(plan) for plan in eq_space)
    in_cost = min(model.cost_plan(plan) for plan in in_space)
    assert in_cost > eq_cost


def test_inequality_predicates_are_filtered_client_side(hotel):
    query, space = _plans(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID = ?g AND Guest.GuestName != ?n")
    assert space
    for plan in space:
        filters = [step for step in plan.steps
                   if isinstance(step, FilterStep)]
        assert any(condition.operator == "!="
                   for step in filters
                   for condition in step.conditions)


def test_union_and_aggregate_steps_cost_nothing_in_simple_model(hotel):
    query, space = _plans(
        hotel,
        "SELECT Guest.GuestName, COUNT(*) FROM Guest "
        "WHERE Guest.GuestID = ?a OR Guest.GuestName = ?b "
        "GROUP BY Guest.GuestName")
    model = SimpleCostModel()
    for plan in space:
        model.cost_plan(plan)
        for step in plan.tail_steps:
            assert step.cost == 0.0
