"""Unit tests for plan containers and step descriptions."""

import pytest

from repro.cost import SimpleCostModel
from repro.indexes import entity_fetch_index, materialized_view_for
from repro.planner import QueryPlanner
from repro.planner.plans import QueryPlan, UpdatePlan
from repro.planner.steps import (
    DeleteStep,
    FilterStep,
    IndexLookupStep,
    InsertStep,
    LimitStep,
    SortStep,
)
from repro.workload import parse_statement
from repro.workload.conditions import Condition

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


@pytest.fixture()
def plan(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    return plan


def test_plan_indexes_in_first_use_order(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?")
    fetch = entity_fetch_index(hotel.entity("Guest"))
    planner = QueryPlanner(hotel, [fetch])
    (plan,) = planner.plans_for(query)
    assert plan.indexes == (fetch,)
    assert plan.lookup_steps == plan.steps[:1]


def test_plan_signature_distinguishes_structure(hotel, plan):
    assert plan.signature.startswith("L:")
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?")
    fetch = entity_fetch_index(hotel.entity("Guest"))
    other = QueryPlanner(hotel, [fetch]).plans_for(query)[0]
    assert other.signature != plan.signature


def test_plan_cardinality_is_last_step(plan):
    assert plan.cardinality == plan.steps[-1].cardinality
    assert QueryPlan(plan.query, []).cardinality == 0.0


def test_plan_describe_lists_steps(plan):
    text = plan.describe()
    assert "1." in text
    assert plan.query.label or "Plan for" in text


def test_step_descriptions(hotel, plan):
    lookup = plan.steps[0]
    assert "lookup" in lookup.describe()
    assert lookup.index.key in lookup.describe()
    rate = hotel.field("Room", "RoomRate")
    filter_step = FilterStep((Condition(rate, ">"),), 10, 1)
    assert "filter" in filter_step.describe()
    sort_step = SortStep((rate,), 10)
    assert "sort" in sort_step.describe()
    limit_step = LimitStep(5, 100)
    assert "limit 5" in limit_step.describe()
    assert limit_step.cardinality == 5.0
    index = entity_fetch_index(hotel.entity("Guest"))
    assert "insert" in InsertStep(index, 2).describe()
    assert "delete" in DeleteStep(index, 2).describe()
    assert "IndexLookupStep" in repr(lookup)


def test_fetch_step_description(hotel):
    index = entity_fetch_index(hotel.entity("Guest"))
    step = IndexLookupStep(index, 3, 3, 3,
                           eq_fields=index.hash_fields, is_fetch=True)
    assert step.describe().startswith("fetch")


def test_update_plan_grouping_and_costs(hotel, hotel_full):
    from repro.enumerator import CandidateEnumerator
    from repro.planner import UpdatePlanner
    pool = CandidateEnumerator(hotel).candidates(hotel_full)
    planner = QueryPlanner(hotel, pool)
    update_planner = UpdatePlanner(hotel, planner)
    delete = hotel_full.statements["delete_guest"]
    plans = update_planner.plans_for(delete)
    target = max(plans, key=lambda p: len(p.support_plans))
    SimpleCostModel().cost_update_plan(target)
    grouped = target.support_plans_by_query
    assert sum(len(v) for v in grouped.values()) \
        == len(target.support_plans)
    assert target.cost >= target.update_cost
    assert "UpdatePlan" in repr(target)


def test_update_plan_cost_requires_costing(hotel):
    index = entity_fetch_index(hotel.entity("Guest"))
    update = parse_statement(
        hotel, "UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?")
    plan = UpdatePlan(update, index, [], [InsertStep(index, 1)])
    with pytest.raises(ValueError):
        plan.update_cost
