"""Plan-space tests reproducing Fig 6 of the paper.

The relaxed prefix query

    SELECT Room.RoomID FROM Room
    WHERE Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate

must admit (at least) the paper's three plans over the CF1..CF5 pool:

    1. CF1 [HotelCity][RoomRate, RoomID][]           (single get)
    2. CF3 -> CF4 -> CF5 + filter                     (chain of gets)
    3. CF2 -> CF5 + filter                            (shortcut chain)
"""

import pytest

from repro.indexes import Index
from repro.planner import QueryPlanner
from repro.planner.steps import FilterStep, IndexLookupStep
from repro.workload import parse_statement


@pytest.fixture()
def fig6_pool(hotel):
    city = hotel.field("Hotel", "HotelCity")
    hotel_id = hotel.field("Hotel", "HotelID")
    room_id = hotel.field("Room", "RoomID")
    rate = hotel.field("Room", "RoomRate")
    hotel_room = hotel.path(["Hotel", "Rooms"])
    return {
        "CF1": Index((city,), (rate, room_id), (), hotel_room),
        "CF2": Index((city,), (room_id,), (), hotel_room),
        "CF3": Index((city,), (hotel_id,), (), hotel.path(["Hotel"])),
        "CF4": Index((hotel_id,), (room_id,), (), hotel_room),
        "CF5": Index((room_id,), (), (rate,), hotel.path(["Room"])),
    }


@pytest.fixture()
def fig6_query(hotel):
    return parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate")


def _signatures(plans, pool):
    names = {index.key: name for name, index in pool.items()}
    signatures = set()
    for plan in plans:
        lookups = tuple(names[step.index.key]
                        for step in plan.steps
                        if isinstance(step, IndexLookupStep))
        signatures.add(lookups)
    return signatures


def test_fig6_plan_space(hotel, fig6_pool, fig6_query):
    planner = QueryPlanner(hotel, fig6_pool.values())
    plans = planner.plans_for(fig6_query)
    signatures = _signatures(plans, fig6_pool)
    assert ("CF1",) in signatures
    assert ("CF3", "CF4", "CF5") in signatures
    assert ("CF2", "CF5") in signatures


def test_fig6_materialized_view_plan_serves_range(hotel, fig6_pool,
                                                  fig6_query):
    planner = QueryPlanner(hotel, [fig6_pool["CF1"]])
    plans = planner.plans_for(fig6_query)
    assert len(plans) == 1
    (plan,) = plans
    (lookup,) = plan.lookup_steps
    assert lookup.range_field is hotel.field("Room", "RoomRate")
    # range served in the get: no client-side filter required
    assert not any(isinstance(step, FilterStep) for step in plan.steps)


def test_fig6_chain_plan_filters_client_side(hotel, fig6_pool,
                                             fig6_query):
    planner = QueryPlanner(hotel, [fig6_pool["CF2"], fig6_pool["CF5"]])
    plans = planner.plans_for(fig6_query)
    assert plans, "CF2+CF5 must answer the query"
    plan = min(plans, key=lambda p: len(p.steps))
    kinds = [type(step).__name__ for step in plan.steps]
    assert kinds.count("IndexLookupStep") == 2
    assert "FilterStep" in kinds
    # the fetch on CF5 retrieves the rate for each room
    fetch = plan.lookup_steps[1]
    assert fetch.is_fetch
    assert fetch.index == fig6_pool["CF5"]


def test_no_plan_without_anchor(hotel, fig6_pool, fig6_query):
    from repro.exceptions import PlanningError
    planner = QueryPlanner(hotel, [fig6_pool["CF5"]])
    with pytest.raises(PlanningError):
        planner.plans_for(fig6_query)
    assert planner.plans_for(fig6_query, require=False) == []


def test_cardinality_propagation(hotel, fig6_pool, fig6_query):
    planner = QueryPlanner(hotel, [fig6_pool["CF1"]])
    (plan,) = planner.plans_for(fig6_query)
    (lookup,) = plan.lookup_steps
    cities = hotel.field("Hotel", "HotelCity").cardinality
    rooms = hotel.entity("Room").count
    expected = rooms / cities * 0.1  # range selectivity
    assert lookup.cardinality == pytest.approx(expected)
    assert lookup.bindings == 1.0


def test_chain_bindings_grow_with_fanout(hotel, fig6_pool, fig6_query):
    planner = QueryPlanner(hotel, [fig6_pool["CF3"], fig6_pool["CF4"],
                                   fig6_pool["CF5"]])
    plans = planner.plans_for(fig6_query)
    plan = min(plans, key=lambda p: len(p.steps))
    lookups = plan.lookup_steps
    hotels_per_city = (hotel.entity("Hotel").count
                       / hotel.field("Hotel", "HotelCity").cardinality)
    assert lookups[0].cardinality == pytest.approx(hotels_per_city)
    assert lookups[1].bindings == pytest.approx(hotels_per_city)
    rooms_per_city = (hotel.entity("Room").count
                      / hotel.field("Hotel", "HotelCity").cardinality)
    assert lookups[1].cardinality == pytest.approx(rooms_per_city)
