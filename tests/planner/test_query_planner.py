"""Unit tests for general query-planner behaviour."""

import pytest

from repro.enumerator import CandidateEnumerator
from repro.indexes import Index, entity_fetch_index, materialized_view_for
from repro.planner import QueryPlanner
from repro.planner.steps import (
    FilterStep,
    LimitStep,
    SortStep,
)
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def _planner_for(hotel, query):
    pool = CandidateEnumerator(hotel).enumerate_query(query)
    return QueryPlanner(hotel, pool)


def test_materialized_view_gives_single_lookup_plan(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    plans = planner.plans_for(query)
    assert len(plans) == 1
    assert len(plans[0].steps) == 1
    assert plans[0].indexes == (view,)


def test_enumerated_pool_always_plannable(hotel, hotel_queries):
    for query in hotel_queries.queries:
        planner = _planner_for(hotel, query)
        plans = planner.plans_for(query)
        assert plans
        # every plan ends with the query's select fields available
        for plan in plans:
            available = set()
            for step in plan.lookup_steps:
                available.update(f.id for f in step.index.all_fields)
            assert {f.id for f in query.select} <= available


def test_plans_are_deduplicated(hotel):
    query = parse_statement(hotel, FIG3)
    planner = _planner_for(hotel, query)
    plans = planner.plans_for(query)
    signatures = [plan.signature for plan in plans]
    assert len(signatures) == len(set(signatures))


def test_max_plans_cap(hotel):
    query = parse_statement(hotel, FIG3)
    pool = CandidateEnumerator(hotel).enumerate_query(query)
    planner = QueryPlanner(hotel, pool, max_plans=3)
    assert len(planner.plans_for(query)) <= 3


def test_order_by_served_by_clustering(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Hotel.HotelName")
    name = hotel.field("Hotel", "HotelName")
    city = hotel.field("Hotel", "HotelCity")
    hotel_id = hotel.field("Hotel", "HotelID")
    serving = Index((city,), (name, hotel_id), (), hotel.path(["Hotel"]))
    planner = QueryPlanner(hotel, [serving])
    (plan,) = planner.plans_for(query)
    assert not any(isinstance(step, SortStep) for step in plan.steps)
    assert plan.lookup_steps[0].order_served


def test_order_by_falls_back_to_client_sort(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Hotel.HotelName")
    city = hotel.field("Hotel", "HotelCity")
    hotel_id = hotel.field("Hotel", "HotelID")
    name = hotel.field("Hotel", "HotelName")
    unordered = Index((city,), (hotel_id,), (name,),
                      hotel.path(["Hotel"]))
    planner = QueryPlanner(hotel, [unordered])
    (plan,) = planner.plans_for(query)
    assert any(isinstance(step, SortStep) for step in plan.steps)


def test_limit_step_appended(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "LIMIT 7")
    planner = _planner_for(hotel, query)
    for plan in planner.plans_for(query):
        assert isinstance(plan.steps[-1], LimitStep)
        assert plan.steps[-1].limit == 7


def test_select_fields_fetched_when_missing(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?")
    # key-only index cannot serve the select; needs the fetch index
    guest_id = hotel.field("Guest", "GuestID")
    key_only = Index((guest_id,), (), (), hotel.path(["Guest"]))
    fetch = entity_fetch_index(hotel.entity("Guest"))
    planner = QueryPlanner(hotel, [key_only, fetch])
    plans = planner.plans_for(query)
    assert any(plan.indexes == (fetch,) for plan in plans)


def test_larger_path_index_serves_shorter_segment(hotel):
    """An index over Item-like longer paths can answer a sub-path query
    when the trimmed edges are to-one (the paper's 'possibly larger'
    column families)."""
    query = parse_statement(
        hotel,
        "SELECT Reservation.ResStartDate FROM Reservation.Room "
        "WHERE Room.RoomID = ?")
    room_id = hotel.field("Room", "RoomID")
    res_id = hotel.field("Reservation", "ResID")
    start = hotel.field("Reservation", "ResStartDate")
    guest_id = hotel.field("Guest", "GuestID")
    # Room -> Reservation -> Guest: the trailing edge is to-one
    longer = Index((room_id,), (res_id, guest_id), (start,),
                   hotel.path(["Room", "Reservations", "Guest"]))
    planner = QueryPlanner(hotel, [longer])
    plans = planner.plans_for(query)
    assert plans
    assert plans[0].indexes == (longer,)


def test_larger_path_with_many_extension_not_used(hotel):
    """Trimming a to-many edge would duplicate rows, so such an index
    must not serve the shorter segment."""
    query = parse_statement(
        hotel,
        "SELECT Room.RoomNumber FROM Room.Hotel "
        "WHERE Hotel.HotelID = ?")
    hotel_id = hotel.field("Hotel", "HotelID")
    room_id = hotel.field("Room", "RoomID")
    number = hotel.field("Room", "RoomNumber")
    res_id = hotel.field("Reservation", "ResID")
    # Hotel -> Room -> Reservations: trailing edge is to-many
    longer = Index((hotel_id,), (room_id, res_id), (number,),
                   hotel.path(["Hotel", "Rooms", "Reservations"]))
    planner = QueryPlanner(hotel, [longer])
    assert planner.plans_for(query, require=False) == []


def test_client_sort_requires_order_fields_available(hotel):
    """A client-side sort is only planned when the ordering attributes
    are fetched; otherwise the plan is invalid and must be pruned."""
    query = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room.Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Room.RoomRate")
    city = hotel.field("Hotel", "HotelCity")
    room_id = hotel.field("Room", "RoomID")
    bare = Index((city,), (room_id,), (), hotel.path(["Hotel", "Rooms"]))
    assert QueryPlanner(hotel, [bare]).plans_for(query,
                                                 require=False) == []
    fetch = entity_fetch_index(hotel.entity("Room"))
    plans = QueryPlanner(hotel, [bare, fetch]).plans_for(query)
    for plan in plans:
        available = set()
        for step in plan.lookup_steps:
            available.update(f.id for f in step.index.all_fields)
        assert "Room.RoomRate" in available


def test_best_plan_uses_cost_model(hotel):
    from repro.cost import SimpleCostModel
    query = parse_statement(hotel, FIG3)
    planner = _planner_for(hotel, query)
    best = planner.best_plan(query, SimpleCostModel())
    others = planner.plans_for(query)
    cost_model = SimpleCostModel()
    for plan in others:
        cost_model.cost_plan(plan)
    assert best.cost == min(plan.cost for plan in others)


def test_filter_applied_when_attribute_stored(hotel):
    query = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room.Hotel "
        "WHERE Hotel.HotelCity = ? AND Room.RoomRate > ?")
    city = hotel.field("Hotel", "HotelCity")
    room_id = hotel.field("Room", "RoomID")
    rate = hotel.field("Room", "RoomRate")
    relaxed = Index((city,), (room_id,), (rate,),
                    hotel.path(["Hotel", "Rooms"]))
    planner = QueryPlanner(hotel, [relaxed])
    (plan,) = planner.plans_for(query)
    filters = [step for step in plan.steps
               if isinstance(step, FilterStep)]
    assert len(filters) == 1
    assert filters[0].conditions[0].field is rate
    # filtering reduces cardinality by the range selectivity
    lookup = plan.lookup_steps[0]
    assert filters[0].cardinality == pytest.approx(
        lookup.cardinality * 0.1)


def _chain_model(total):
    """A -> B to-one chain; ``total`` controls A's mandatory
    participation in the relationship."""
    from repro.model import Entity, IDField, Model, StringField
    model = Model("chain")
    first = Entity("A", count=10)
    first.add_field(IDField("AID"))
    first.add_field(StringField("AName", cardinality=10))
    second = Entity("B", count=10)
    second.add_field(IDField("BID"))
    second.add_field(StringField("BName", cardinality=10))
    model.add_entity(first)
    model.add_entity(second)
    model.add_relationship("A", "TheB", "B", "As", kind="many_to_one",
                           forward_total=total)
    return model.validate()


@pytest.mark.parametrize("total", [True, False])
def test_longer_path_index_requires_total_participation(total):
    """The §IV "possibly larger column families" rewrite — answering a
    query from an index over a longer path — is only sound when the
    trimmed to-one edge is total: under partial participation an A row
    with no B would silently vanish from the extended join."""
    from repro.model.paths import KeyPath
    from repro.workload import parse_statement
    model = _chain_model(total)
    query = parse_statement(
        model, "SELECT A.AName FROM A WHERE A.AName = ?name")
    first = model.entity("A")
    second = model.entity("B")
    index = Index([first["AName"]], [first.id_field, second.id_field],
                  [], KeyPath(first, [first["TheB"]]))
    planner = QueryPlanner(model, [index])
    plans = planner.plans_for(query, require=False)
    if total:
        assert plans, "a total to-one edge admits the longer-path index"
    else:
        assert not plans, \
            "a partial edge must not serve the shorter query"
