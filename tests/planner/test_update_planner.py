"""Unit tests for update (maintenance) planning (§VI-B)."""

import pytest

from repro.cost import SimpleCostModel
from repro.enumerator import CandidateEnumerator
from repro.exceptions import PlanningError
from repro.indexes import materialized_view_for
from repro.planner import QueryPlanner, UpdatePlanner
from repro.planner.steps import DeleteStep, InsertStep
from repro.workload import parse_statement

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def _planners(hotel, workload):
    pool = CandidateEnumerator(hotel).candidates(workload)
    query_planner = QueryPlanner(hotel, pool)
    return query_planner, UpdatePlanner(hotel, query_planner)


def test_one_plan_per_modified_index(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    update = hotel_full.statements["update_poi_description"]
    plans = update_planner.plans_for(update)
    assert plans
    keys = [plan.index.key for plan in plans]
    assert len(keys) == len(set(keys))
    for plan in plans:
        assert plan.update is update


def test_update_plan_steps_reflect_protocol(hotel, hotel_full):
    """The §VI-B protocol deletes old records and inserts new ones."""
    _, update_planner = _planners(hotel, hotel_full)
    update = hotel_full.statements["update_poi_description"]
    for plan in update_planner.plans_for(update):
        kinds = {type(step) for step in plan.update_steps}
        assert kinds == {DeleteStep, InsertStep}


def test_insert_plan_has_no_delete(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    insert = hotel_full.statements["make_reservation"]
    for plan in update_planner.plans_for(insert):
        kinds = [type(step) for step in plan.update_steps]
        assert kinds == [InsertStep]


def test_delete_plan_has_no_insert(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    delete = hotel_full.statements["delete_guest"]
    for plan in update_planner.plans_for(delete):
        kinds = [type(step) for step in plan.update_steps]
        assert kinds == [DeleteStep]


def test_support_plans_grouped_by_query(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    delete = hotel_full.statements["delete_guest"]
    view = materialized_view_for(parse_statement(hotel, FIG3))
    plans = [plan for plan in update_planner.plans_for(delete)
             if plan.index == view]
    assert plans
    grouped = plans[0].support_plans_by_query
    assert grouped
    for support, support_plans in grouped.items():
        assert support.is_support
        assert support_plans


def test_missing_support_index_raises_or_skips(hotel, hotel_full):
    view = materialized_view_for(parse_statement(hotel, FIG3))
    # a pool with only the view cannot answer its own support queries
    query_planner = QueryPlanner(hotel, [view])
    update_planner = UpdatePlanner(hotel, query_planner)
    update = hotel_full.statements["update_poi_description"]
    # POI description is not in the Fig 3 view: nothing modified, fine
    assert update_planner.plans_for(update) == []
    guest_update = parse_statement(
        hotel, "UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?")
    guest_update.label = "guest_update"
    with pytest.raises(PlanningError):
        update_planner.plans_for(guest_update)
    assert update_planner.plans_for(guest_update, require=False) == []


def test_update_cost_requires_cost_model(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    update = hotel_full.statements["update_poi_description"]
    plan = update_planner.plans_for(update)[0]
    with pytest.raises(ValueError):
        plan.update_cost
    SimpleCostModel().cost_update_plan(plan)
    assert plan.update_cost > 0
    assert plan.cost >= plan.update_cost


def test_plan_all_covers_all_updates(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    plans = update_planner.plan_all(hotel_full.updates)
    assert set(plans) == set(hotel_full.updates)


def test_max_support_plans_cap(hotel, hotel_full):
    pool = CandidateEnumerator(hotel).candidates(hotel_full)
    query_planner = QueryPlanner(hotel, pool)
    update_planner = UpdatePlanner(hotel, query_planner,
                                   max_support_plans=2)
    delete = hotel_full.statements["delete_guest"]
    for plan in update_planner.plans_for(delete):
        for plans in plan.support_plans_by_query.values():
            assert len(plans) <= 2


def test_describe_mentions_index(hotel, hotel_full):
    _, update_planner = _planners(hotel, hotel_full)
    update = hotel_full.statements["update_poi_description"]
    plan = update_planner.plans_for(update)[0]
    SimpleCostModel().cost_update_plan(plan)
    text = plan.describe()
    assert plan.index.key in text
