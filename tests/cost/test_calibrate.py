"""Tests for cost-model calibration against the store."""

import pytest

from repro.backend import LatencyModel, Store
from repro.cost import (
    CalibrationSample,
    calibrate_store,
    fit_cost_model,
    probe_store,
)
from repro.exceptions import ExecutionError


def test_sample_validation():
    with pytest.raises(ExecutionError):
        CalibrationSample("scan", 1, 1, 1, 1.0)
    sample = CalibrationSample("get", 1, 5, 32, 0.5)
    assert "get" in repr(sample)


def test_fit_requires_enough_samples():
    samples = [CalibrationSample("get", 1, 1, 8, 0.5)]
    with pytest.raises(ExecutionError):
        fit_cost_model(samples)


def test_probe_produces_all_kinds():
    samples = probe_store(Store())
    kinds = {sample.kind for sample in samples}
    assert kinds == {"get", "put", "delete"}
    assert all(sample.time_ms > 0 for sample in samples)


def test_calibration_recovers_simulator_constants():
    """The simulator's latency model is linear, so the fit must recover
    its per-row and per-byte constants (and the request overhead sum)."""
    latency = LatencyModel(get_base=0.7, row_scan=0.004,
                           byte_transfer=5e-5, put_base=0.3,
                           put_row=0.05, delete_base=0.3,
                           delete_row=0.04)
    store = Store(latency=latency)
    fitted = calibrate_store(store)
    assert fitted.request_cost + fitted.partition_cost \
        == pytest.approx(latency.get_base, rel=0.05)
    assert fitted.row_cost == pytest.approx(latency.row_scan, rel=0.05)
    assert fitted.row_byte_cost == pytest.approx(latency.byte_transfer,
                                                 rel=0.05)
    assert fitted.put_cost == pytest.approx(latency.put_row, rel=0.05)
    assert fitted.delete_row_cost == pytest.approx(latency.delete_row,
                                                   rel=0.05)


def test_partition_share_splits_overhead():
    store = Store()
    samples = probe_store(store)
    half = fit_cost_model(samples, partition_share=0.5)
    skewed = fit_cost_model(samples, partition_share=0.9)
    assert half.request_cost + half.partition_cost == pytest.approx(
        skewed.request_cost + skewed.partition_cost, rel=1e-6)
    assert skewed.partition_cost > half.partition_cost


def test_calibrated_model_preserves_schema_ordering():
    """Recommending with a calibrated model must still prefer the
    materialized view for a read-only workload (sanity: calibration
    produces usable constants, not degenerate zeros)."""
    from repro import Advisor
    from repro.demo import hotel_model, hotel_workload
    fitted = calibrate_store(Store())
    model = hotel_model()
    workload = hotel_workload(model, include_updates=False)
    recommendation = Advisor(model, cost_model=fitted).recommend(workload)
    assert recommendation.total_cost > 0
    for plan in recommendation.query_plans.values():
        assert len(plan.lookup_steps) == 1
