"""Tests for the HBase cost model and cross-backend recommendations."""


from repro import Advisor
from repro.cost import CassandraCostModel, HBaseCostModel
from repro.demo import hotel_model, hotel_workload
from repro.indexes import materialized_view_for
from repro.planner import QueryPlanner
from repro.workload import parse_statement


def test_hbase_constants_differ():
    cassandra = CassandraCostModel()
    hbase = HBaseCostModel()
    assert hbase.request_cost > cassandra.request_cost
    assert hbase.row_cost < cassandra.row_cost
    assert hbase.put_cost < cassandra.put_cost


def test_hbase_model_costs_plans(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?")
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    assert HBaseCostModel().cost_plan(plan) > 0


def test_backends_can_disagree_on_denormalization():
    """With cheaper writes and pricier requests, the HBase model
    tolerates at least as much denormalization as the Cassandra model
    for the same workload."""
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    workload.set_weight("update_poi_description", 50.0)
    cassandra = Advisor(model,
                        cost_model=CassandraCostModel()).recommend(workload)
    hbase = Advisor(model,
                    cost_model=HBaseCostModel()).recommend(workload)
    description = model.field("PointOfInterest", "POIDescription")
    copies_cassandra = sum(1 for index in cassandra.indexes
                           if index.contains_field(description))
    copies_hbase = sum(1 for index in hbase.indexes
                       if index.contains_field(description))
    assert copies_hbase >= copies_cassandra
    # both remain valid schemas for the workload
    assert set(cassandra.query_plans) == set(hbase.query_plans)


def test_hbase_prefers_fewer_gets():
    """A chain plan (many requests) is penalized more by the HBase
    model than by the Cassandra model, relative to a single get."""
    model = hotel_model()
    query = parse_statement(
        model,
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate")
    from repro.enumerator import CandidateEnumerator
    pool = CandidateEnumerator(model).enumerate_query(query)
    planner = QueryPlanner(model, pool)
    plans = planner.plans_for(query)
    cassandra, hbase = CassandraCostModel(), HBaseCostModel()
    single = [plan for plan in plans if len(plan.lookup_steps) == 1][0]
    chain = max(plans, key=lambda plan: len(plan.lookup_steps))
    ratio_cassandra = (cassandra.cost_plan(chain)
                       / cassandra.cost_plan(single))
    ratio_hbase = hbase.cost_plan(chain) / hbase.cost_plan(single)
    assert ratio_hbase > ratio_cassandra
