"""Calibration from replay traffic: ``fit_cost_model`` consuming the
flight recorder's captured samples must recover the simulator's latency
constants — closing the paper's calibrate-from-measurements loop with
real workload traffic instead of synthetic probes."""

import pytest

from repro import Advisor
from repro.backend import LatencyModel
from repro.cost import fit_cost_model
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.profile import profile_recommendation


@pytest.fixture(scope="module")
def replay_samples():
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    recommendation = Advisor(model).recommend(workload)
    _document, recorder = profile_recommendation(
        model, workload, recommendation, dataset, seed=1, requests=300)
    return recorder.calibration_samples()


def test_replay_captures_all_operation_kinds(replay_samples):
    kinds = {sample.kind for sample in replay_samples}
    assert kinds == {"get", "put", "delete"}
    assert all(sample.time_ms > 0 for sample in replay_samples)


def test_fit_from_replay_recovers_latency_constants(replay_samples):
    # the simulator is linear, so least squares over the replay's
    # (shape -> latency) samples must reproduce its constants; the
    # shape diversity comes from the workload itself (point gets,
    # multi-row scans, batched maintenance writes across column
    # families of different entry sizes)
    latency = LatencyModel()
    fitted = fit_cost_model(replay_samples)
    assert fitted.request_cost + fitted.partition_cost \
        == pytest.approx(latency.get_base, rel=0.01)
    assert fitted.row_cost == pytest.approx(latency.row_scan, rel=0.01)
    assert fitted.row_byte_cost \
        == pytest.approx(latency.byte_transfer, rel=0.01)
    assert fitted.put_cost == pytest.approx(latency.put_row, rel=0.01)
    assert fitted.delete_row_cost \
        == pytest.approx(latency.delete_row, rel=0.01)


def test_fitted_model_predicts_replay_latency(replay_samples):
    # cross-check: the fitted constants reproduce each get sample's
    # measured latency (the design is exact, so residuals vanish)
    fitted = fit_cost_model(replay_samples)
    overhead = fitted.request_cost + fitted.partition_cost
    for sample in replay_samples:
        if sample.kind != "get":
            continue
        predicted = (overhead * sample.requests
                     + fitted.row_cost * sample.rows
                     + fitted.row_byte_cost
                     * sample.rows * sample.row_bytes)
        assert predicted == pytest.approx(sample.time_ms, rel=0.01)
