"""Unit tests for the cost models."""

import pytest

from repro.cost import CassandraCostModel, CostModel, SimpleCostModel
from repro.indexes import entity_fetch_index, materialized_view_for
from repro.planner import QueryPlanner
from repro.planner.steps import (
    DeleteStep,
    FilterStep,
    InsertStep,
    LimitStep,
    SortStep,
)
from repro.workload import parse_statement
from repro.workload.conditions import Condition

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


@pytest.fixture()
def lookup_step(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    return plan.steps[0]


def test_base_model_is_abstract(lookup_step):
    with pytest.raises(NotImplementedError):
        CostModel().cost_step(lookup_step)


def test_unknown_step_type_rejected():
    class Strange:
        pass
    with pytest.raises(TypeError):
        SimpleCostModel().cost_step(Strange())


def test_cassandra_lookup_cost_components(hotel, lookup_step):
    model = CassandraCostModel(request_cost=1.0, partition_cost=0.5,
                               row_cost=0.1, row_byte_cost=0.0)
    cost = model.index_lookup_cost(lookup_step)
    expected = (lookup_step.bindings * 1.5
                + lookup_step.raw_rows * 0.1)
    assert cost == pytest.approx(expected)


def test_cassandra_cost_scales_with_rows(hotel, lookup_step):
    cheap = CassandraCostModel()
    base = cheap.index_lookup_cost(lookup_step)
    lookup_step.raw_rows *= 10
    assert cheap.index_lookup_cost(lookup_step) > base


def test_filter_and_sort_costs():
    model = CassandraCostModel(filter_row_cost=0.01, sort_row_cost=0.01)
    filter_step = FilterStep((), input_cardinality=100, cardinality=10)
    assert model.filter_cost(filter_step) == pytest.approx(1.0)
    sort_step = SortStep((), cardinality=8)
    assert model.sort_cost(sort_step) == pytest.approx(8 * 3 * 0.01)


def test_limit_step_is_free(hotel):
    model = CassandraCostModel()
    assert model.limit_cost(LimitStep(5, 100)) == 0.0


def test_write_step_costs(hotel):
    index = entity_fetch_index(hotel.entity("Guest"))
    model = CassandraCostModel(request_cost=0.0, put_cost=2.0,
                               delete_cost=1.0)
    assert model.insert_cost(InsertStep(index, 3)) == pytest.approx(6.0)
    assert model.delete_cost(DeleteStep(index, 3)) == pytest.approx(3.0)


def test_cost_plan_annotates_steps(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    total = CassandraCostModel().cost_plan(plan)
    assert total == pytest.approx(plan.cost)
    assert all(step.cost is not None for step in plan.steps)


def test_plan_cost_requires_annotation(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    with pytest.raises(ValueError):
        plan.cost


def test_simple_model_counts_requests(hotel):
    query = parse_statement(hotel, FIG3)
    view = materialized_view_for(query)
    planner = QueryPlanner(hotel, [view])
    (plan,) = planner.plans_for(query)
    assert SimpleCostModel().cost_plan(plan) == pytest.approx(1.0)


def test_simple_model_ignores_client_steps(hotel):
    model = SimpleCostModel()
    rate = hotel.field("Room", "RoomRate")
    assert model.filter_cost(
        FilterStep((Condition(rate, ">"),), 10, 1)) == 0.0
    assert model.sort_cost(SortStep((rate,), 10)) == 0.0


def test_costs_are_nonnegative_across_hotel_plans(hotel, hotel_queries):
    from repro.enumerator import CandidateEnumerator
    pool = CandidateEnumerator(hotel).candidates(hotel_queries)
    planner = QueryPlanner(hotel, pool)
    model = CassandraCostModel()
    for query in hotel_queries.queries:
        for plan in planner.plans_for(query):
            assert model.cost_plan(plan) > 0
            for step in plan.steps:
                assert step.cost >= 0
