"""Smoke tests: every example script runs end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script, argv):
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run(EXAMPLES / "quickstart.py", [])
    output = capsys.readouterr().out
    assert "Recommended schema" in output
    assert "Hotel.HotelCity" in output


def test_workload_tuning_runs(capsys):
    _run(EXAMPLES / "workload_tuning.py", [])
    output = capsys.readouterr().out
    assert "update weight" in output
    assert "1000" in output


def test_custom_application_runs(capsys):
    _run(EXAMPLES / "custom_application.py", [])
    output = capsys.readouterr().out
    assert "oracle agrees: True" in output
    assert "Simulated store time" in output


def test_schema_evolution_runs(capsys):
    _run(EXAMPLES / "schema_evolution.py", [])
    output = capsys.readouterr().out
    assert "Schema migration" in output
    assert "agrees with ground truth: True" in output


@pytest.mark.slow
def test_rubis_evaluation_runs(capsys):
    _run(EXAMPLES / "rubis_evaluation.py",
         ["--users", "400", "--iterations", "2"])
    output = capsys.readouterr().out
    assert "Weighted average response time" in output
    assert "NoSE" in output
