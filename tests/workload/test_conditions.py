"""Unit tests for predicate conditions."""

import pytest

from repro.workload.conditions import RANGE_SELECTIVITY, Condition


@pytest.fixture()
def rate(hotel):
    return hotel.field("Room", "RoomRate")


def test_operator_validation(rate):
    with pytest.raises(ValueError):
        Condition(rate, "<>")
    with pytest.raises(ValueError):
        Condition(rate, "BETWEEN")
    with pytest.raises(ValueError):
        Condition(rate, "IN")  # IN requires parameter names


def test_parameter_defaults_to_field_name(rate):
    assert Condition(rate, "=").parameter == "RoomRate"
    assert Condition(rate, "=", "custom").parameter == "custom"


def test_equality_and_range_flags(rate):
    assert Condition(rate, "=").is_equality
    assert not Condition(rate, "=").is_range
    for operator in (">", ">=", "<", "<="):
        condition = Condition(rate, operator)
        assert condition.is_range
        assert not condition.is_equality


def test_selectivity(rate):
    eq = Condition(rate, "=")
    assert eq.selectivity == pytest.approx(1.0 / rate.cardinality)
    assert Condition(rate, ">").selectivity == RANGE_SELECTIVITY


def test_membership_selectivity_scales_with_list_size(rate):
    membership = Condition(rate, "IN", ("a", "b", "c"))
    assert membership.cardinality == 3
    assert membership.selectivity == pytest.approx(
        3.0 / rate.cardinality)
    # a list longer than the domain cannot exceed certainty
    wide = Condition(rate, "IN",
                     tuple(f"p{i}" for i in range(rate.cardinality + 5)))
    assert wide.selectivity == 1.0


def test_inequality_selectivity_is_the_complement(rate):
    inequality = Condition(rate, "!=")
    assert inequality.selectivity == pytest.approx(
        1.0 - 1.0 / rate.cardinality)
    assert inequality.is_inequality
    assert not inequality.is_bindable


def test_bind_resolves_scalars_and_lists(rate):
    assert Condition(rate, "=", "p").bind({"p": 7}) == 7
    membership = Condition(rate, "IN", ("a", "b"))
    assert membership.bind({"a": 1, "b": 2}) == (1, 2)
    assert membership.matches(2, (1, 2))
    assert not membership.matches(3, (1, 2))


def test_matches_each_operator(rate):
    assert Condition(rate, "=").matches(5, 5)
    assert not Condition(rate, "=").matches(5, 6)
    assert Condition(rate, ">").matches(6, 5)
    assert not Condition(rate, ">").matches(5, 5)
    assert Condition(rate, ">=").matches(5, 5)
    assert Condition(rate, "<").matches(4, 5)
    assert Condition(rate, "<=").matches(5, 5)
    assert not Condition(rate, "<=").matches(6, 5)


def test_equality_and_hash(rate, hotel):
    assert Condition(rate, "=", "p") == Condition(rate, "=", "p")
    assert hash(Condition(rate, "=", "p")) == hash(Condition(rate, "=", "p"))
    assert Condition(rate, "=", "p") != Condition(rate, ">", "p")
    other = hotel.field("Room", "RoomNumber")
    assert Condition(rate, "=", "p") != Condition(other, "=", "p")


def test_str_shows_predicate(rate):
    assert str(Condition(rate, ">", "rate")) == "Room.RoomRate > ?rate"
