"""Unit tests for predicate conditions."""

import pytest

from repro.workload.conditions import RANGE_SELECTIVITY, Condition


@pytest.fixture()
def rate(hotel):
    return hotel.field("Room", "RoomRate")


def test_operator_validation(rate):
    with pytest.raises(ValueError):
        Condition(rate, "!=")
    with pytest.raises(ValueError):
        Condition(rate, "BETWEEN")


def test_parameter_defaults_to_field_name(rate):
    assert Condition(rate, "=").parameter == "RoomRate"
    assert Condition(rate, "=", "custom").parameter == "custom"


def test_equality_and_range_flags(rate):
    assert Condition(rate, "=").is_equality
    assert not Condition(rate, "=").is_range
    for operator in (">", ">=", "<", "<="):
        condition = Condition(rate, operator)
        assert condition.is_range
        assert not condition.is_equality


def test_selectivity(rate):
    eq = Condition(rate, "=")
    assert eq.selectivity == pytest.approx(1.0 / rate.cardinality)
    assert Condition(rate, ">").selectivity == RANGE_SELECTIVITY


def test_matches_each_operator(rate):
    assert Condition(rate, "=").matches(5, 5)
    assert not Condition(rate, "=").matches(5, 6)
    assert Condition(rate, ">").matches(6, 5)
    assert not Condition(rate, ">").matches(5, 5)
    assert Condition(rate, ">=").matches(5, 5)
    assert Condition(rate, "<").matches(4, 5)
    assert Condition(rate, "<=").matches(5, 5)
    assert not Condition(rate, "<=").matches(6, 5)


def test_equality_and_hash(rate, hotel):
    assert Condition(rate, "=", "p") == Condition(rate, "=", "p")
    assert hash(Condition(rate, "=", "p")) == hash(Condition(rate, "=", "p"))
    assert Condition(rate, "=", "p") != Condition(rate, ">", "p")
    other = hotel.field("Room", "RoomNumber")
    assert Condition(rate, "=", "p") != Condition(other, "=", "p")


def test_str_shows_predicate(rate):
    assert str(Condition(rate, ">", "rate")) == "Room.RoomRate > ?rate"
