"""Unit tests for statement IR invariants and statistics."""

import pytest

from repro.exceptions import ParseError
from repro.workload import parse_statement
from repro.workload.conditions import RANGE_SELECTIVITY, Condition
from repro.workload.statements import Delete, Insert, Query, Update

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def test_two_range_predicates_rejected(hotel):
    path = hotel.path(["Room"])
    rate = hotel.field("Room", "RoomRate")
    number = hotel.field("Room", "RoomNumber")
    with pytest.raises(ParseError):
        Query(path, [rate], [Condition(rate, ">"),
                             Condition(number, "<"),
                             Condition(hotel.field("Room", "RoomID"), "=")])


def test_condition_off_path_rejected(hotel):
    path = hotel.path(["Room"])
    with pytest.raises(ParseError):
        Query(path, [hotel.field("Room", "RoomRate")],
              [Condition(hotel.field("Guest", "GuestID"), "=")])


def test_duplicate_condition_rejected(hotel):
    path = hotel.path(["Room"])
    rid = hotel.field("Room", "RoomID")
    with pytest.raises(ParseError):
        Query(path, [hotel.field("Room", "RoomRate")],
              [Condition(rid, "=", "a"), Condition(rid, "=", "b")])


def test_query_requires_equality_predicate(hotel):
    path = hotel.path(["Room"])
    rate = hotel.field("Room", "RoomRate")
    with pytest.raises(ParseError):
        Query(path, [rate], [Condition(rate, ">")])


def test_query_requires_select(hotel):
    path = hotel.path(["Room"])
    with pytest.raises(ParseError):
        Query(path, [], [Condition(hotel.field("Room", "RoomID"), "=")])


def test_query_select_must_be_target_fields(hotel):
    path = hotel.path(["Room", "Hotel"])
    with pytest.raises(ParseError):
        Query(path, [hotel.field("Hotel", "HotelName")],
              [Condition(hotel.field("Room", "RoomID"), "=")])


def test_query_limit_positive(hotel):
    path = hotel.path(["Room"])
    with pytest.raises(ParseError):
        Query(path, [hotel.field("Room", "RoomRate")],
              [Condition(hotel.field("Room", "RoomID"), "=")], limit=0)


def test_given_fields_are_equality_fields(hotel):
    query = parse_statement(hotel, FIG3)
    assert [field.id for field in query.given_fields] == [
        "Hotel.HotelCity"]


def test_all_fields_includes_conditions_and_order(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel WHERE Hotel.HotelCity = ? "
        "ORDER BY Hotel.HotelState")
    names = {field.name for field in query.all_fields}
    assert names == {"HotelName", "HotelCity", "HotelState"}


def test_matching_rows_estimates(hotel):
    query = parse_statement(hotel, FIG3)
    city_cardinality = hotel.field("Hotel", "HotelCity").cardinality
    expected_join = (query.key_path.cardinality / city_cardinality
                     * RANGE_SELECTIVITY)
    assert query.matching_join_rows == pytest.approx(expected_join)
    expected_guests = (hotel.entity("Guest").count / city_cardinality
                       * RANGE_SELECTIVITY)
    assert query.matching_target_rows == pytest.approx(expected_guests)


def test_result_rows_honours_limit(hotel):
    query = parse_statement(
        hotel,
        "SELECT Room.RoomID FROM Room.Hotel "
        "WHERE Hotel.HotelCity = ? LIMIT 5")
    assert query.result_rows <= 5


def test_update_rejects_primary_key_assignment(hotel):
    path = hotel.path(["Room"])
    rid = hotel.field("Room", "RoomID")
    with pytest.raises(ParseError):
        Update(path, {rid: "x"}, [Condition(rid, "=")])


def test_update_requires_settings_and_where(hotel):
    path = hotel.path(["Room"])
    rid = hotel.field("Room", "RoomID")
    rate = hotel.field("Room", "RoomRate")
    with pytest.raises(ParseError):
        Update(path, {}, [Condition(rid, "=")])
    with pytest.raises(ParseError):
        Update(path, {rate: "r"}, [])


def test_delete_requires_where(hotel):
    with pytest.raises(ParseError):
        Delete(hotel.path(["Guest"]), [])


def test_insert_single_entity_only(hotel):
    path = hotel.path(["Guest", "Reservations"])
    with pytest.raises(ParseError):
        Insert(path, {})


def test_insert_rejects_foreign_settings(hotel):
    path = hotel.path(["Guest"])
    with pytest.raises(ParseError):
        Insert(path, {hotel.field("Room", "RoomRate"): "x"})


def test_connect_statement_structure(hotel):
    statement = parse_statement(
        hotel, "CONNECT Guest(?g) TO Reservations(?r)")
    assert statement.entity.name == "Guest"
    assert statement.relationship.entity.name == "Reservation"
    given = {field.id for field in statement.given_fields}
    assert given == {"Guest.GuestID", "Reservation.ResID"}


def test_statement_repr_and_str(hotel):
    query = parse_statement(hotel, FIG3)
    assert "SELECT" in repr(query)
    assert str(query) == FIG3
    bare = Query(hotel.path(["Guest"]),
                 [hotel.field("Guest", "GuestName")],
                 [Condition(hotel.field("Guest", "GuestID"), "=")])
    # statements without source text render via unparse()
    assert str(bare) == ("SELECT Guest.GuestName FROM Guest "
                         "WHERE Guest.GuestID = ?GuestID")
    assert "Query" in repr(bare)
