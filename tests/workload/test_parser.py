"""Unit tests for the statement parser."""

import pytest

from repro.exceptions import ParseError
from repro.workload import (
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Update,
    parse_statement,
)

FIG3 = ("SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate")


def test_fig3_query_parses(hotel):
    query = parse_statement(hotel, FIG3)
    assert isinstance(query, Query)
    assert [f.name for f in query.select] == ["GuestName", "GuestEmail"]
    assert str(query.key_path) == "Guest.Reservations.Room.Hotel"
    assert len(query.eq_conditions) == 1
    assert query.eq_conditions[0].field.id == "Hotel.HotelCity"
    assert query.eq_conditions[0].parameter == "city"
    assert query.range_condition.field.id == "Room.RoomRate"
    assert query.range_condition.operator == ">"


def test_entity_name_path_components(hotel):
    # Fig 3 writes the path with entity names; the model uses the
    # relationship name "Reservations"
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.Reservation.Room.Hotel.HotelCity = ?")
    assert str(query.key_path) == "Guest.Reservations.Room.Hotel"


def test_path_in_from_clause(hotel):
    query = parse_statement(
        hotel,
        "SELECT Room.RoomRate FROM Room.Hotel.PointsOfInterest "
        "WHERE Room.RoomNumber = ?floor "
        "AND PointOfInterest.POIID = ?id")
    assert str(query.key_path) == "Room.Hotel.PointsOfInterest"
    assert query.entity.name == "Room"


def test_star_select_expands_attributes(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.* FROM Guest "
                            "WHERE Guest.GuestID = ?")
    names = {field.name for field in query.select}
    assert names == {"GuestID", "GuestName", "GuestEmail"}


def test_order_by_and_limit(hotel):
    query = parse_statement(
        hotel,
        "SELECT Hotel.HotelName FROM Hotel "
        "WHERE Hotel.HotelCity = ? ORDER BY Hotel.HotelName LIMIT 10")
    assert [f.name for f in query.order_by] == ["HotelName"]
    assert query.limit == 10


def test_anonymous_parameters_use_field_name(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?")
    assert query.conditions[0].parameter == "GuestID"


def test_insert_with_connections(hotel):
    statement = parse_statement(
        hotel,
        "INSERT INTO Reservation SET ResID = ?, ResStartDate = ?start "
        "AND CONNECT TO Guest(?guest), Room(?room)")
    assert isinstance(statement, Insert)
    assert {f.name for f in statement.set_fields} >= {"ResID",
                                                      "ResStartDate"}
    assert [(k.name, p) for k, p in statement.connections] == [
        ("Guest", "guest"), ("Room", "room")]


def test_insert_adds_missing_primary_key(hotel):
    statement = parse_statement(
        hotel, "INSERT INTO Guest SET GuestName = ?name")
    id_field = hotel.field("Guest", "GuestID")
    assert id_field in statement.settings


def test_update_with_from_path(hotel):
    statement = parse_statement(
        hotel,
        "UPDATE Room FROM Room.Hotel SET RoomRate = ?rate "
        "WHERE Hotel.HotelID = ?hotel")
    assert isinstance(statement, Update)
    assert str(statement.key_path) == "Room.Hotel"
    assert [f.name for f in statement.set_fields] == ["RoomRate"]


def test_update_without_from_extends_path(hotel):
    statement = parse_statement(
        hotel,
        "UPDATE PointOfInterest SET POIName = ? "
        "WHERE PointOfInterest.POIID = ?")
    assert len(statement.key_path) == 1


def test_update_from_must_start_at_entity(hotel):
    with pytest.raises(ParseError):
        parse_statement(hotel,
                        "UPDATE Room FROM Hotel.Rooms SET RoomRate = ? "
                        "WHERE Room.RoomID = ?")


def test_delete(hotel):
    statement = parse_statement(
        hotel, "DELETE FROM Guest WHERE Guest.GuestID = ?guest")
    assert isinstance(statement, Delete)
    assert statement.entity.name == "Guest"


def test_connect_and_disconnect(hotel):
    connect = parse_statement(
        hotel, "CONNECT Guest(?guest) TO Reservations(?res)")
    assert isinstance(connect, Connect)
    assert not connect.removes_link
    assert connect.relationship.name == "Reservations"
    disconnect = parse_statement(
        hotel, "DISCONNECT Guest(?guest) FROM Reservations(?res)")
    assert isinstance(disconnect, Disconnect)
    assert disconnect.removes_link


def test_connect_by_entity_name(hotel):
    connect = parse_statement(
        hotel, "CONNECT Room(?room) TO Hotel(?hotel)")
    assert connect.relationship.entity.name == "Hotel"


@pytest.mark.parametrize("text", [
    "",
    "FROBNICATE Guest",
    "SELECT FROM Guest",
    "SELECT Guest.GuestName FROM Guest WHERE",
    "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID ~ ?",
    "SELECT Guest.GuestName FROM Guest WHERE Guest.Missing = ?",
    "SELECT Guest.GuestName FROM NoSuchEntity WHERE Guest.GuestID = ?",
    "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ? trailing",
    "SELECT Guest.GuestName FROM Guest "
    "WHERE Guest.Reservations.Missing.X = ?",
    "INSERT INTO Guest SET Reservations = ?",
    "CONNECT Guest(?) TO GuestName(?)",
])
def test_parse_errors(hotel, text):
    with pytest.raises(ParseError):
        parse_statement(hotel, text)


def test_unqualified_reference_rejected(hotel):
    with pytest.raises(ParseError):
        parse_statement(hotel,
                        "SELECT GuestName FROM Guest "
                        "WHERE Guest.GuestID = ?")


def test_divergent_path_rejected(hotel):
    with pytest.raises(ParseError):
        parse_statement(
            hotel,
            "SELECT Guest.GuestName FROM Guest.Reservations.Room "
            "WHERE Guest.Reservations.Guest.GuestID = ?")


def test_statement_label_round_trip(hotel):
    query = parse_statement(hotel,
                            "SELECT Guest.GuestName FROM Guest "
                            "WHERE Guest.GuestID = ?",
                            label="my_label")
    assert query.label == "my_label"
    assert query.text.startswith("SELECT")
