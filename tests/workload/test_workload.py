"""Unit tests for the weighted workload container and mixes."""

import pytest

from repro.exceptions import ParseError
from repro.workload import Workload


def _query_text(i=0):
    return f"SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?p{i}"


def test_add_statement_parses_text(hotel):
    workload = Workload(hotel)
    statement = workload.add_statement(_query_text(), weight=2.0,
                                       label="q")
    assert statement.label == "q"
    assert workload.weight(statement) == 2.0
    assert workload.weight("q") == 2.0


def test_default_labels_are_generated(hotel):
    workload = Workload(hotel)
    statement = workload.add_statement(_query_text())
    assert statement.label == "statement_0"


def test_duplicate_label_rejected(hotel):
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="q")
    with pytest.raises(ParseError):
        workload.add_statement(_query_text(1), label="q")


def test_non_statement_rejected(hotel):
    with pytest.raises(ParseError):
        Workload(hotel).add_statement(42)


def test_nonpositive_weight_rejected(hotel):
    with pytest.raises(ParseError):
        Workload(hotel).add_statement(_query_text(), weight=0.0)


def test_queries_and_updates_split(hotel, hotel_full):
    queries = {s.label for s in hotel_full.queries}
    updates = {s.label for s in hotel_full.updates}
    assert "guest_by_id" in queries
    assert "make_reservation" in updates
    assert not queries & updates


def test_mix_weights(hotel):
    workload = Workload(hotel, mix="read_heavy")
    workload.add_statement(_query_text(), label="q",
                           mixes={"read_heavy": 5.0, "write_heavy": 1.0})
    assert workload.weight("q") == 5.0
    other = workload.with_mix("write_heavy")
    assert other.weight("q") == 1.0
    # views share statements
    assert other.statements is workload.statements


def test_missing_mix_falls_back_to_default(hotel):
    workload = Workload(hotel)
    workload.add_statement(_query_text(), weight=3.0, label="q")
    assert workload.with_mix("exotic").weight("q") == 3.0


def test_zero_weight_statements_are_inactive(hotel):
    workload = Workload(hotel, mix="a")
    workload.add_statement(_query_text(), label="q",
                           mixes={"a": 1.0, "b": 0.0})
    assert len(workload.with_mix("b").queries) == 0
    assert len(workload.queries) == 1


def test_scale_weights_scales_updates_by_default(hotel_full):
    scaled = hotel_full.scale_weights(10)
    for update in hotel_full.updates:
        assert scaled.weight(update) == pytest.approx(
            10 * hotel_full.weight(update))
    for query in hotel_full.queries:
        assert scaled.weight(query) == pytest.approx(
            hotel_full.weight(query))


def test_scale_weights_custom_predicate(hotel_full):
    scaled = hotel_full.scale_weights(
        3, predicate=lambda s: s.label == "guest_by_id", mix="triple")
    assert scaled.active_mix == "triple"
    assert scaled.weight("guest_by_id") == pytest.approx(
        3 * hotel_full.weight("guest_by_id"))


def test_set_weight(hotel):
    workload = Workload(hotel)
    workload.add_statement(_query_text(), label="q")
    workload.set_weight("q", 9.0)
    assert workload.weight("q") == 9.0
    with pytest.raises(ParseError):
        workload.set_weight("missing", 1.0)


def test_iteration_and_len(hotel_full):
    assert len(hotel_full) == len(list(hotel_full))
    assert len(hotel_full.weighted_statements) == len(hotel_full)


def test_workload_error_is_a_parse_error(hotel):
    from repro.exceptions import WorkloadError
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="q")
    with pytest.raises(WorkloadError):
        workload.add_statement(_query_text(1), label="q")
    with pytest.raises(WorkloadError):
        workload.add_statement(_query_text(1), weight=-1.0)
    with pytest.raises(WorkloadError):
        workload.set_weight("missing", 1.0)
    assert issubclass(WorkloadError, ParseError)


def test_remove_statement(hotel):
    from repro.exceptions import WorkloadError
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="a", weight=2.0)
    workload.add_statement(_query_text(1), label="b")
    removed = workload.remove_statement("a")
    assert removed.label == "a"
    assert list(workload.statements) == ["b"]
    with pytest.raises(WorkloadError):
        workload.weight("a")
    with pytest.raises(WorkloadError):
        workload.remove_statement("a")


def test_clone_is_independent(hotel):
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="a", weight=2.0)
    workload.add_statement(_query_text(1), label="b", weight=3.0)
    copy = workload.clone()
    copy.remove_statement("a")
    copy.set_weight("b", 9.0)
    copy.add_statement(_query_text(2), label="c")
    assert list(workload.statements) == ["a", "b"]
    assert workload.weight("b") == 3.0
    assert list(copy.statements) == ["b", "c"]
    assert copy.weight("b") == 9.0
    # statements themselves are shared, not copied
    assert copy.statements["b"] is workload.statements["b"]


def test_readd_under_new_label_copies_instead_of_mutating(hotel):
    # clone() shares statement objects; re-adding one under a new
    # label must not relabel the shared object in place (that would
    # corrupt the source workload's label->statement map)
    workload = Workload(hotel)
    original = workload.add_statement(_query_text(0), label="a")
    copy = workload.clone()
    copy.remove_statement("a")
    renamed = copy.add_statement(original, weight=1.0, label="renamed")
    assert original.label == "a"
    assert renamed.label == "renamed"
    assert renamed is not original
    assert workload.statements["a"] is original
    assert workload.weight("a") == 1.0
    assert copy.statements["renamed"] is renamed


def test_readd_same_label_keeps_identity(hotel):
    # re-registering under the statement's own label needs no copy
    workload = Workload(hotel)
    original = workload.add_statement(_query_text(0), label="a")
    copy = workload.clone()
    copy.remove_statement("a")
    again = copy.add_statement(original, weight=2.0, label="a")
    assert again is original


def test_set_weight_validates_like_add_statement(hotel):
    from repro.exceptions import WorkloadError
    workload = Workload(hotel)
    workload.add_statement(_query_text(), label="q")
    for bad in (-1.0, float("nan"), float("inf"), float("-inf"),
                "heavy", None):
        with pytest.raises(WorkloadError):
            workload.set_weight("q", bad)
    assert workload.weight("q") == 1.0
    # zero stays allowed: statements may go idle in one mix
    workload.set_weight("q", 0.0, mix="idle")
    assert workload.with_mix("idle").weight("q") == 0.0


def test_add_statement_validates_mix_weights(hotel):
    from repro.exceptions import WorkloadError
    workload = Workload(hotel)
    with pytest.raises(WorkloadError):
        workload.add_statement(_query_text(), label="q",
                               mixes={"a": 1.0, "b": float("nan")})
    with pytest.raises(WorkloadError):
        workload.add_statement(_query_text(), label="q",
                               mixes={"a": -2.0})
    assert "q" not in workload.statements


def test_known_mixes_and_strict_lookup(hotel):
    from repro.exceptions import WorkloadError
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="q",
                           mixes={"bidding": 2.0, "browsing": 1.0})
    workload.add_statement(_query_text(1), label="r", weight=1.0)
    assert workload.known_mixes == ["bidding", "browsing", "default"]
    assert workload.validate_mix("bidding") == "bidding"
    with pytest.raises(WorkloadError, match="known mixes"):
        workload.validate_mix("biddng")
    with pytest.raises(WorkloadError):
        workload.with_mix("biddng", strict=True)
    with pytest.raises(WorkloadError):
        workload.weight("q", mix="biddng", strict=True)
    # non-strict lookup keeps the documented default-mix fallback
    assert workload.with_mix("biddng").weight("r") == 1.0
    strict_view = workload.with_mix("bidding", strict=True)
    assert strict_view.weight("q") == 2.0


def test_structural_diff_reports_churn(hotel):
    workload = Workload(hotel)
    workload.add_statement(_query_text(0), label="a")
    # structurally distinct from "a" (parameter names alone are not)
    workload.add_statement(
        "SELECT Guest.GuestEmail FROM Guest "
        "WHERE Guest.GuestID = ?gid", label="b")
    edited = workload.clone()
    edited.remove_statement("a")
    edited.add_statement(
        "SELECT Hotel.HotelName FROM Hotel "
        "WHERE Hotel.HotelCity = ?city", label="c")
    diff = workload.structural_diff(edited)
    assert diff.changed
    assert [s.label for s in diff.removed] == ["a"]
    assert [s.label for s in diff.added] == ["c"]
    assert [s.label for s in diff.unchanged] == ["b"]
    assert diff.summary() == "+1 -1 =1"
    same = workload.structural_diff(workload.clone())
    assert not same.changed
