"""The extended statement language: aggregation, IN, OR, != and the
positioned parse errors of the grammar rewrite."""

import pytest

from repro.exceptions import ParseError
from repro.workload import Aggregate, Query, parse_statement
from repro.workload.digest import statement_digest, statement_signature


# -- parse errors carry positions -----------------------------------------


def test_parse_error_carries_line_and_column(hotel):
    with pytest.raises(ParseError) as caught:
        parse_statement(hotel,
                        "SELECT Guest.Nope FROM Guest "
                        "WHERE Guest.GuestID = ?")
    error = caught.value
    assert error.line == 1
    assert error.column == 8
    rendered = str(error)
    assert "line 1, column 8" in rendered
    # caret annotation points at the offending reference
    caret_line = rendered.splitlines()[-1]
    assert caret_line.strip() == "^"
    assert caret_line.index("^") - rendered.splitlines()[-2].index(
        "SELECT") == 7


def test_unexpected_token_is_positioned(hotel):
    with pytest.raises(ParseError) as caught:
        parse_statement(hotel, "SELECT Guest.GuestName FROM")
    assert "end of statement" in str(caught.value)


def test_or_in_update_is_rejected_with_position(hotel):
    with pytest.raises(ParseError) as caught:
        parse_statement(hotel,
                        "UPDATE Guest SET GuestName = ?v "
                        "WHERE Guest.GuestID = ?a OR Guest.GuestName = ?b")
    assert "OR predicates are not supported" in str(caught.value)
    assert caught.value.column is not None


# -- aggregation ----------------------------------------------------------


def test_count_star_and_grouped_aggregates_parse(hotel):
    query = parse_statement(
        hotel,
        "SELECT Room.RoomNumber, COUNT(*), MIN(Room.RoomRate) "
        "FROM Room.Hotel WHERE Hotel.HotelCity = ?city "
        "GROUP BY Room.RoomNumber")
    assert query.is_aggregate
    assert [a.func for a in query.aggregates] == ["COUNT", "MIN"]
    assert query.aggregates[0].field is None
    assert [f.id for f in query.group_by] == ["Room.RoomNumber"]
    # the underlying select folds over distinct target rows
    assert "Room.RoomID" in {f.id for f in query.select}
    assert query.output_ids == ("Room.RoomNumber", "COUNT(*)",
                                "MIN(Room.RoomRate)")


def test_plain_select_fields_must_be_grouped(hotel):
    with pytest.raises(ParseError):
        parse_statement(
            hotel,
            "SELECT Room.RoomNumber, COUNT(*) FROM Room "
            "WHERE Room.RoomID = ?r")


def test_group_by_without_aggregates_is_rejected(hotel):
    with pytest.raises(ParseError):
        parse_statement(
            hotel,
            "SELECT Room.RoomNumber FROM Room "
            "WHERE Room.RoomID = ?r GROUP BY Room.RoomNumber")


def test_order_by_must_be_grouped(hotel):
    with pytest.raises(ParseError):
        parse_statement(
            hotel,
            "SELECT Room.RoomNumber, COUNT(*) FROM Room.Hotel "
            "WHERE Hotel.HotelCity = ?c GROUP BY Room.RoomNumber "
            "ORDER BY Room.RoomRate")


def test_sum_requires_a_field_argument(hotel):
    with pytest.raises(ParseError):
        parse_statement(hotel, "SELECT SUM(*) FROM Room "
                               "WHERE Room.RoomID = ?r")


def test_aggregate_helper_validation(hotel):
    room_rate = hotel.entities["Room"]["RoomRate"]
    assert Aggregate("AVG", room_rate).output_id == "AVG(Room.RoomRate)"
    with pytest.raises(ValueError):
        Aggregate("SUM")  # only COUNT may omit the field
    with pytest.raises(ValueError):
        Aggregate("MEDIAN", room_rate)


# -- IN lists -------------------------------------------------------------


def test_in_list_parses_with_named_and_anonymous_parameters(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID IN (?a, ?b, ?)")
    condition = query.conditions[0]
    assert condition.operator == "IN"
    assert condition.is_membership and condition.is_bindable
    assert len(condition.parameter) == 3
    assert condition.parameter[:2] == ("a", "b")
    assert condition.cardinality == 3
    assert condition.bind({"a": 1, "b": 2,
                           condition.parameter[2]: 3}) == (1, 2, 3)


def test_empty_in_list_is_rejected(hotel):
    with pytest.raises(ParseError):
        parse_statement(hotel, "SELECT Guest.GuestName FROM Guest "
                               "WHERE Guest.GuestID IN ()")


# -- != and <> ------------------------------------------------------------


def test_not_equal_spellings_normalize(hotel):
    for spelling in ("!=", "<>"):
        query = parse_statement(
            hotel,
            f"SELECT Guest.GuestName FROM Guest "
            f"WHERE Guest.GuestID = ?g AND Guest.GuestName {spelling} ?n")
        inequality = query.conditions[1]
        assert inequality.operator == "!="
        assert inequality.is_inequality
        assert not inequality.is_bindable and not inequality.is_range
        assert inequality.selectivity == pytest.approx(
            1.0 - 1.0 / inequality.field.cardinality)


def test_not_equal_affects_the_digest(hotel):
    eq = parse_statement(hotel, "SELECT Guest.GuestName FROM Guest "
                                "WHERE Guest.GuestID = ?g "
                                "AND Guest.GuestName = ?n")
    neq = parse_statement(hotel, "SELECT Guest.GuestName FROM Guest "
                                 "WHERE Guest.GuestID = ?g "
                                 "AND Guest.GuestName != ?n")
    assert statement_digest(eq) != statement_digest(neq)
    assert statement_signature(eq) != statement_signature(neq)


# -- disjunction ----------------------------------------------------------


def test_or_produces_disjunct_branches(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE Guest.GuestID = ?a OR Guest.GuestName = ?b")
    assert query.is_disjunctive
    assert len(query.disjuncts) == 2
    branches = query.branch_queries
    assert len(branches) == 2
    assert all(isinstance(branch, Query) for branch in branches)
    assert not branches[0].is_disjunctive
    assert branches[0].conditions[0].field.id == "Guest.GuestID"
    assert branches[1].conditions[0].field.id == "Guest.GuestName"


def test_parenthesized_and_distributes_over_or(hotel):
    query = parse_statement(
        hotel,
        "SELECT Guest.GuestName FROM Guest "
        "WHERE (Guest.GuestID = ?a OR Guest.GuestName = ?b) "
        "AND Guest.GuestEmail = ?c")
    assert len(query.disjuncts) == 2
    for branch in query.disjuncts:
        assert "Guest.GuestEmail" in {c.field.id for c in branch}


def test_every_or_branch_needs_a_bindable_predicate(hotel):
    with pytest.raises(ParseError):
        parse_statement(
            hotel,
            "SELECT Guest.GuestName FROM Guest "
            "WHERE Guest.GuestID = ?a OR Guest.GuestName > ?b")


# -- unparse round-trips --------------------------------------------------

ROUND_TRIPS = [
    "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
    "WHERE Guest.GuestID = ?gid",
    "SELECT Guest.GuestName FROM Guest "
    "WHERE Guest.GuestID IN (?a, ?b, ?c)",
    "SELECT Guest.GuestName FROM Guest "
    "WHERE (Guest.GuestID = ?a) OR (Guest.GuestName = ?b AND "
    "Guest.GuestEmail != ?c)",
    "SELECT Room.RoomNumber, COUNT(*), MAX(Room.RoomRate) "
    "FROM Room.Hotel WHERE Hotel.HotelCity = ?city "
    "GROUP BY Room.RoomNumber ORDER BY Room.RoomNumber LIMIT 5",
    "UPDATE Guest SET GuestEmail = ?mail "
    "WHERE Guest.GuestID IN (?a, ?b)",
    "DELETE FROM Reservation.Guest WHERE Guest.GuestID = ?gid",
    "INSERT INTO Guest SET GuestID = ?, GuestName = ?, GuestEmail = ? "
    "AND CONNECT TO Reservations(?res)",
    "CONNECT Reservation(?res) TO Room(?room)",
    "DISCONNECT Reservation(?res) FROM Room(?room)",
]


@pytest.mark.parametrize("text", ROUND_TRIPS)
def test_parse_unparse_parse_is_stable(hotel, text):
    first = parse_statement(hotel, text)
    rendered = first.unparse()
    second = parse_statement(hotel, rendered)
    assert statement_digest(first) == statement_digest(second)
    assert statement_signature(first) == statement_signature(second)
    assert second.unparse() == rendered
