"""Tests for JSON (de)serialization of models and workloads."""

import json

import pytest

from repro import Advisor
from repro.demo import hotel_model, hotel_workload
from repro.exceptions import ModelError, ParseError
from repro.io import (
    dump_application,
    load_application,
    model_from_dict,
    model_to_dict,
    workload_from_dict,
    workload_to_dict,
)


def test_model_round_trip():
    original = hotel_model()
    document = model_to_dict(original)
    rebuilt = model_from_dict(json.loads(json.dumps(document)))
    assert rebuilt.describe() == original.describe()
    assert rebuilt.relationship_count == original.relationship_count
    for name, entity in original.entities.items():
        assert rebuilt.entity(name).count == entity.count
        for field in entity.fields.values():
            twin = rebuilt.entity(name)[field.name]
            assert type(twin) is type(field)
            assert twin.size == field.size
            assert twin.cardinality == field.cardinality


def test_workload_round_trip():
    model = hotel_model()
    original = hotel_workload(model, include_updates=True)
    document = workload_to_dict(original)
    rebuilt = workload_from_dict(model, json.loads(json.dumps(document)))
    assert set(rebuilt.statements) == set(original.statements)
    for label in original.statements:
        assert rebuilt.weight(label) == original.weight(label)
        assert rebuilt.statements[label].text \
            == original.statements[label].text


def test_mixes_survive_round_trip():
    from repro.rubis import rubis_model, rubis_workload
    model = rubis_model(users=500)
    original = rubis_workload(model, mix="bidding")
    rebuilt = workload_from_dict(model, workload_to_dict(original))
    assert rebuilt.weight("sic_items") == original.weight("sic_items")
    browsing = rebuilt.with_mix("browsing")
    assert browsing.weight("sb_insert") == 0.0


def test_application_file_round_trip(tmp_path):
    model = hotel_model()
    workload = hotel_workload(model, include_updates=False)
    path = tmp_path / "hotel.json"
    dump_application(model, workload, path)
    loaded_model, loaded_workload = load_application(path)
    # the loaded application must drive the advisor to the same schema
    original = Advisor(model).recommend(workload)
    reloaded = Advisor(loaded_model).recommend(loaded_workload)
    assert {i.key for i in original.indexes} \
        == {i.key for i in reloaded.indexes}
    assert reloaded.total_cost == pytest.approx(original.total_cost)


def test_model_document_errors():
    with pytest.raises(ModelError):
        model_from_dict({"entities": [{"name": "A", "id": "AID",
                                       "fields": [{"name": "x",
                                                   "type": "blob"}]}]})
    with pytest.raises(ModelError):
        model_from_dict({"name": "m"})


def test_workload_document_errors():
    model = hotel_model()
    with pytest.raises(ParseError):
        workload_from_dict(model, {})
    with pytest.raises(ParseError):
        workload_from_dict(model, {"statements": [{"weight": 1.0}]})


def test_programmatic_statement_serializes_via_unparse():
    # a statement built from the IR has no source text; serialization
    # falls back to the grammar's unparse and must round-trip
    from repro import Workload
    from repro.workload.conditions import Condition
    from repro.workload.digest import statement_digest
    from repro.workload.statements import Query
    model = hotel_model()
    workload = Workload(model)
    guest = model.entity("Guest")
    query = Query(model.path(["Guest"]), [guest["GuestName"]],
                  [Condition(guest["GuestID"], "=")])
    workload.add_statement(query, label="programmatic")
    document = workload_to_dict(workload)
    rebuilt = workload_from_dict(model, document)
    assert statement_digest(rebuilt.statements["programmatic"]) \
        == statement_digest(query)


def test_cli_json_loading(tmp_path, capsys):
    from repro.cli import main
    model = hotel_model()
    workload = hotel_workload(model, include_updates=False)
    path = tmp_path / "app.json"
    dump_application(model, workload, path)
    assert main(["--json", str(path), "--cost-model", "simple"]) == 0
    assert "Recommended schema" in capsys.readouterr().out


def test_relationship_totality_round_trips():
    from repro.model import Entity, IDField, Model, StringField
    model = Model("tot")
    first = Entity("A", count=5)
    first.add_field(IDField("AID"))
    first.add_field(StringField("AName"))
    second = Entity("B", count=5)
    second.add_field(IDField("BID"))
    second.add_field(StringField("BName"))
    model.add_entity(first)
    model.add_entity(second)
    model.add_relationship("A", "TheB", "B", "As", kind="many_to_one",
                           forward_total=False, reverse_total=True)
    model.validate()
    document = model_to_dict(model)
    spec = document["relationships"][0]
    # totality is the default; only partial directions are written out
    assert spec["forward_total"] is False
    assert "reverse_total" not in spec
    rebuilt = model_from_dict(json.loads(json.dumps(document)))
    key = rebuilt.entity("A")["TheB"]
    assert key.total is False
    assert key.reverse.total is True


def test_total_by_default_round_trips():
    original = hotel_model()
    document = model_to_dict(original)
    for spec in document["relationships"]:
        assert "forward_total" not in spec
        assert "reverse_total" not in spec
    rebuilt = model_from_dict(json.loads(json.dumps(document)))
    for entity in rebuilt.entities.values():
        for key in entity.foreign_keys:
            assert key.total is True
