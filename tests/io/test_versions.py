"""Document version checks on every io loader."""

import json

import pytest

from repro.io import (
    dump_monitor,
    load_explain,
    load_monitor,
    load_profile,
    load_run_report,
)


def _write(path, document):
    path.write_text(json.dumps(document))
    return str(path)


def test_load_explain_rejects_unknown_version(tmp_path):
    path = _write(tmp_path / "bad.json",
                  {"format": "nose-explain/99", "indexes": []})
    with pytest.raises(ValueError) as caught:
        load_explain(path)
    message = str(caught.value)
    assert "nose-explain/99" in message
    assert "nose-explain/1" in message


def test_load_explain_accepts_current_and_legacy(tmp_path):
    current = _write(tmp_path / "current.json",
                     {"format": "nose-explain/1", "indexes": []})
    assert load_explain(current)["format"] == "nose-explain/1"
    # documents written before the tag existed still load
    legacy = _write(tmp_path / "legacy.json", {"indexes": []})
    assert load_explain(legacy) == {"indexes": []}


def test_load_profile_rejects_unknown_version(tmp_path):
    path = _write(tmp_path / "bad.json",
                  {"format": "nose-profile/7", "statements": {}})
    with pytest.raises(ValueError) as caught:
        load_profile(path)
    assert "nose-profile/7" in str(caught.value)
    assert "nose-profile/1" in str(caught.value)


def test_load_run_report_rejects_unknown_version(tmp_path):
    path = _write(tmp_path / "bad.json",
                  {"format": "nose-run-report/2", "meta": {},
                   "spans": [], "metrics": {}})
    with pytest.raises(ValueError) as caught:
        load_run_report(path)
    assert "nose-run-report/2" in str(caught.value)
    assert "nose-run-report/1" in str(caught.value)


def test_load_run_report_accepts_legacy_untagged(tmp_path):
    path = _write(tmp_path / "legacy.json",
                  {"meta": {"enabled": True}, "spans": [],
                   "metrics": {}})
    report = load_run_report(path)
    assert report.meta["enabled"] is True


def test_load_monitor_requires_format(tmp_path):
    path = _write(tmp_path / "untagged.json", {"ingest": {}})
    with pytest.raises(ValueError) as caught:
        load_monitor(path)
    assert "nose-monitor/1" in str(caught.value)


def test_load_monitor_rejects_unknown_version(tmp_path):
    path = _write(tmp_path / "bad.json",
                  {"format": "nose-monitor/3"})
    with pytest.raises(ValueError) as caught:
        load_monitor(path)
    assert "nose-monitor/3" in str(caught.value)
    assert "nose-monitor/1" in str(caught.value)


def test_monitor_round_trip_is_byte_stable(tmp_path):
    document = {"format": "nose-monitor/1",
                "ingest": {"requests": 3, "clock": 3.0},
                "estimates": {"q1": {"weight": 1.5}}}
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    dump_monitor(document, str(first))
    reloaded = load_monitor(str(first))
    assert reloaded == document
    dump_monitor(reloaded, str(second))
    assert first.read_bytes() == second.read_bytes()
