"""Tests for schema migration planning and execution."""

import pytest

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.tools import execute_migration, plan_migration


@pytest.fixture(scope="module")
def drifted():
    """Two recommendations for the same model under drifting weights."""
    model = hotel_model(scale=0.02)
    read_heavy = hotel_workload(model, include_updates=True)
    write_heavy = read_heavy.scale_weights(100, mix="writes")
    advisor = Advisor(model)
    before = advisor.recommend(read_heavy)
    after = advisor.recommend(write_heavy)
    return model, read_heavy, write_heavy, before, after


def test_migration_diff_is_consistent(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(before, after)
    created = {index.key for index in migration.create}
    dropped = {index.key for index in migration.drop}
    kept = {index.key for index in migration.keep}
    assert created | kept == {index.key for index in after.indexes}
    assert dropped | kept == {index.key for index in before.indexes}
    assert not created & dropped
    assert not created & kept


def test_self_migration_is_noop(drifted):
    _model, _rw, _ww, before, _after = drifted
    migration = plan_migration(before, before)
    assert migration.is_noop
    assert migration.rows_to_load == 0


def test_migration_estimates(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(before, after)
    assert migration.rows_to_load == pytest.approx(
        sum(index.entries for index in migration.create))
    assert migration.bytes_to_load >= 0
    text = migration.describe()
    for index in migration.create:
        assert index.key in text


def test_migration_accepts_raw_index_lists(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(list(before.indexes),
                               list(after.indexes))
    assert {index.key for index in migration.keep} \
        == {index.key for index in plan_migration(before, after).keep}


def test_execute_migration_moves_store_to_target(drifted):
    model, read_heavy, write_heavy, before, after = drifted
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    engine = ExecutionEngine(model, before, dataset)
    engine.load()
    migration = plan_migration(before, after)
    loaded = execute_migration(engine.store, dataset, migration)
    if migration.create:
        assert loaded > 0
    # the store now serves the new recommendation's plans correctly
    new_engine = ExecutionEngine(model, after, dataset,
                                 store=engine.store)
    for query in write_heavy.queries:
        params = {"guest": 3, "hotel": 0, "city": "city-1",
                  "rate": 100.0, "state": "S0"}
        rows = new_engine.execute_query(query, params)
        got = {tuple(row[f.id] for f in query.select) for row in rows}
        assert got == dataset.evaluate_query(query, params)
    # dropped column families are gone
    for index in migration.drop:
        assert index.key not in engine.store
