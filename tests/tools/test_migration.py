"""Tests for schema migration planning and execution."""

import pytest

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.tools import execute_migration, plan_migration


@pytest.fixture(scope="module")
def drifted():
    """Two recommendations for the same model under drifting weights."""
    model = hotel_model(scale=0.02)
    read_heavy = hotel_workload(model, include_updates=True)
    write_heavy = read_heavy.scale_weights(100, mix="writes")
    advisor = Advisor(model)
    before = advisor.recommend(read_heavy)
    after = advisor.recommend(write_heavy)
    return model, read_heavy, write_heavy, before, after


def test_migration_diff_is_consistent(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(before, after)
    created = {index.key for index in migration.create}
    dropped = {index.key for index in migration.drop}
    kept = {index.key for index in migration.keep}
    assert created | kept == {index.key for index in after.indexes}
    assert dropped | kept == {index.key for index in before.indexes}
    assert not created & dropped
    assert not created & kept


def test_self_migration_is_noop(drifted):
    _model, _rw, _ww, before, _after = drifted
    migration = plan_migration(before, before)
    assert migration.is_noop
    assert migration.rows_to_load == 0


def test_migration_estimates(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(before, after)
    assert migration.rows_to_load == pytest.approx(
        sum(index.entries for index in migration.create))
    assert migration.bytes_to_load >= 0
    text = migration.describe()
    for index in migration.create:
        assert index.key in text


def test_migration_accepts_raw_index_lists(drifted):
    _model, _rw, _ww, before, after = drifted
    migration = plan_migration(list(before.indexes),
                               list(after.indexes))
    assert {index.key for index in migration.keep} \
        == {index.key for index in plan_migration(before, after).keep}


def test_execute_migration_moves_store_to_target(drifted):
    model, read_heavy, write_heavy, before, after = drifted
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    engine = ExecutionEngine(model, before, dataset)
    engine.load()
    migration = plan_migration(before, after)
    loaded = execute_migration(engine.store, dataset, migration)
    if migration.create:
        assert loaded > 0
    # the store now serves the new recommendation's plans correctly
    new_engine = ExecutionEngine(model, after, dataset,
                                 store=engine.store)
    for query in write_heavy.queries:
        params = {"guest": 3, "hotel": 0, "city": "city-1",
                  "rate": 100.0, "state": "S0"}
        rows = new_engine.execute_query(query, params)
        got = {tuple(row[f.id] for f in query.select) for row in rows}
        assert got == dataset.evaluate_query(query, params)
    # dropped column families are gone
    for index in migration.drop:
        assert index.key not in engine.store


def test_window_schedule_migrations_round_trip():
    """Walking a windowed schedule through ``execute_migration`` must
    leave the store byte-identical to re-materializing each window's
    schema from the dataset — checked by the differential oracle's
    store sweep after every transition."""
    from repro.backend.dataset import materialize_rows
    from repro.backend.store import Store
    from repro.demo.hotel import hotel_dataset as build_dataset
    from repro.verify.runner import DifferentialRunner
    from repro.windows import WindowSchedule, recommend_windows

    class PreloadedEngine(ExecutionEngine):
        # the store under test was populated by the migrations; the
        # oracle must not reload it from scratch
        def load(self):
            return 0

    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    workload.scale_weights(50, mix="writes")
    dataset = build_dataset(model, seed=7)
    dataset.sync_counts()
    advisor = Advisor(model)
    schedule = WindowSchedule([("default", 400.0), ("writes", 400.0),
                               ("default", 400.0)])
    windowed = recommend_windows(advisor, workload, schedule)

    store = Store()
    previous = ()
    for result, window in zip(windowed.windows, schedule):
        migration = plan_migration(previous, result.indexes)
        execute_migration(store, dataset, migration)
        previous = result.indexes
        # the store holds exactly this window's schema, nothing stale
        assert sorted(store.column_families) == sorted(result.keys)
        recommendation = advisor.plan_for_schema(
            workload.with_mix(window.mix), result.indexes)
        runner = DifferentialRunner(
            model, recommendation, dataset,
            engine_factory=lambda m, r, d, **kw: PreloadedEngine(
                m, r, d, store=store, **kw))
        assert runner.sweep() == []
        assert runner.ok

    # and the final store is byte-identical to a cold materialization
    fresh = Store()
    for index in windowed.windows[-1].indexes:
        fresh.create(index).put_many(materialize_rows(dataset, index),
                                     charge=False)
    assert {key: cf._partitions
            for key, cf in store.column_families.items()} \
        == {key: cf._partitions
            for key, cf in fresh.column_families.items()}
