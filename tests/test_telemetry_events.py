"""Telemetry events and wall-clock span timestamps (PR 8 additions)."""

import pytest

from repro import telemetry
from repro.telemetry import (
    RUN_REPORT_FORMAT,
    RunReport,
    Telemetry,
    span_from_record,
)


# -- span started_at ----------------------------------------------------------


def test_span_records_wall_clock_start():
    sink = Telemetry()
    with sink.span("stage") as span:
        pass
    assert span.started_at is not None
    # epoch seconds, not a monotonic counter
    assert span.started_at > 1e9
    record = span.as_dict()
    assert record["started_at"] == round(span.started_at, 3)


def test_root_span_has_started_at():
    sink = Telemetry()
    assert sink.tracer.root.started_at is not None


def test_span_from_record_round_trips_started_at():
    sink = Telemetry()
    with sink.span("stage"):
        pass
    record = sink.tracer.root.children[0].as_dict()
    rebuilt = span_from_record(record)
    assert rebuilt.started_at == record["started_at"]
    assert rebuilt.as_dict()["started_at"] == record["started_at"]


def test_unstarted_span_omits_started_at():
    record = telemetry.Span("never-opened").as_dict()
    assert "started_at" not in record
    assert span_from_record(record).started_at is None


# -- the event log ------------------------------------------------------------


def test_event_records_name_times_and_sorted_attributes():
    sink = Telemetry()
    sink.event("monitor.weight_alert", js=0.3, b=2, a=1)
    assert len(sink.events) == 1
    event = sink.events[0]
    assert event["name"] == "monitor.weight_alert"
    assert event["seconds"] >= 0.0
    assert event["time"] > 1e9
    assert list(event["attributes"]) == ["a", "b", "js"]


def test_event_without_attributes_has_no_attributes_key():
    sink = Telemetry()
    sink.event("phase.start")
    assert "attributes" not in sink.events[0]


def test_event_log_caps_and_counts_drops():
    sink = Telemetry()
    sink.MAX_EVENTS = 5
    for number in range(8):
        sink.event(f"e{number}")
    assert len(sink.events) == 5
    assert sink._events_dropped == 3
    report = sink.report()
    assert report.meta["events_dropped"] == 3


def test_merge_snapshot_folds_worker_events_with_cap():
    sink = Telemetry()
    sink.MAX_EVENTS = 3
    sink.event("local")
    sink.merge_snapshot({"events": [
        {"name": "worker.a", "seconds": 0.1},
        {"name": "worker.b", "seconds": 0.2},
        {"name": "worker.c", "seconds": 0.3},
    ]})
    assert [event["name"] for event in sink.events] \
        == ["local", "worker.a", "worker.b"]
    assert sink._events_dropped == 1


def test_null_telemetry_event_is_a_no_op():
    telemetry.NULL.event("anything", detail=1)  # must not raise
    assert telemetry.NULL.enabled is False


def test_kill_switch_mutes_events(monkeypatch):
    monkeypatch.setenv("NOSE_TELEMETRY", "0")
    with telemetry.activate() as sink:
        telemetry.current().event("muted")
        assert not sink.enabled
        assert not getattr(sink, "events", ())


# -- events in run reports ----------------------------------------------------


def test_report_carries_events_and_format():
    sink = Telemetry()
    sink.event("monitor.weight_alert", js=0.25)
    report = sink.report()
    document = report.as_dict()
    assert document["format"] == RUN_REPORT_FORMAT
    assert document["events"][0]["name"] == "monitor.weight_alert"


def test_report_without_events_omits_the_section():
    assert "events" not in Telemetry().report().as_dict()


def test_run_report_from_dict_round_trips_events():
    sink = Telemetry()
    sink.event("phase", step=2)
    document = sink.report().as_dict()
    rebuilt = RunReport.from_dict(document)
    assert rebuilt.events == document["events"]
    assert rebuilt.as_dict()["events"] == document["events"]


def test_render_run_report_lists_events():
    sink = Telemetry()
    sink.event("monitor.weight_alert", js=0.31)
    rendered = sink.report().render()
    assert "events (1):" in rendered
    assert "monitor.weight_alert" in rendered
    assert "js=0.31" in rendered


def test_activated_events_reach_the_current_sink():
    with telemetry.activate() as sink:
        if not sink.enabled:
            pytest.skip("telemetry kill-switch set")
        telemetry.current().event("observed", source="test")
        assert sink.events[0]["name"] == "observed"
