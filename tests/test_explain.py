"""Tests for decision provenance, ledgers, explain documents and diffs."""

import json

import pytest

from repro.advisor import Advisor
from repro.cost import SimpleCostModel
from repro.demo import hotel_model, hotel_workload
from repro.exceptions import NoseError
from repro.explain import (
    EXPLAIN_FORMAT,
    INDEX_STATUSES,
    PRUNE_RULES,
    RULES,
    IndexProvenance,
    ProvenanceRecorder,
    diff_recommendations,
    explain_document,
    prune_entry,
    prune_record,
    source_label,
)
from repro.io import dump_explain, load_explain
from repro.reporting import diff_report, explain_report


@pytest.fixture(scope="module")
def hotel():
    model = hotel_model()
    return model, hotel_workload(model)


@pytest.fixture(scope="module")
def recommendation(hotel):
    model, workload = hotel
    advisor = Advisor(model, cost_model=SimpleCostModel())
    return advisor.recommend(workload)


@pytest.fixture(scope="module")
def document(recommendation):
    return explain_document(recommendation)


# -- provenance recorder -------------------------------------------------------


class _FakeIndex:
    def __init__(self, key):
        self.key = key


def test_recorder_merges_records_per_index_key():
    recorder = ProvenanceRecorder()
    index = _FakeIndex("i1")
    recorder.record(index, "materialize", source="q1")
    recorder.record(index, "order-relax", source="q2")
    recorder.record(index, "materialize", source="q1")
    record = recorder.get("i1")
    assert record.rules == ["materialize", "order-relax"]
    assert sorted(record.sources) == ["q1", "q2"]
    assert len(recorder) == 1
    assert recorder.ops == 3


def test_recorder_rejects_unknown_rule():
    recorder = ProvenanceRecorder()
    with pytest.raises(NoseError):
        recorder.record(_FakeIndex("i1"), "not-a-rule")


def test_chain_walks_combiner_parents():
    recorder = ProvenanceRecorder()
    left, right = _FakeIndex("iL"), _FakeIndex("iR")
    merged = _FakeIndex("iM")
    recorder.record(left, "materialize", source="q1")
    recorder.record(right, "prefix-split", source="q2")
    recorder.record(merged, "combiner-merge", parents=("iL", "iR"))
    chain = recorder.chain("iM")
    assert [record["index"] for record in chain] == ["iM", "iL", "iR"]
    assert recorder.terminates_at_statement("iM")


def test_chain_of_unknown_index_is_empty():
    recorder = ProvenanceRecorder()
    assert recorder.chain("nope") == []
    assert not recorder.terminates_at_statement("nope")


def test_index_provenance_as_dict_is_sorted():
    provenance = IndexProvenance("i1")
    provenance.add("materialize", "q2", ())
    provenance.add("order-relax", "q1", ("ib", "ia"))
    record = provenance.as_dict()
    assert record["sources"] == ["q1", "q2"]
    assert record["parents"] == ["ia", "ib"]


def test_source_label_maps_support_queries_to_their_update():
    class Update:
        label = "u1"

    class Support:
        is_support = True
        update = Update()
        label = "u1_support_0"

    class Plain:
        label = "q1"

    assert source_label(Support()) == "u1"
    assert source_label(Plain()) == "q1"


# -- ledgers -------------------------------------------------------------------


class _FakePlan:
    def __init__(self, signature):
        self.signature = signature


def test_prune_entry_and_record_shapes():
    entry = prune_entry(_FakePlan("L:a"), "duplicate-cfset",
                        dominated_by=_FakePlan("L:b"))
    assert entry == {"plan": "L:a", "rule": "duplicate-cfset",
                     "dominated_by": "L:b"}
    record = prune_record("q1", considered=3, kept=1, removed=[
        entry, prune_entry(_FakePlan("L:c"), "cap")])
    assert record["statement"] == "q1"
    assert record["considered"] == 3
    assert record["kept"] == 1
    assert record["removed_by_rule"] == {"duplicate-cfset": 1, "cap": 1}


def test_prune_entry_rejects_unknown_rule():
    with pytest.raises(NoseError):
        prune_entry(_FakePlan("L:a"), "vibes")


def test_known_rule_vocabularies():
    assert "combiner-merge" in RULES
    assert "cap" in PRUNE_RULES
    assert set(INDEX_STATUSES) == {"chosen", "selected-unused",
                                   "rejected"}


def test_solver_ledger_attached_with_statuses(recommendation):
    ledger = recommendation.ledger
    assert ledger is not None
    chosen = {index.key for index in recommendation.indexes}
    for key, entry in ledger["indexes"].items():
        assert entry["status"] in INDEX_STATUSES
        if key in chosen:
            assert entry["status"] == "chosen"
        else:
            assert entry["status"] != "chosen"
    assert any(entry["status"] == "rejected"
               for entry in ledger["indexes"].values())
    # every rejection carries a reason; no space limit -> cost
    for entry in ledger["indexes"].values():
        if entry["status"] == "rejected":
            assert entry["reason"] == "cost"


def test_solver_ledger_statement_accounting(recommendation):
    statements = recommendation.ledger["statements"]
    for query, plan in recommendation.query_plans.items():
        row = statements[query.label]
        assert row["chosen_signature"] == plan.signature
        assert row["chosen_cost"] == pytest.approx(plan.cost)
        assert row["alternatives_in_solver"] >= 1
        if row["best_rejected_cost"] is not None:
            assert row["alternatives_in_solver"] > 1


# -- the explain document ------------------------------------------------------


def test_document_is_superset_of_as_dict(recommendation, document):
    plain = recommendation.as_dict()
    assert document["format"] == EXPLAIN_FORMAT
    assert document["total_cost"] == plain["total_cost"]
    assert {entry["key"] for entry in document["indexes"]} \
        == {entry["key"] for entry in plain["indexes"]}
    assert set(document["query_plans"]) == set(plain["query_plans"])
    assert set(document["update_plans"]) == set(plain["update_plans"])


def test_every_index_has_provenance_terminating_at_statement(
        hotel, recommendation, document):
    _, workload = hotel
    labels = set(workload.statements)
    for entry in document["indexes"]:
        chain = entry["provenance"]
        assert chain, f"no provenance for {entry['key']}"
        sources = {source for record in chain
                   for source in record["sources"]}
        assert sources & labels, \
            f"{entry['key']} does not terminate at a workload statement"


def test_document_statements_have_plans_and_funnel(document):
    statements = document["statements"]
    queries = {label: record for label, record in statements.items()
               if record["kind"] == "query"}
    assert queries
    for record in queries.values():
        assert record["weighted_cost"] == pytest.approx(
            record["weight"] * record["cost"])
        steps = record["plan"]["steps"]
        assert steps
        for step in steps:
            assert "op" in step and "cost" in step
            assert step["terms"]
        assert record["alternatives_enumerated"] \
            >= record["alternatives_after_pruning"] \
            >= record["alternatives_in_solver"] >= 1


def test_document_updates_report_write_amplification(document):
    updates = [record for record in document["statements"].values()
               if record["kind"] == "update"]
    assert updates
    for record in updates:
        assert record["maintenance"]
        for maintenance in record["maintenance"]:
            assert maintenance["write_amplification"] >= 0.0
            assert maintenance["steps"]


def test_document_without_explain_data_degrades_gracefully(
        recommendation):
    class Bare:
        indexes = recommendation.indexes
        query_plans = recommendation.query_plans
        update_plans = recommendation.update_plans
        weights = recommendation.weights
        total_cost = recommendation.total_cost
        as_dict = recommendation.as_dict
        weight = recommendation.weight
        update_cost = recommendation.update_cost

    document = explain_document(Bare())
    for entry in document["indexes"]:
        assert entry["status"] == "chosen"
        assert entry["provenance"] == []
    assert document["solver"] == {}
    assert document["pruning"] == {}


def test_explain_document_round_trips_with_stable_keys(
        document, tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    dump_explain(document, first)
    loaded = load_explain(first)
    dump_explain(loaded, second)
    assert first.read_text() == second.read_text()
    assert loaded["format"] == EXPLAIN_FORMAT


def test_load_explain_rejects_non_document(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    with pytest.raises(NoseError):
        load_explain(path)


# -- diffing -------------------------------------------------------------------


def test_diff_against_scaled_writes_reports_cost_delta(hotel,
                                                       recommendation):
    model, workload = hotel
    advisor = Advisor(model, cost_model=SimpleCostModel())
    scaled = advisor.recommend(workload.scale_weights(2.0))
    diff = diff_recommendations(recommendation, scaled)
    total = diff["total_cost"]
    assert total["other"] == pytest.approx(scaled.total_cost)
    assert total["delta"] == pytest.approx(
        scaled.total_cost - recommendation.total_cost)
    assert total["regression_pct"] == pytest.approx(
        total["delta"] / recommendation.total_cost * 100.0)
    assert isinstance(diff["indexes_added"], list)
    assert isinstance(diff["indexes_dropped"], list)


def test_diff_reports_index_set_changes():
    base = {"total_cost": 1.0, "size_bytes": 10,
            "indexes": [{"key": "ia", "triple": "[a][][]"}],
            "statements": {}}
    other = {"total_cost": 2.0, "size_bytes": 20,
             "indexes": [{"key": "ib", "triple": "[b][][]"}],
             "statements": {}}
    diff = diff_recommendations(base, other)
    assert diff["indexes_added"] == [{"key": "ib", "triple": "[b][][]"}]
    assert diff["indexes_dropped"] == [{"key": "ia",
                                        "triple": "[a][][]"}]
    assert diff["total_cost"]["regression_pct"] == pytest.approx(100.0)


def test_diff_flags_plan_and_cost_changes():
    base = {"total_cost": 1.0, "indexes": [], "statements": {
        "q1": {"cost": 1.0, "plan": {"signature": "L:a", "steps": []}},
        "q2": {"cost": 2.0, "plan": {"signature": "L:b", "steps": []}},
    }}
    other = {"total_cost": 1.5, "indexes": [], "statements": {
        "q1": {"cost": 1.0, "plan": {"signature": "L:c", "steps": []}},
        "q2": {"cost": 2.0, "plan": {"signature": "L:b", "steps": []}},
    }}
    diff = diff_recommendations(base, other)
    assert diff["statements"]["q1"]["plan_changed"] is True
    assert "q2" not in diff["statements"]


def test_diff_zero_base_has_no_percentage():
    base = {"total_cost": 0.0, "indexes": [], "statements": {}}
    other = {"total_cost": 1.0, "indexes": [], "statements": {}}
    diff = diff_recommendations(base, other)
    assert diff["total_cost"]["regression_pct"] is None
    assert diff["total_cost"]["delta"] == pytest.approx(1.0)


def test_diff_falls_back_to_plain_recommendation_shape():
    base = {"total_cost": 1.0, "indexes": [],
            "query_plans": {"q1": {"cost": 1.0, "steps": ["lookup a"]}}}
    other = {"total_cost": 2.0, "indexes": [],
             "query_plans": {"q1": {"cost": 2.0, "steps": ["lookup b"]}}}
    diff = diff_recommendations(base, other)
    record = diff["statements"]["q1"]
    assert record["delta"] == pytest.approx(1.0)
    assert record["plan_changed"] is True


# -- rendering -----------------------------------------------------------------


def test_explain_report_renders_schema_and_plans(document):
    report = explain_report(document)
    assert report.startswith("explain:")
    for entry in document["indexes"]:
        assert entry["key"] in report
    assert "after pruning" in report
    assert "write amplification" in report


def test_explain_report_narrows_to_one_statement(document):
    label = next(label for label, record
                 in document["statements"].items()
                 if record["kind"] == "query")
    report = explain_report(document, statement=label)
    assert report.startswith(label)
    others = [other for other in document["statements"]
              if other != label]
    assert all(other not in report for other in others)


def test_explain_report_unknown_statement_rejected(document):
    with pytest.raises(NoseError):
        explain_report(document, statement="no_such_statement")


def test_recommendation_explain_method(recommendation):
    report = recommendation.explain()
    assert "explain:" in report
    assert json.dumps(recommendation.explain_document())  # serializable


def test_diff_report_renders_totals_and_changes():
    diff = {
        "total_cost": {"base": 1.0, "other": 2.0, "delta": 1.0,
                       "regression_pct": 100.0},
        "size_bytes": {"base": 1, "other": 2},
        "indexes_added": [{"key": "ib", "triple": "[b][][]"}],
        "indexes_dropped": [],
        "statements": {"q1": {"base_cost": 1.0, "other_cost": 2.0,
                              "delta": 1.0, "plan_changed": True}},
    }
    report = diff_report(diff)
    assert "+100.00%" in report
    assert "+ ib" in report
    assert "plan changed" in report


def test_diff_report_handles_missing_percentage():
    diff = {
        "total_cost": {"base": 0.0, "other": 1.0, "delta": 1.0,
                       "regression_pct": None},
        "size_bytes": {"base": 0, "other": 1},
        "indexes_added": [], "indexes_dropped": [], "statements": {},
    }
    assert "n/a" in diff_report(diff)


# -- pruning ledger ------------------------------------------------------------


def test_pruning_section_has_honest_accounting(document):
    pruning = document["pruning"]
    assert pruning
    for record in pruning.values():
        removed_total = sum(record["removed_by_rule"].values())
        assert record["considered"] - record["kept"] == removed_total
        listed = len(record["removed"])
        if record.get("removed_truncated"):
            assert listed == 50
            assert removed_total > 50
        else:
            assert listed == removed_total
