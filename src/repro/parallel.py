"""A tiny ordered parallel map shared by the advisor pipeline.

Planning and costing are independent per statement, so the advisor fans
them out over a thread pool when ``jobs > 1``.  Threads (rather than
processes) keep plan objects shared by identity — the optimizer relies
on ``id()``-stable plans — and the per-statement work releases the GIL
inside numpy/scipy, so threads still help on multi-core hosts while
degrading gracefully to serial order on one core.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

__all__ = ["parallel_map"]


def parallel_map(function, items, jobs=None):
    """``[function(item) for item in items]``, optionally on a pool.

    Results are returned in input order regardless of completion order,
    and the first exception (in input order) propagates exactly as it
    would from the serial loop.  ``jobs`` of ``None``, 0 or 1 runs
    serially with no pool overhead.
    """
    items = list(items)
    if not jobs or jobs <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(function, items))
