"""Ordered parallel map shared by the advisor pipeline.

Planning and costing are independent per statement, so the advisor fans
them out when ``jobs > 1``.  Two backends are available:

* ``"thread"`` — a thread pool.  Plan objects stay shared by identity
  (the costing pass mutates step costs in place and the optimizer
  relies on ``id()``-stable plans), so this is the only safe backend
  for stages that mutate their inputs.  Pure-Python work gains nothing
  under the GIL; numpy/scipy sections still overlap.
* ``"process"`` — a ``fork``-based process pool for CPU-bound
  pure-Python work (the planners' plan-space DFS).  The work — function
  and items, typically closing over the shared read-only candidate
  pool — is published in a module global *before* the fork, so workers
  inherit it copy-on-write and nothing is pickled on the way out; only
  compact ``(start, stop)`` chunk spans go to the workers and only
  results come back.  Results are therefore *copies*: callers must not
  rely on output identity with their inputs, and must do any shared
  bookkeeping (artifact stores) parent-side.  Telemetry is the
  exception: each chunk runs under a fresh worker-local sink whose
  metrics and spans are shipped back with the results and merged into
  the parent registry, so counter totals match the serial run exactly.
  Where ``fork`` is unavailable the thread backend is used instead.

Fanning out costs real time (pool start-up, result pickling), so
``parallel_map`` falls back to serial execution when the work cannot
pay for it: when the host has a single CPU (process backend), and when
the estimated total work — ``cost_hint`` seconds per item when the
caller knows it, otherwise the measured duration of the first item —
is below ``min_parallel_seconds``.  Fallbacks count against the
``parallel.fallback_serial`` telemetry counter; ``force=True``
disables them (tests exercise the pool machinery on any host).

Two pipeline-wide concerns are handled here rather than at every call
site: worker exceptions are re-raised with the originating item
attached (an exception note on Python 3.11+, and always as the
``parallel_item`` attribute) so a failure in a ``jobs=N`` run names the
statement that caused it — the first failure in *input* order wins,
exactly as in the serial loop; and, when telemetry is active, thread
workers adopt the caller's current span so their spans nest under the
stage that fanned the work out.  A worker process killed mid-chunk
surfaces as :class:`concurrent.futures.process.BrokenProcessPool`
rather than a hang.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import multiprocessing

from repro import telemetry

__all__ = ["describe_item", "parallel_map"]

#: estimated total seconds of work below which fanning out is a loss
#: (pool start-up plus per-item dispatch overhead)
MIN_PARALLEL_SECONDS = 0.1

#: work published to forked workers: ``(function, items)``; non-None
#: only while a process pool is running, and inherited by the children
#: as their signal that they *are* children (nested fan-out runs
#: serially instead of forking grandchildren)
_WORK = None

_BACKENDS = ("thread", "process")


def describe_item(item):
    """A short human-readable identity for a work item.

    Statements carry labels; plan spaces carry their query.  Falls back
    to a truncated ``repr`` so arbitrary items still identify
    themselves in an exception note.
    """
    label = getattr(item, "label", None)
    if label:
        return str(label)
    query = getattr(item, "query", None)
    if query is not None:
        label = getattr(query, "label", None)
        if label:
            return str(label)
    text = repr(item)
    return text if len(text) <= 120 else text[:117] + "..."


def _annotate(error, item):
    """Attach the failing item's identity to an in-flight exception."""
    context = f"while processing {describe_item(item)}"
    error.parallel_item = context
    add_note = getattr(error, "add_note", None)
    if add_note is not None:  # Python 3.11+
        add_note(context)


def _run_chunk(span):
    """Worker-side chunk runner: ``(results, telemetry snapshot)``.

    ``results`` is ``[(position, ok, value-or-error)]``, stopping at
    the chunk's first failure (matching the serial loop, which never
    runs anything after an exception).  Errors that cannot be pickled
    back are replaced by a picklable stand-in carrying their repr.

    The forked worker inherits a *copy* of the parent's telemetry sink,
    so anything recorded into it would be silently lost with the
    process.  When telemetry is active, the chunk instead runs under a
    fresh worker-local sink and its metrics and spans are shipped back
    with the results for the parent to merge — serial and ``jobs=N``
    runs therefore report identical counter totals.
    """
    function, items = _WORK
    start, stop = span
    local = None
    scope = contextlib.nullcontext(None)
    if telemetry.current().enabled:
        scope = telemetry.activate(telemetry.Telemetry("chunk"))
    results = []
    with scope as local:
        for position in range(start, stop):
            try:
                results.append((position, True,
                                function(items[position])))
            except Exception as error:
                try:
                    pickle.dumps(error)
                except Exception:
                    error = RuntimeError(
                        f"unpicklable worker exception: {error!r}")
                results.append((position, False, error))
                break
    snapshot = None
    if local is not None:
        local.tracer.finish()
        snapshot = {
            "metrics": local.metrics.as_dict(),
            "spans": [child.as_dict()
                      for child in local.tracer.root.children],
        }
    return results, snapshot


def _fallback_serial(run, items, active, reason):
    if active.enabled:
        active.count("parallel.fallback_serial")
        active.count(f"parallel.fallback_serial.{reason}")
    return [run(item) for item in items]


def parallel_map(function, items, jobs=None, backend="thread",
                 cost_hint=None, min_parallel_seconds=None, force=False):
    """``[function(item) for item in items]``, optionally on a pool.

    Results are returned in input order regardless of completion order,
    and the first exception (in input order) propagates exactly as it
    would from the serial loop — annotated with the item that raised
    it.  ``jobs`` of ``None``, 0 or 1 runs serially with no pool
    overhead.

    ``backend`` selects threads (default; shared objects, safe for
    mutating stages) or forked processes (CPU-bound pure-Python work;
    results are copies).  ``cost_hint`` is the caller's estimate of
    seconds per item; without it the first item is timed and the rest
    fanned out only when the extrapolated total clears
    ``min_parallel_seconds`` (default :data:`MIN_PARALLEL_SECONDS`).
    ``force=True`` skips the serial-fallback heuristics (not the
    ``jobs``/size contract) so tests reach the pool on any host.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown parallel backend {backend!r}; "
                         f"expected one of {', '.join(_BACKENDS)}")
    items = list(items)
    if min_parallel_seconds is None:
        min_parallel_seconds = MIN_PARALLEL_SECONDS

    def run(item):
        try:
            return function(item)
        except Exception as error:
            _annotate(error, item)
            raise

    if not jobs or jobs <= 1 or len(items) <= 1:
        return [run(item) for item in items]
    # a forked worker must not fork grandchildren
    if backend == "process" and _WORK is not None:
        return [run(item) for item in items]
    active = telemetry.current()
    if not force:
        if backend == "process" and (os.cpu_count() or 1) <= 1:
            return _fallback_serial(run, items, active, "single-cpu")
        if cost_hint is not None \
                and cost_hint * len(items) < min_parallel_seconds:
            return _fallback_serial(run, items, active, "small-work")
    head = []
    if cost_hint is None and not force:
        # no estimate: measure the first item, fan out only what's left
        # if the extrapolated remainder pays for a pool
        started = time.perf_counter()
        head = [run(items[0])]
        elapsed = time.perf_counter() - started
        items = items[1:]
        if elapsed * len(items) < min_parallel_seconds:
            return head + _fallback_serial(run, items, active,
                                           "small-work")
    if active.enabled:
        active.count("parallel.batches")
        active.count("parallel.items", len(items))
    if backend == "process":
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is None:
            if active.enabled:
                active.count("parallel.process_unavailable")
        else:
            return head + _process_map(function, items, jobs, context,
                                       active)
    return head + _thread_map(run, items, jobs, active)


def _thread_map(run, items, jobs, active):
    worker = run
    if active.enabled:
        parent = active.current_span()

        def adopted(item):
            with active.adopt(parent):
                return run(item)
        worker = adopted
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(worker, items))


def _process_map(function, items, jobs, context, active):
    """Fan chunks out over forked workers; first input-order error wins."""
    global _WORK
    count = len(items)
    workers = min(jobs, count)
    # a few chunks per worker balance uneven items without drowning the
    # pool in dispatch overhead
    chunk = max(1, -(-count // (workers * 4)))
    spans = [(start, min(start + chunk, count))
             for start in range(0, count, chunk)]
    _WORK = (function, items)
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            chunked = list(pool.map(_run_chunk, spans))
    finally:
        _WORK = None
    results = [None] * count
    failure = None
    for chunk_results, snapshot in chunked:
        if snapshot is not None and active.enabled:
            # worker-side telemetry came back with the chunk; merging
            # in span order keeps gauge last-write-wins deterministic
            active.merge_snapshot(snapshot)
        for position, ok, value in chunk_results:
            if ok:
                results[position] = value
            elif failure is None or position < failure[0]:
                failure = (position, value)
    if failure is not None:
        position, error = failure
        _annotate(error, items[position])
        raise error
    return results
