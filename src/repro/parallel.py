"""A tiny ordered parallel map shared by the advisor pipeline.

Planning and costing are independent per statement, so the advisor fans
them out over a thread pool when ``jobs > 1``.  Threads (rather than
processes) keep plan objects shared by identity — the optimizer relies
on ``id()``-stable plans — and the per-statement work releases the GIL
inside numpy/scipy, so threads still help on multi-core hosts while
degrading gracefully to serial order on one core.

Two pipeline-wide concerns are handled here rather than at every call
site: worker exceptions are re-raised with the originating item
attached (an exception note on Python 3.11+, and always as the
``parallel_item`` attribute) so a failure in a ``jobs=N`` run names the
statement that caused it; and, when telemetry is active, worker threads
adopt the caller's current span so their spans nest under the stage
that fanned the work out.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import telemetry

__all__ = ["describe_item", "parallel_map"]


def describe_item(item):
    """A short human-readable identity for a work item.

    Statements carry labels; plan spaces carry their query.  Falls back
    to a truncated ``repr`` so arbitrary items still identify
    themselves in an exception note.
    """
    label = getattr(item, "label", None)
    if label:
        return str(label)
    query = getattr(item, "query", None)
    if query is not None:
        label = getattr(query, "label", None)
        if label:
            return str(label)
    text = repr(item)
    return text if len(text) <= 120 else text[:117] + "..."


def _annotate(error, item):
    """Attach the failing item's identity to an in-flight exception."""
    context = f"while processing {describe_item(item)}"
    error.parallel_item = context
    add_note = getattr(error, "add_note", None)
    if add_note is not None:  # Python 3.11+
        add_note(context)


def parallel_map(function, items, jobs=None):
    """``[function(item) for item in items]``, optionally on a pool.

    Results are returned in input order regardless of completion order,
    and the first exception (in input order) propagates exactly as it
    would from the serial loop — annotated with the item that raised
    it.  ``jobs`` of ``None``, 0 or 1 runs serially with no pool
    overhead.
    """
    items = list(items)

    def run(item):
        try:
            return function(item)
        except Exception as error:
            _annotate(error, item)
            raise

    if not jobs or jobs <= 1 or len(items) <= 1:
        return [run(item) for item in items]
    active = telemetry.current()
    worker = run
    if active.enabled:
        active.count("parallel.batches")
        active.count("parallel.items", len(items))
        parent = active.current_span()

        def adopted(item):
            with active.adopt(parent):
                return run(item)
        worker = adopted
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(worker, items))
