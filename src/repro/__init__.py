"""NoSE: workload-driven schema design for NoSQL extensible record stores.

This package is a from-scratch reproduction of the system described in
"NoSE: Schema Design for NoSQL Applications" (Mior, Salem, Aboulnaga, Liu;
ICDE 2016).  Given a conceptual entity graph and a weighted workload of
queries and updates, NoSE recommends a set of column families (the schema)
together with one implementation plan per statement, by enumerating
candidate column families, constructing the space of implementation plans,
and solving a binary integer program that minimises total weighted cost.

The public API is exposed at the package root:

>>> from repro import Model, Entity, Workload, Advisor
>>> model = Model("example")

See ``examples/quickstart.py`` for an end-to-end walkthrough using the
paper's hotel-booking running example.
"""

import logging as _logging

from repro.advisor import (
    Advisor,
    AdvisorTiming,
    PreparedWorkload,
    SchemaRecommendation,
)
from repro.cost import CassandraCostModel, CostModel, SimpleCostModel
from repro.exceptions import (
    ExecutionError,
    ModelError,
    NoseError,
    OptimizationError,
    ParseError,
    PlanningError,
    TruncationWarning,
)
from repro.indexes import Index, materialized_view_for
from repro.model import (
    BooleanField,
    DateField,
    Entity,
    Field,
    FloatField,
    ForeignKeyField,
    IDField,
    IntegerField,
    KeyPath,
    Model,
    StringField,
)
from repro.telemetry import RunReport, Telemetry
from repro.workload import (
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Statement,
    StructuralDiff,
    Update,
    Workload,
    WorkloadError,
    parse_statement,
    statement_digest,
)

# library logging convention: the "repro" logger hierarchy is silent
# unless the application configures handlers
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Advisor",
    "AdvisorTiming",
    "BooleanField",
    "CassandraCostModel",
    "Connect",
    "CostModel",
    "DateField",
    "Delete",
    "Disconnect",
    "Entity",
    "ExecutionError",
    "Field",
    "FloatField",
    "ForeignKeyField",
    "IDField",
    "Index",
    "Insert",
    "IntegerField",
    "KeyPath",
    "Model",
    "ModelError",
    "NoseError",
    "OptimizationError",
    "ParseError",
    "PlanningError",
    "PreparedWorkload",
    "Query",
    "RunReport",
    "SchemaRecommendation",
    "SimpleCostModel",
    "Statement",
    "StringField",
    "StructuralDiff",
    "Telemetry",
    "TruncationWarning",
    "Update",
    "Workload",
    "WorkloadError",
    "materialized_view_for",
    "parse_statement",
    "statement_digest",
]
