"""Deterministic RUBiS data and request-parameter generation.

The paper populated its Cassandra instance with a 200,000-user RUBiS
dataset; this generator produces a synthetic equivalent at any scale
with the same cardinality ratios, fully deterministic under a seed.  A
companion parameter generator draws coherent request parameters per
transaction (e.g. StoreBid's insert and item-update share the same item
and keep ``NbOfBids``/``MaxBid`` consistent).
"""

from __future__ import annotations

import datetime
import random

from repro.backend.dataset import Dataset
from repro.rubis.transactions import TRANSACTIONS

#: reference "current time" for date attributes (kept fixed for
#: reproducibility)
NOW = datetime.datetime(2016, 4, 1)


def _days_ago(days):
    return NOW - datetime.timedelta(days=days)


def _days_ahead(days):
    return NOW + datetime.timedelta(days=days)


def generate_dataset(model, seed=7):
    """Populate a :class:`Dataset` matching the model's entity counts.

    Row counts come from the model (``rubis_model(users=...)``), so the
    advisor's cardinality statistics agree with the loaded data.
    """
    rng = random.Random(seed)
    dataset = Dataset(model)
    counts = {name: entity.count
              for name, entity in model.entities.items()}

    for region in range(counts["Region"]):
        dataset.add_row("Region", {
            "RegionID": region, "RegionName": f"region-{region}"})
    for category in range(counts["Category"]):
        dataset.add_row("Category", {
            "CategoryID": category,
            "CategoryName": f"category-{category}", "Dummy": 1})
    for user in range(counts["User"]):
        dataset.add_row("User", {
            "UserID": user,
            "UserFirstName": f"First{user}",
            "UserLastName": f"Last{user}",
            "UserNickname": f"nick{user}",
            "UserPassword": f"pw{user}",
            "UserEmail": f"user{user}@rubis.example",
            "UserRating": rng.randint(0, 99),
            "UserBalance": round(rng.uniform(0, 1000), 2),
            "UserCreationDate": _days_ago(rng.randint(1, 365)),
        })
        dataset.connect("Region", user % counts["Region"], "Users", user)

    for item in range(counts["Item"]):
        start = _days_ago(rng.randint(1, 60))
        end = _days_ahead(rng.randint(1, 30)) if rng.random() < 0.8 \
            else _days_ago(rng.randint(1, 10))
        dataset.add_row("Item", {
            "ItemID": item,
            "ItemName": f"item-{item}",
            "ItemDescription": f"description of item {item}",
            "InitialPrice": round(rng.uniform(1, 500), 2),
            "ItemQuantity": rng.randint(1, 10),
            "ReservePrice": round(rng.uniform(1, 700), 2),
            "BuyNowPrice": round(rng.uniform(10, 1000), 2),
            "NbOfBids": 0,
            "MaxBid": 0.0,
            "StartDate": start,
            "EndDate": end,
        })
        dataset.connect("User", rng.randrange(counts["User"]),
                        "ItemsSold", item)
        dataset.connect("Category", item % counts["Category"],
                        "Items", item)

    for old_item in range(counts["OldItem"]):
        dataset.add_row("OldItem", {
            "OldItemID": old_item,
            "OldItemName": f"old-item-{old_item}",
            "OldItemSoldPrice": round(rng.uniform(1, 800), 2),
            "OldItemEndDate": _days_ago(rng.randint(30, 365)),
        })
        dataset.connect("User", rng.randrange(counts["User"]),
                        "OldItemsSold", old_item)

    items = dataset.rows["Item"]
    for bid in range(counts["Bid"]):
        item = rng.randrange(counts["Item"])
        row = items[item]
        amount = round(row["Item.InitialPrice"]
                       + rng.uniform(0.5, 50) * (row["Item.NbOfBids"] + 1),
                       2)
        dataset.add_row("Bid", {
            "BidID": bid,
            "BidQty": rng.randint(1, 5),
            "BidAmount": amount,
            "BidDate": _days_ago(rng.randint(0, 30)),
        })
        dataset.connect("User", rng.randrange(counts["User"]), "Bids", bid)
        dataset.connect("Item", item, "Bids", bid)
        row["Item.NbOfBids"] += 1
        row["Item.MaxBid"] = max(row["Item.MaxBid"], amount)

    for comment in range(counts["Comment"]):
        dataset.add_row("Comment", {
            "CommentID": comment,
            "CommentRating": rng.randint(-5, 5),
            "CommentDate": _days_ago(rng.randint(0, 180)),
            "CommentText": f"comment text {comment}",
        })
        author = rng.randrange(counts["User"])
        recipient = rng.randrange(counts["User"])
        dataset.connect("User", author, "CommentsWritten", comment)
        dataset.connect("User", recipient, "CommentsReceived", comment)
        dataset.connect("Item", rng.randrange(counts["Item"]),
                        "Comments", comment)

    for buy in range(counts["BuyNow"]):
        dataset.add_row("BuyNow", {
            "BuyNowID": buy,
            "BuyNowQty": rng.randint(1, 3),
            "BuyNowDate": _days_ago(rng.randint(0, 60)),
        })
        dataset.connect("User", rng.randrange(counts["User"]),
                        "Purchases", buy)
        dataset.connect("Item", rng.randrange(counts["Item"]),
                        "BuyNows", buy)

    return dataset


class RubisParameterGenerator:
    """Draws coherent request parameters for each RUBiS transaction.

    Keeps counters for fresh IDs so insert statements never collide with
    existing rows, and reads current item state so StoreBid's item
    update stays consistent with the inserted bid.
    """

    def __init__(self, dataset, seed=11):
        self.dataset = dataset
        self.rng = random.Random(seed)
        self._next_id = {name: max(rows, default=0) + 1_000_000
                         for name, rows in dataset.rows.items()}
        self._key_cache = {}

    def _fresh_id(self, entity_name):
        value = self._next_id[entity_name]
        self._next_id[entity_name] = value + 1
        return value

    def _any_id(self, entity_name):
        rows = self.dataset.rows[entity_name]
        cached = self._key_cache.get(entity_name)
        if cached is None or cached[0] != len(rows):
            cached = (len(rows), list(rows))
            self._key_cache[entity_name] = cached
        keys = cached[1]
        return keys[self.rng.randrange(len(keys))]

    def requests_for(self, transaction):
        """``[(statement label, params), ...]`` for one transaction."""
        shared = self._shared_parameters(transaction)
        return [(label, shared) for label in TRANSACTIONS[transaction]]

    def _shared_parameters(self, transaction):
        rng = self.rng
        params = {
            "dummy": 1,
            "now": NOW,
            "user": self._any_id("User"),
            "item": self._any_id("Item"),
            "category": self._any_id("Category"),
            "to_user": self._any_id("User"),
            "region": self._any_id("Region"),
            "date": NOW,
            "qty": rng.randint(1, 3),
        }
        if transaction == "StoreBid":
            item_row = self.dataset.rows["Item"][params["item"]]
            amount = round(item_row["Item.MaxBid"]
                           + rng.uniform(0.5, 25), 2)
            params.update({
                "BidID": self._fresh_id("Bid"),
                "amount": amount,
                "nb_of_bids": item_row["Item.NbOfBids"] + 1,
                "max_bid": max(item_row["Item.MaxBid"], amount),
            })
        elif transaction == "StoreBuyNow":
            item_row = self.dataset.rows["Item"][params["item"]]
            params.update({
                "BuyNowID": self._fresh_id("BuyNow"),
                "quantity": max(item_row["Item.ItemQuantity"]
                                - params["qty"], 0),
            })
        elif transaction == "StoreComment":
            params.update({
                "CommentID": self._fresh_id("Comment"),
                "rating": rng.randint(-5, 5),
                "text": "a new comment",
            })
        elif transaction == "RegisterItem":
            params.update({
                "ItemID": self._fresh_id("Item"),
                "name": "a new item",
                "description": "description of a new item",
                "initial_price": round(rng.uniform(1, 500), 2),
                "quantity": rng.randint(1, 10),
                "reserve_price": round(rng.uniform(1, 700), 2),
                "buy_now_price": round(rng.uniform(10, 1000), 2),
                "nb_of_bids": 0,
                "max_bid": 0.0,
                "start_date": NOW,
                "end_date": _days_ahead(rng.randint(1, 30)),
            })
        elif transaction == "RegisterUser":
            new_user = self._fresh_id("User")
            params.update({
                "UserID": new_user,
                "first_name": "New",
                "last_name": "User",
                "nickname": f"nick{new_user}",
                "password": "secret",
                "email": f"user{new_user}@rubis.example",
                "rating": 0,
                "balance": 0.0,
                "creation_date": NOW,
            })
        return params
