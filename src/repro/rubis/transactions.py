"""The fourteen RUBiS user transactions of Fig 11 and the request mixes.

A *transaction* is a group of statements executed for a single request
to the application server (the unit Fig 11 reports response times for).
Frequencies approximate the RUBiS request distribution: the bidding mix
is roughly 15% writes, the browsing mix is read-only.
"""

from __future__ import annotations

#: transaction name -> statement labels executed per request
TRANSACTIONS = {
    "BrowseCategories": ["bc_categories"],
    "ViewBidHistory": ["vbh_item_name", "vbh_bids", "vbh_bidders"],
    "ViewItem": ["vi_item", "vi_bids"],
    "SearchItemsByCategory": ["sic_items"],
    "ViewUserInfo": ["vui_user", "vui_comments"],
    "BuyNow": ["bn_auth", "bn_item"],
    "StoreBuyNow": ["sbn_insert", "sbn_update_item"],
    "PutBid": ["pb_auth", "pb_item", "pb_bids"],
    "StoreBid": ["sb_insert", "sb_update_item"],
    "PutComment": ["pc_auth", "pc_item", "pc_to_user"],
    "StoreComment": ["sc_insert", "sc_update_rating"],
    "AboutMe": ["am_user", "am_items_selling", "am_old_items",
                "am_bid_items", "am_purchases", "am_bought_items",
                "am_comments"],
    "RegisterItem": ["ri_insert"],
    "RegisterUser": ["ru_insert"],
}

#: relative transaction frequencies, RUBiS bidding mix (≈15% writes)
BIDDING_MIX = {
    "BrowseCategories": 0.075,
    "SearchItemsByCategory": 0.235,
    "ViewItem": 0.190,
    "ViewUserInfo": 0.040,
    "ViewBidHistory": 0.030,
    "BuyNow": 0.030,
    "StoreBuyNow": 0.012,
    "PutBid": 0.090,
    "StoreBid": 0.070,
    "PutComment": 0.012,
    "StoreComment": 0.010,
    "AboutMe": 0.045,
    "RegisterItem": 0.024,
    "RegisterUser": 0.012,
}

#: read-only browsing mix
BROWSING_MIX = {
    "BrowseCategories": 0.120,
    "SearchItemsByCategory": 0.370,
    "ViewItem": 0.300,
    "ViewUserInfo": 0.070,
    "ViewBidHistory": 0.060,
    "AboutMe": 0.080,
}

#: transactions that write to the store (scaled in the Fig 12 sweep)
WRITE_TRANSACTIONS = frozenset({
    "StoreBuyNow", "StoreBid", "StoreComment", "RegisterItem",
    "RegisterUser",
})


def transaction_weights(mix="bidding"):
    """Normalized transaction frequencies for a mix."""
    table = BIDDING_MIX if mix == "bidding" else BROWSING_MIX
    total = sum(table.values())
    return {name: weight / total for name, weight in table.items()}


def write_statement_labels():
    """Labels of all statements belonging to write transactions."""
    labels = set()
    for transaction in WRITE_TRANSACTIONS:
        labels.update(TRANSACTIONS[transaction])
    return labels
