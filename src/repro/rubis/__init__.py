"""RUBiS adaptation: the paper's evaluation target application (§VII-A).

RUBiS is an online-auction web benchmark; the paper adapted it for
Cassandra by building a conceptual model of its entities (eight entity
sets, eleven relationships) and translating the bidding/browsing request
mixes into NoSE statements.  This package provides the same adaptation:
the entity graph, the weighted workload with both mixes, the fourteen
user transactions of Fig 11, a deterministic data generator, and the
hand-written "normalized" and "expert" comparison schemas.
"""

from repro.rubis.datagen import RubisParameterGenerator, generate_dataset
from repro.rubis.model import rubis_model
from repro.rubis.schemas import expert_schema, normalized_schema
from repro.rubis.transactions import (
    BIDDING_MIX,
    BROWSING_MIX,
    TRANSACTIONS,
    transaction_weights,
)
from repro.rubis.workload import rubis_workload

__all__ = [
    "BIDDING_MIX",
    "BROWSING_MIX",
    "RubisParameterGenerator",
    "TRANSACTIONS",
    "expert_schema",
    "generate_dataset",
    "normalized_schema",
    "rubis_model",
    "rubis_workload",
    "transaction_weights",
]
