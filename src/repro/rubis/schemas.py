"""The hand-written comparison schemas of §VII-A.

``normalized_schema`` is the highly normalized baseline: one column
family per entity keyed by its primary key, relationship indexes mapping
IDs across each relationship, and secondary-index column families for
non-key predicate attributes.

``expert_schema`` was designed the way a human Cassandra expert would
(per the paper's description): query-shaped tables for the hot paths,
exploiting knowledge NoSE does not have — notably, tables that group
bids per (user, item) pair the way RUBiS's GROUP BY queries do (the
clustering key omits the bid ID, so duplicate bids collapse), and plans
executed with shared reads within a transaction.
"""

from __future__ import annotations

from repro.indexes import Index, entity_fetch_index
from repro.model.paths import KeyPath


def _index(model, path_names, hash_refs, order_refs, extra_refs):
    """Helper: build an index from ``Entity.Field`` name references."""
    path = model.path(path_names)

    def resolve(refs):
        fields = []
        for ref in refs:
            entity_name, field_name = ref.split(".")
            fields.append(model.entity(entity_name)[field_name])
        return fields

    return Index(resolve(hash_refs), resolve(order_refs),
                 resolve(extra_refs), path)


def normalized_schema(model):
    """Entity tables + relationship indexes + predicate secondary indexes.

    This is the paper's "normalized" schema: every entity in one place,
    queries assembled by the application through chains of ID lookups.
    """
    indexes = []
    # one column family per entity: primary key -> all attributes
    for entity in model.entities.values():
        indexes.append(entity_fetch_index(entity))
    # relationship indexes in both directions: [A.ID][B.ID][]
    seen = set()
    for entity in model.entities.values():
        for key in entity.foreign_keys:
            if key.id in seen:
                continue
            seen.add(key.id)
            path = KeyPath(entity, (key,))
            indexes.append(Index((entity.id_field,),
                                 (key.entity.id_field,), (), path))
    # secondary index for the browse-all-categories dummy predicate
    category = model.entity("Category")
    indexes.append(Index((category["Dummy"],),
                         (category.id_field,), (), KeyPath(category)))
    return indexes


def expert_schema(model):
    """The expert-designed schema (see module docstring)."""
    return [
        # entity lookup tables for point reads and attribute fetches
        entity_fetch_index(model.entity("User")),
        entity_fetch_index(model.entity("Item")),
        entity_fetch_index(model.entity("Category")),
        # browse all categories in one get
        _index(model, ["Category"],
               ["Category.Dummy"],
               ["Category.CategoryID"],
               ["Category.CategoryName"]),
        # search items by category, clustered by auction end date; the
        # rules of thumb say not to denormalize frequently-updated
        # attributes, so the bid statistics (changed on every StoreBid)
        # are fetched from the item table per result instead
        _index(model, ["Category", "Items"],
               ["Category.CategoryID"],
               ["Item.EndDate", "Item.ItemID"],
               ["Item.ItemName", "Item.InitialPrice"]),
        # bids of an item in date order, with the bidder folded in: one
        # table serves the item view, the bid history, and the bidder
        # list (an expert avoids duplicating bid data per page)
        _index(model, ["Item", "Bids", "Bidder"],
               ["Item.ItemID"],
               ["Bid.BidDate", "Bid.BidID", "User.UserID"],
               ["Bid.BidAmount", "Bid.BidQty", "User.UserNickname"]),
        # comments received by a user
        _index(model, ["User", "CommentsReceived"],
               ["User.UserID"],
               ["Comment.CommentDate", "Comment.CommentID"],
               ["Comment.CommentText", "Comment.CommentRating"]),
        # items a user is selling; the rules of thumb say not to
        # denormalize frequently-updated attributes, so the current
        # maximum bid is fetched from the item table instead
        _index(model, ["User", "ItemsSold"],
               ["User.UserID"],
               ["Item.ItemID"],
               ["Item.ItemName", "Item.InitialPrice", "Item.EndDate"]),
        # items a user sold in the past
        _index(model, ["User", "OldItemsSold"],
               ["User.UserID"],
               ["OldItem.OldItemID"],
               ["OldItem.OldItemName", "OldItem.OldItemSoldPrice"]),
        # items a user has bid on, GROUPED per item: the clustering key
        # deliberately omits the bid ID, so one row per (user, item)
        # regardless of how many bids were placed — knowledge NoSE's
        # enumerator does not encode (§VII-A)
        _index(model, ["User", "Bids", "Item"],
               ["User.UserID"],
               ["Item.ItemID"],
               ["Item.ItemName", "Item.EndDate"]),
        # a user's buy-now purchases
        _index(model, ["User", "Purchases"],
               ["User.UserID"],
               ["BuyNow.BuyNowID"],
               ["BuyNow.BuyNowQty", "BuyNow.BuyNowDate"]),
        # items bought, grouped per (user, item) as above
        _index(model, ["User", "Purchases", "Item"],
               ["User.UserID"],
               ["Item.ItemID"],
               ["Item.ItemName"]),
    ]
