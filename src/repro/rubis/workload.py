"""The RUBiS workload: NoSE statements for every user transaction.

Each statement corresponds to one SQL statement of the original RUBiS
bidding workload, expressed over the conceptual model.  Statement
weights equal the frequency of the transaction they belong to, under the
active mix (bidding or browsing).  As in the paper, region
browse/search interactions are excluded, and the queries RUBiS answers
with GROUP BY are expressed as plain selections (NoSE cannot exploit
grouping — §VII-A discusses the consequences).
"""

from __future__ import annotations

from repro.rubis.transactions import TRANSACTIONS, transaction_weights
from repro.workload import Workload

#: statement label -> statement text
STATEMENTS = {
    # BrowseCategories
    "bc_categories": (
        "SELECT Category.CategoryID, Category.CategoryName FROM Category "
        "WHERE Category.Dummy = ?dummy"),
    # SearchItemsByCategory
    "sic_items": (
        "SELECT Item.ItemID, Item.ItemName, Item.InitialPrice, "
        "Item.MaxBid, Item.NbOfBids, Item.EndDate "
        "FROM Item.Category WHERE Category.CategoryID = ?category "
        "AND Item.EndDate > ?now ORDER BY Item.EndDate LIMIT 25"),
    # ViewItem
    "vi_item": (
        "SELECT Item.ItemName, Item.ItemDescription, Item.InitialPrice, "
        "Item.ItemQuantity, Item.ReservePrice, Item.BuyNowPrice, "
        "Item.NbOfBids, Item.MaxBid, Item.StartDate, Item.EndDate "
        "FROM Item WHERE Item.ItemID = ?item"),
    "vi_bids": (
        "SELECT Bid.BidID, Bid.BidAmount, Bid.BidDate "
        "FROM Bid.Item WHERE Item.ItemID = ?item"),
    # ViewBidHistory
    "vbh_item_name": (
        "SELECT Item.ItemName FROM Item WHERE Item.ItemID = ?item"),
    "vbh_bids": (
        "SELECT Bid.BidID, Bid.BidQty, Bid.BidAmount, Bid.BidDate "
        "FROM Bid.Item WHERE Item.ItemID = ?item "
        "ORDER BY Bid.BidDate"),
    "vbh_bidders": (
        "SELECT User.UserID, User.UserNickname "
        "FROM User.Bids.Item WHERE Item.ItemID = ?item"),
    # ViewUserInfo
    "vui_user": (
        "SELECT User.UserNickname, User.UserRating, "
        "User.UserCreationDate, User.UserEmail "
        "FROM User WHERE User.UserID = ?user"),
    "vui_comments": (
        "SELECT Comment.CommentID, Comment.CommentRating, "
        "Comment.CommentDate, Comment.CommentText "
        "FROM Comment.Recipient WHERE User.UserID = ?user"),
    # BuyNow (authentication + item display)
    "bn_auth": (
        "SELECT User.UserPassword FROM User WHERE User.UserID = ?user"),
    "bn_item": (
        "SELECT Item.ItemName, Item.ItemQuantity, Item.BuyNowPrice, "
        "Item.EndDate FROM Item WHERE Item.ItemID = ?item"),
    # StoreBuyNow
    "sbn_insert": (
        "INSERT INTO BuyNow SET BuyNowID = ?, BuyNowQty = ?qty, "
        "BuyNowDate = ?date AND CONNECT TO Buyer(?user), Item(?item)"),
    "sbn_update_item": (
        "UPDATE Item SET ItemQuantity = ?quantity "
        "WHERE Item.ItemID = ?item"),
    # PutBid
    "pb_auth": (
        "SELECT User.UserPassword FROM User WHERE User.UserID = ?user"),
    "pb_item": (
        "SELECT Item.ItemName, Item.InitialPrice, Item.NbOfBids, "
        "Item.MaxBid, Item.EndDate FROM Item WHERE Item.ItemID = ?item"),
    "pb_bids": (
        "SELECT Bid.BidAmount, Bid.BidQty FROM Bid.Item "
        "WHERE Item.ItemID = ?item"),
    # StoreBid
    "sb_insert": (
        "INSERT INTO Bid SET BidID = ?, BidQty = ?qty, "
        "BidAmount = ?amount, BidDate = ?date "
        "AND CONNECT TO Bidder(?user), Item(?item)"),
    "sb_update_item": (
        "UPDATE Item SET NbOfBids = ?nb_of_bids, MaxBid = ?max_bid "
        "WHERE Item.ItemID = ?item"),
    # PutComment
    "pc_auth": (
        "SELECT User.UserPassword FROM User WHERE User.UserID = ?user"),
    "pc_item": (
        "SELECT Item.ItemName FROM Item WHERE Item.ItemID = ?item"),
    "pc_to_user": (
        "SELECT User.UserNickname FROM User WHERE User.UserID = ?to_user"),
    # StoreComment
    "sc_insert": (
        "INSERT INTO Comment SET CommentID = ?, "
        "CommentRating = ?rating, CommentDate = ?date, "
        "CommentText = ?text AND CONNECT TO Author(?user), "
        "Recipient(?to_user), Item(?item)"),
    "sc_update_rating": (
        "UPDATE User SET UserRating = ?rating "
        "WHERE User.UserID = ?to_user"),
    # AboutMe
    "am_user": (
        "SELECT User.UserNickname, User.UserEmail, User.UserRating, "
        "User.UserBalance FROM User WHERE User.UserID = ?user"),
    "am_items_selling": (
        "SELECT Item.ItemID, Item.ItemName, Item.InitialPrice, "
        "Item.MaxBid, Item.EndDate "
        "FROM Item.Seller WHERE User.UserID = ?user"),
    "am_old_items": (
        "SELECT OldItem.OldItemID, OldItem.OldItemName, "
        "OldItem.OldItemSoldPrice "
        "FROM OldItem.Seller WHERE User.UserID = ?user"),
    "am_bid_items": (
        "SELECT Item.ItemID, Item.ItemName, Item.EndDate "
        "FROM Item.Bids.Bidder WHERE User.UserID = ?user"),
    "am_purchases": (
        "SELECT BuyNow.BuyNowID, BuyNow.BuyNowQty, BuyNow.BuyNowDate "
        "FROM BuyNow.Buyer WHERE User.UserID = ?user"),
    "am_bought_items": (
        "SELECT Item.ItemID, Item.ItemName "
        "FROM Item.BuyNows.Buyer WHERE User.UserID = ?user"),
    "am_comments": (
        "SELECT Comment.CommentID, Comment.CommentText, "
        "Comment.CommentRating "
        "FROM Comment.Recipient WHERE User.UserID = ?user"),
    # RegisterItem
    "ri_insert": (
        "INSERT INTO Item SET ItemID = ?, ItemName = ?name, "
        "ItemDescription = ?description, InitialPrice = ?initial_price, "
        "ItemQuantity = ?quantity, ReservePrice = ?reserve_price, "
        "BuyNowPrice = ?buy_now_price, NbOfBids = ?nb_of_bids, "
        "MaxBid = ?max_bid, StartDate = ?start_date, EndDate = ?end_date "
        "AND CONNECT TO Seller(?user), Category(?category)"),
    # RegisterUser
    "ru_insert": (
        "INSERT INTO User SET UserID = ?, UserFirstName = ?first_name, "
        "UserLastName = ?last_name, UserNickname = ?nickname, "
        "UserPassword = ?password, UserEmail = ?email, "
        "UserRating = ?rating, UserBalance = ?balance, "
        "UserCreationDate = ?creation_date "
        "AND CONNECT TO Region(?region)"),
}


def rubis_workload(model, mix="bidding"):
    """Build the weighted RUBiS workload over a RUBiS model.

    Every statement carries one weight per mix: its transaction's
    frequency in that mix (zero when the transaction is absent, e.g.
    write transactions under the browsing mix).
    """
    statement_mixes = {}
    for transaction, labels in TRANSACTIONS.items():
        for mix_name in ("bidding", "browsing"):
            weight = transaction_weights(mix_name).get(transaction, 0.0)
            for label in labels:
                statement_mixes.setdefault(label, {})[mix_name] = weight
    workload = Workload(model, mix=mix)
    for label, text in STATEMENTS.items():
        mixes = statement_mixes.get(label)
        if mixes is None:  # pragma: no cover - configuration guard
            raise ValueError(f"statement {label!r} belongs to no transaction")
        workload.add_statement(text, label=label, mixes=mixes)
    return workload
