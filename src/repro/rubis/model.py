"""The RUBiS conceptual model: eight entity sets, eleven relationships.

Entity counts follow the RUBiS database specification's ratios, scaled
by the number of users (the paper populated 200,000 users; the default
here is laptop-friendly and the benchmarks scale it up).  ``Category``
carries a constant ``Dummy`` attribute so that the browse-all-categories
request is expressible in the query language, the same device the
original NoSE workload used.
"""

from __future__ import annotations

from repro.model import (
    DateField,
    Entity,
    FloatField,
    IDField,
    IntegerField,
    Model,
    StringField,
)


def rubis_counts(users):
    """Entity-set sizes derived from the user count (RUBiS ratios)."""
    return {
        "Region": 62,
        "Category": 20,
        "User": users,
        "Item": max(users // 30, 20),
        "OldItem": max(users // 2, 20),
        "Bid": max(users // 3, 60),
        "Comment": max(users // 2, 20),
        "BuyNow": max(users // 90, 10),
    }


def rubis_model(users=20_000):
    """Build the RUBiS entity graph (8 entities, 11 relationships)."""
    counts = rubis_counts(users)
    model = Model("rubis")
    model.add_entity(Entity("Region", count=counts["Region"])).add_fields(
        IDField("RegionID"),
        StringField("RegionName", size=15),
    )
    model.add_entity(Entity("Category", count=counts["Category"])).add_fields(
        IDField("CategoryID"),
        StringField("CategoryName", size=20),
        IntegerField("Dummy", cardinality=1, size=1),
    )
    model.add_entity(Entity("User", count=counts["User"])).add_fields(
        IDField("UserID"),
        StringField("UserFirstName", size=10),
        StringField("UserLastName", size=10),
        StringField("UserNickname", size=12),
        StringField("UserPassword", size=12),
        StringField("UserEmail", size=20),
        IntegerField("UserRating", cardinality=100),
        FloatField("UserBalance", cardinality=1000),
        DateField("UserCreationDate", cardinality=365),
    )
    model.add_entity(Entity("Item", count=counts["Item"])).add_fields(
        IDField("ItemID"),
        StringField("ItemName", size=20),
        StringField("ItemDescription", size=100),
        FloatField("InitialPrice", cardinality=1000),
        IntegerField("ItemQuantity", cardinality=10),
        FloatField("ReservePrice", cardinality=1000),
        FloatField("BuyNowPrice", cardinality=1000),
        IntegerField("NbOfBids", cardinality=100),
        FloatField("MaxBid", cardinality=1000),
        DateField("StartDate", cardinality=365),
        DateField("EndDate", cardinality=365),
    )
    model.add_entity(Entity("OldItem", count=counts["OldItem"])).add_fields(
        IDField("OldItemID"),
        StringField("OldItemName", size=20),
        FloatField("OldItemSoldPrice", cardinality=1000),
        DateField("OldItemEndDate", cardinality=365),
    )
    model.add_entity(Entity("Bid", count=counts["Bid"])).add_fields(
        IDField("BidID"),
        IntegerField("BidQty", cardinality=10),
        FloatField("BidAmount", cardinality=1000),
        DateField("BidDate", cardinality=365),
    )
    model.add_entity(Entity("Comment", count=counts["Comment"])).add_fields(
        IDField("CommentID"),
        IntegerField("CommentRating", cardinality=11),
        DateField("CommentDate", cardinality=365),
        StringField("CommentText", size=80),
    )
    model.add_entity(Entity("BuyNow", count=counts["BuyNow"])).add_fields(
        IDField("BuyNowID"),
        IntegerField("BuyNowQty", cardinality=10),
        DateField("BuyNowDate", cardinality=365),
    )
    # the eleven relationships of the paper's adapted model
    model.add_relationship("Region", "Users", "User", "Region")
    model.add_relationship("User", "ItemsSold", "Item", "Seller")
    model.add_relationship("Category", "Items", "Item", "Category")
    model.add_relationship("User", "OldItemsSold", "OldItem", "Seller")
    model.add_relationship("User", "Bids", "Bid", "Bidder")
    model.add_relationship("Item", "Bids", "Bid", "Item")
    model.add_relationship("User", "CommentsWritten", "Comment", "Author")
    model.add_relationship("User", "CommentsReceived", "Comment",
                           "Recipient")
    model.add_relationship("Item", "Comments", "Comment", "Item")
    model.add_relationship("User", "Purchases", "BuyNow", "Buyer")
    model.add_relationship("Item", "BuyNows", "BuyNow", "Item")
    return model.validate()
