"""Random entity graphs based on the Watts–Strogatz model (§VII-B).

"The entity graph generation is based on the Watts-Strogatz random
graph model.  After generating the graph, we randomly assign a direction
to each edge and create a foreign key at the head node.  We then add a
random number of attributes to each entity in the graph."
"""

from __future__ import annotations

import random

import networkx

from repro.model import (
    Entity,
    FloatField,
    IDField,
    IntegerField,
    Model,
    StringField,
)

_FIELD_TYPES = (StringField, IntegerField, FloatField)


def random_model(entities=8, seed=0, mean_degree=4, rewire_probability=0.3,
                 min_attributes=2, max_attributes=6, min_count=100,
                 max_count=100_000):
    """Generate a random entity graph with ``entities`` entity sets.

    Returns a validated :class:`~repro.model.Model`.  The graph is
    connected (``connected_watts_strogatz_graph``), so every pair of
    entities is reachable and random walks can always proceed.
    """
    rng = random.Random(seed)
    degree = min(mean_degree, entities - 1)
    graph = networkx.connected_watts_strogatz_graph(
        entities, max(degree, 2), rewire_probability,
        seed=rng.randrange(2 ** 31))
    model = Model(f"random_{seed}")
    for node in graph.nodes:
        entity = Entity(f"E{node}",
                        count=rng.randint(min_count, max_count))
        entity.add_field(IDField(f"E{node}ID"))
        for attribute in range(rng.randint(min_attributes,
                                           max_attributes)):
            field_type = rng.choice(_FIELD_TYPES)
            entity.add_field(field_type(
                f"E{node}A{attribute}",
                cardinality=rng.randint(2, entity.count)))
        model.add_entity(entity)
    for edge_number, (left, right) in enumerate(sorted(graph.edges)):
        # random direction: the head node holds the foreign key
        if rng.random() < 0.5:
            left, right = right, left
        kind = rng.choice(["one_to_many", "one_to_many", "one_to_one"])
        # random participation per direction, so the fuzzer covers both
        # regimes: total edges let the planner use larger column
        # families, partial edges must keep unlinked rows answerable
        model.add_relationship(
            f"E{left}", f"R{edge_number}To{right}",
            f"E{right}", f"R{edge_number}From{left}", kind=kind,
            forward_total=rng.random() < 0.5,
            reverse_total=rng.random() < 0.5)
    return model.validate()
