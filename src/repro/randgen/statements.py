"""Random statements over a random entity graph (§VII-B).

Statements follow the paper's recipe: a random walk through the entity
graph fixes the statement path; WHERE clauses draw up to three random
predicates over attributes along the path (at least one equality, at
most one range); queries select random attributes of the target entity
and updates modify them.
"""

from __future__ import annotations

import random

from repro.model.paths import KeyPath
from repro.workload import Workload
from repro.workload.conditions import Condition
from repro.workload.statements import Insert, Query, Update


def _random_walk(model, rng, max_path):
    """A loop-free random walk: (start entity, foreign keys taken)."""
    entity = rng.choice(sorted(model.entities.values(),
                               key=lambda e: e.name))
    visited = {entity.name}
    keys = []
    length = rng.randint(1, max_path)
    while len(keys) + 1 < length:
        options = [key for key in entity.foreign_keys
                   if key.entity.name not in visited]
        if not options:
            break
        key = rng.choice(options)
        keys.append(key)
        entity = key.entity
        visited.add(entity.name)
    return keys


def _random_conditions(path, rng, count=3):
    """Up to ``count`` predicates over distinct attributes on the path.

    The first predicate is an equality on the far end of the path (the
    natural anchor of a get request); later ones may include one range.
    """
    conditions = []
    used = set()
    anchor_fields = [f for f in path.last.attributes]
    anchor = rng.choice(anchor_fields)
    conditions.append(Condition(anchor, "=", f"p{len(conditions)}"))
    used.add(anchor.id)
    candidates = [field
                  for entity in path.entities
                  for field in entity.attributes
                  if field.id not in used]
    rng.shuffle(candidates)
    have_range = False
    for field in candidates[:max(count - 1, 0)]:
        if not have_range and rng.random() < 0.4:
            operator = rng.choice([">", ">=", "<", "<="])
            have_range = True
        else:
            operator = "="
        conditions.append(Condition(field, operator,
                                    f"p{len(conditions)}"))
    return conditions


def _random_query(model, rng, number, max_path):
    keys = _random_walk(model, rng, max_path)
    entity = keys[0].parent if keys else rng.choice(
        sorted(model.entities.values(), key=lambda e: e.name))
    path = KeyPath(entity, keys)
    conditions = _random_conditions(path, rng)
    selectable = path.first.attributes
    take = rng.randint(1, len(selectable))
    select = rng.sample(selectable, take)
    return Query(path, select, conditions, label=f"q{number}")


def _random_update(model, rng, number, max_path):
    keys = _random_walk(model, rng, max_path)
    entity = keys[0].parent if keys else rng.choice(
        sorted(model.entities.values(), key=lambda e: e.name))
    path = KeyPath(entity, keys)
    conditions = _random_conditions(path, rng, count=2)
    settable = [field for field in path.first.data_fields]
    if not settable:
        return None
    field = rng.choice(settable)
    return Update(path, {field: "v0"}, conditions, label=f"u{number}")


def _random_insert(model, rng, number):
    entity = rng.choice(sorted(model.entities.values(),
                               key=lambda e: e.name))
    settings = {field: field.name for field in entity.attributes}
    connections = []
    for key in entity.foreign_keys:
        # a total direction must be connected at insert time, or the
        # new row would violate the model's participation contract
        if key.total or rng.random() < 0.5:
            connections.append((key, key.name))
    return Insert(KeyPath(entity), settings, connections,
                  label=f"i{number}")


def random_workload(model, queries=10, updates=3, inserts=2, seed=0,
                    max_path=4):
    """A random weighted workload over ``model`` (Fig 13 methodology)."""
    rng = random.Random(seed)
    workload = Workload(model)
    for number in range(queries):
        statement = _random_query(model, rng, number, max_path)
        workload.add_statement(statement,
                               weight=round(rng.uniform(0.1, 10.0), 2))
    made = 0
    attempt = 0
    while made < updates and attempt < updates * 5:
        statement = _random_update(model, rng, made, max_path)
        attempt += 1
        if statement is not None:
            workload.add_statement(statement,
                                   weight=round(rng.uniform(0.1, 5.0), 2))
            made += 1
    for number in range(inserts):
        statement = _random_insert(model, rng, number)
        workload.add_statement(statement,
                               weight=round(rng.uniform(0.1, 5.0), 2))
    return workload
