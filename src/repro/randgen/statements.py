"""Random statements over a random entity graph (§VII-B).

Statements follow the paper's recipe: a random walk through the entity
graph fixes the statement path; WHERE clauses draw up to three random
predicates over attributes along the path (at least one equality, at
most one range); queries select random attributes of the target entity
and updates modify them.
"""

from __future__ import annotations

import random

from repro.model.fields import FloatField, IntegerField
from repro.model.paths import KeyPath
from repro.workload import Workload
from repro.workload.conditions import Condition
from repro.workload.statements import Aggregate, Insert, Query, Update


def _random_walk(model, rng, max_path):
    """A loop-free random walk: (start entity, foreign keys taken)."""
    entity = rng.choice(sorted(model.entities.values(),
                               key=lambda e: e.name))
    visited = {entity.name}
    keys = []
    length = rng.randint(1, max_path)
    while len(keys) + 1 < length:
        options = [key for key in entity.foreign_keys
                   if key.entity.name not in visited]
        if not options:
            break
        key = rng.choice(options)
        keys.append(key)
        entity = key.entity
        visited.add(entity.name)
    return keys


def _random_conditions(path, rng, count=3, extended=False, prefix="p"):
    """Up to ``count`` predicates over distinct attributes on the path.

    The first predicate is an equality on the far end of the path (the
    natural anchor of a get request); later ones may include one range.
    In ``extended`` mode the anchor may become an ``IN`` list and later
    predicates may be ``!=`` — the constructs of the extended statement
    language.  ``prefix`` keeps parameter names distinct across the
    branches of a disjunctive query.
    """
    conditions = []
    used = set()
    anchor_fields = [f for f in path.last.attributes]
    anchor = rng.choice(anchor_fields)
    if extended and rng.random() < 0.35:
        members = rng.randint(2, 3)
        names = tuple(f"{prefix}{len(conditions)}_{member}"
                      for member in range(members))
        conditions.append(Condition(anchor, "IN", names))
    else:
        conditions.append(Condition(anchor, "=",
                                    f"{prefix}{len(conditions)}"))
    used.add(anchor.id)
    candidates = [field
                  for entity in path.entities
                  for field in entity.attributes
                  if field.id not in used]
    rng.shuffle(candidates)
    have_range = False
    for field in candidates[:max(count - 1, 0)]:
        if not have_range and rng.random() < 0.4:
            operator = rng.choice([">", ">=", "<", "<="])
            have_range = True
        elif extended and rng.random() < 0.3:
            operator = "!="
        else:
            operator = "="
        conditions.append(Condition(field, operator,
                                    f"{prefix}{len(conditions)}"))
    return conditions


def _random_select_items(path, rng, extended):
    """Selected columns; in extended mode, sometimes a GROUP BY query."""
    selectable = path.first.attributes
    if extended and rng.random() < 0.3:
        group_by = rng.sample(selectable,
                              rng.randint(1, min(2, len(selectable))))
        items = list(group_by)
        items.append(Aggregate("COUNT"))
        numeric = [field for field in selectable
                   if isinstance(field, (IntegerField, FloatField))
                   and field not in group_by]
        folds = [field for field in selectable
                 if field not in group_by]
        if numeric and rng.random() < 0.6:
            items.append(Aggregate(rng.choice(("SUM", "AVG")),
                                   rng.choice(numeric)))
        if folds and rng.random() < 0.5:
            items.append(Aggregate(rng.choice(("MIN", "MAX")),
                                   rng.choice(folds)))
        return items, tuple(group_by)
    take = rng.randint(1, len(selectable))
    return rng.sample(selectable, take), ()


def _random_query(model, rng, number, max_path, extended=False):
    keys = _random_walk(model, rng, max_path)
    entity = keys[0].parent if keys else rng.choice(
        sorted(model.entities.values(), key=lambda e: e.name))
    path = KeyPath(entity, keys)
    conditions = _random_conditions(path, rng, extended=extended)
    select, group_by = _random_select_items(path, rng, extended)
    if extended and rng.random() < 0.25:
        other = _random_conditions(path, rng, count=2,
                                   extended=extended, prefix="o")
        return Query(path, select, disjuncts=(conditions, other),
                     group_by=group_by, label=f"q{number}")
    return Query(path, select, conditions, group_by=group_by,
                 label=f"q{number}")


def _random_update(model, rng, number, max_path, extended=False):
    keys = _random_walk(model, rng, max_path)
    entity = keys[0].parent if keys else rng.choice(
        sorted(model.entities.values(), key=lambda e: e.name))
    path = KeyPath(entity, keys)
    conditions = _random_conditions(path, rng, count=2,
                                    extended=extended)
    settable = [field for field in path.first.data_fields]
    if not settable:
        return None
    field = rng.choice(settable)
    return Update(path, {field: "v0"}, conditions, label=f"u{number}")


def _random_insert(model, rng, number):
    entity = rng.choice(sorted(model.entities.values(),
                               key=lambda e: e.name))
    settings = {field: field.name for field in entity.attributes}
    connections = []
    for key in entity.foreign_keys:
        # a total direction must be connected at insert time, or the
        # new row would violate the model's participation contract
        if key.total or rng.random() < 0.5:
            connections.append((key, key.name))
    return Insert(KeyPath(entity), settings, connections,
                  label=f"i{number}")


def random_workload(model, queries=10, updates=3, inserts=2, seed=0,
                    max_path=4, extended=False):
    """A random weighted workload over ``model`` (Fig 13 methodology).

    ``extended`` additionally draws the extended statement-language
    constructs — IN-lists, ``!=`` predicates, OR disjunctions and
    GROUP BY aggregation; the default leaves the draw sequence exactly
    as before, so existing seeds reproduce byte-identical workloads.
    """
    rng = random.Random(seed)
    workload = Workload(model)
    for number in range(queries):
        statement = _random_query(model, rng, number, max_path,
                                  extended=extended)
        workload.add_statement(statement,
                               weight=round(rng.uniform(0.1, 10.0), 2))
    made = 0
    attempt = 0
    while made < updates and attempt < updates * 5:
        statement = _random_update(model, rng, made, max_path,
                                   extended=extended)
        attempt += 1
        if statement is not None:
            workload.add_statement(statement,
                                   weight=round(rng.uniform(0.1, 5.0), 2))
            made += 1
    for number in range(inserts):
        statement = _random_insert(model, rng, number)
        workload.add_statement(statement,
                               weight=round(rng.uniform(0.1, 5.0), 2))
    return workload
