"""Random workload generation for advisor-scalability experiments.

Implements the paper's §VII-B methodology: entity graphs drawn from the
Watts–Strogatz small-world model (edges directed randomly, a foreign key
created at the head node), random attributes per entity, and statements
defined by random walks through the graph with randomly generated
predicates.
"""

from repro.randgen.data import (
    BindingGenerator,
    random_dataset,
    random_value,
)
from repro.randgen.network import random_model
from repro.randgen.statements import random_workload

__all__ = [
    "BindingGenerator",
    "random_dataset",
    "random_model",
    "random_value",
    "random_workload",
]
