"""Random datasets and parameter bindings for arbitrary models.

The differential oracle (:mod:`repro.verify`) needs ground-truth data
and concrete statement parameters for *any* conceptual model — including
the Watts–Strogatz random models of §VII-B, which have no hand-written
data generator.  This module populates a :class:`Dataset` for any model
and draws parameter bindings for any statement, deterministically under
a seed.

Generated data deliberately includes NULLs (a fraction of non-key
attribute values) and dangling relationship ends, because denormalized
maintenance bugs hide exactly there.
"""

from __future__ import annotations

import datetime

from repro.backend.dataset import Dataset
from repro.model.fields import (
    BooleanField,
    DateField,
    FloatField,
    IDField,
    IntegerField,
    StringField,
)
from repro.workload.statements import Connect, Insert, Update

#: reference timestamp for generated DateField values (fixed for
#: reproducibility, like repro.rubis.datagen.NOW)
EPOCH = datetime.datetime(2016, 1, 1)


def random_value(field, rng, pool=None):
    """A random concrete value for one field, honouring its type.

    ``pool`` caps the number of distinct values (defaults to the field's
    cardinality), so equality predicates have realistic selectivity.
    """
    distinct = max(int(pool or field.cardinality or 10), 1)
    choice = rng.randrange(distinct)
    if isinstance(field, BooleanField):
        return choice % 2 == 0
    if isinstance(field, DateField):
        return EPOCH + datetime.timedelta(days=choice)
    if isinstance(field, FloatField):
        return float(choice) * 1.5
    if isinstance(field, (IDField, IntegerField)):
        return choice
    if isinstance(field, StringField):
        return f"{field.name}-{choice}"
    raise TypeError(f"cannot generate a value for {field!r}")


def random_dataset(model, seed=0, rows_per_entity=24, null_rate=0.1,
                   orphan_rate=0.1):
    """Populate a small :class:`Dataset` for any validated model.

    Every entity receives up to ``rows_per_entity`` rows (fewer when the
    model declares a smaller count); ``null_rate`` of non-key attribute
    values are NULL, and ``orphan_rate`` of relationship targets are
    left unconnected.  Relationship directions the model declares
    ``total`` are repaired afterwards — every source row gets at least
    one link — so the data honors the participation contract the
    planner's larger-column-family rule depends on.  Callers should
    follow with :meth:`Dataset.sync_counts` so advisor statistics match
    the data.
    """
    import random

    rng = random.Random(seed)
    dataset = Dataset(model)
    counts = {}
    for name, entity in model.entities.items():
        counts[name] = max(min(entity.count, rows_per_entity), 1)
        value_pool = max(counts[name] // 2, 2)
        for identifier in range(counts[name]):
            row = {entity.id_field.name: identifier}
            for field in entity.data_fields:
                if rng.random() < null_rate:
                    row[field.name] = None
                else:
                    row[field.name] = random_value(
                        field, rng, pool=min(field.cardinality,
                                             value_pool))
            dataset.add_row(name, row)
    seen_edges = set()
    for name, entity in model.entities.items():
        for key in entity.foreign_keys:
            if key.id in seen_edges:
                continue
            seen_edges.add(key.id)
            if key.reverse is not None:
                seen_edges.add(key.reverse.id)
            for target in range(counts[key.entity.name]):
                if rng.random() < orphan_rate:
                    continue
                source = rng.randrange(counts[name])
                dataset.connect(name, source, key, target)
    # repair mandatory participation: a total direction may not leave
    # any source row unlinked
    for name, entity in model.entities.items():
        for key in entity.foreign_keys:
            if not key.total:
                continue
            for source in range(counts[name]):
                if not dataset.related(key, source):
                    target = rng.randrange(counts[key.entity.name])
                    dataset.connect(name, source, key, target)
    return dataset


class BindingGenerator:
    """Draws concrete parameter bindings for statements over a dataset.

    Values for predicates are sampled from the live data (so statements
    usually match rows), inserts receive fresh primary keys that never
    collide with existing rows, and CONNECT/DISCONNECT endpoints are
    sampled from existing entity rows.  Deterministic under ``seed``.
    """

    def __init__(self, dataset, seed=0, null_rate=0.05):
        import random

        self.dataset = dataset
        self.rng = random.Random(seed)
        self.null_rate = null_rate
        self._next_id = {name: max((i for i in rows
                                    if isinstance(i, int)), default=0)
                         + 1_000_000
                         for name, rows in dataset.rows.items()}

    def _fresh_id(self, entity_name):
        value = self._next_id[entity_name]
        self._next_id[entity_name] = value + 1
        return value

    def _sample_id(self, entity):
        rows = self.dataset.rows[entity.name]
        if not rows:
            return self._fresh_id(entity.name)
        keys = list(rows)
        return keys[self.rng.randrange(len(keys))]

    def _sample_value(self, field):
        """A value drawn from the live distribution of ``field``."""
        rows = self.dataset.rows[field.parent.name]
        if rows and self.rng.random() >= self.null_rate:
            keys = list(rows)
            row = rows[keys[self.rng.randrange(len(keys))]]
            return row.get(field.id)
        if self.rng.random() < 0.5:
            return None
        return random_value(field, self.rng)

    def bindings_for(self, statement):
        """``{parameter name: value}`` covering every placeholder."""
        params = {}
        if isinstance(statement, Connect):  # includes Disconnect
            params[statement.source_parameter] = self._sample_id(
                statement.entity)
            params[statement.target_parameter] = self._sample_id(
                statement.key_path.last)
            return params
        for condition in statement.conditions:
            if condition.is_membership:
                # one independently drawn value per IN-list member
                for name in condition.parameter:
                    params[name] = self._sample_value(condition.field)
            else:
                params[condition.parameter] = self._sample_value(
                    condition.field)
        if isinstance(statement, Insert):
            for field, parameter in statement.settings.items():
                if field is statement.entity.id_field:
                    params[parameter] = self._fresh_id(
                        statement.entity.name)
                else:
                    params[parameter] = random_value(field, self.rng)
            for key, parameter in statement.connections:
                params[parameter] = self._sample_id(key.entity)
        elif isinstance(statement, Update):
            for field, parameter in statement.settings.items():
                params[parameter] = random_value(field, self.rng)
        return params
