"""The NoSE schema advisor facade (Fig 2 / Fig 4 of the paper).

Wires the four stages together — candidate enumeration, query planning,
schema optimization, plan recommendation — and records a wall-clock
breakdown per stage so the Fig 13 runtime-decomposition experiment can
be reproduced (cost calculation / BIP construction / BIP solving /
other).

The pipeline is staged and cached: :meth:`Advisor.prepare` runs
enumeration and plan-space generation and caches the result keyed by
the *structure* of the workload's active statements, and
:meth:`Advisor.recommend_prepared` runs costing, pruning and the BIP.
Weight-only changes — the repeated-tuning scenario of time-dependent
workloads — therefore skip enumeration and planning entirely and
re-solve a re-costed program.  :meth:`Advisor.recommend` remains the
one-shot entry point as a thin wrapper over the two stages.
"""

from __future__ import annotations

import inspect
import logging
import time
import warnings
from dataclasses import dataclass

from repro import dominance, telemetry
from repro.cost import CassandraCostModel
from repro.enumerator import CandidateEnumerator
from repro.enumerator.support import modifies
from repro.exceptions import TruncationWarning
from repro.explain import ExplainData, prune_entry, prune_record
from repro.optimizer import BIPOptimizer, OptimizationProblem
from repro.optimizer.results import SchemaRecommendation
from repro.parallel import parallel_map
from repro.pipeline import (
    ArtifactStore,
    PlanArtifact,
    UpdatePlanArtifact,
)
from repro.planner import QueryPlanner, UpdatePlanner
from repro.planner.plans import UpdatePlan
from repro.workload.digest import statement_signature

__all__ = [
    "Advisor",
    "AdvisorTiming",
    "PreparedWorkload",
    "SchemaRecommendation",
    "prune_dominated_plans",
    "prune_plan_space",
]

logger = logging.getLogger("repro.advisor")


def _signature(plan):
    # cost ties are broken by plan signature for reproducibility; plain
    # stand-in plan objects (as used in tests) may not carry one
    return dominance._signature(plan)


def prune_dominated_plans(plans, keep=None, removals=None):
    """Drop plans that cannot appear in any optimal solution.

    Two plans using the same set of column families impose identical
    constraints on the BIP, so only the cheaper one can ever be chosen;
    we keep the cheapest plan per distinct column-family set, and
    optionally only the ``keep`` cheapest overall (the plan space stays
    feasible since every retained plan is self-contained).  Cost ties
    are broken by plan signature so the result is deterministic across
    runs and hash seeds.  Requires costed plans.

    ``removals`` is an optional list receiving one pruning-ledger entry
    per dropped plan, naming the rule that killed it and the plan that
    dominated it.
    """
    pruned = dominance.dedupe_cheapest(plans, removals=removals)
    if keep is not None:
        if removals is not None:
            removals.extend(prune_entry(plan, "cap")
                            for plan in pruned[keep:])
        pruned = pruned[:keep]
    return pruned


def prune_plan_space(plans, keep=None, removals=None, engine=None):
    """Dominance-prune one statement's plan space for the optimizer.

    Applies the per-column-family-set rule of
    :func:`prune_dominated_plans`, then additionally drops any plan
    whose column-family set is a proper superset of a cheaper (or
    equal-cost) kept plan's: wherever the superset plan is feasible the
    subset plan is too, using no more storage and costing no more, so
    the superset plan appears in no optimal solution — the argument
    holds under a space limit and for the schema-minimising second
    solve as well.  This typically halves the BIP's plan columns.
    ``keep`` caps the result (cheapest first) after both rules.
    ``removals`` collects pruning-ledger entries as in
    :func:`prune_dominated_plans`.

    ``engine`` selects the superset-rule implementation
    (:func:`repro.dominance.superset_filter`): ``"vector"`` for the
    bitset-matrix path, ``"scalar"`` for the reference pairwise scan,
    ``"auto"``/None to pick by space size (overridable via the
    ``NOSE_VECTORIZE`` environment variable).  Both produce
    byte-identical plans and ledger entries.
    """
    plans = list(plans)
    pruned = dominance.dedupe_cheapest(plans, removals=removals)
    kept = dominance.superset_filter(pruned, removals=removals,
                                     engine=engine)
    capped = kept if keep is None else kept[:keep]
    if removals is not None and keep is not None:
        removals.extend(prune_entry(plan, "cap") for plan in kept[keep:])
    active = telemetry.current()
    if active.enabled:
        active.count("prune.plans_in", len(plans))
        active.count("prune.removed_duplicate_cfset",
                      len(plans) - len(pruned))
        active.count("prune.removed_superset", len(pruned) - len(kept))
        active.count("prune.removed_cap", len(kept) - len(capped))
        active.count("prune.plans_out", len(capped))
    return capped


@dataclass
class AdvisorTiming:
    """Wall-clock seconds spent in each advisor stage.

    ``cost_calculation``, ``bip_construction`` and ``bip_solving`` match
    the three named components of the paper's Fig 13; enumeration,
    planning, dominance pruning and result extraction form the figure's
    "other" share, each attributed to its own bucket so no stage time
    lands unaccounted between buckets.  ``bip_construction`` covers
    problem assembly plus program construction (or re-costing on a
    cache hit); ``recommendation`` is result extraction.  Stages that a
    prepared-workload cache hit skips report zero.
    """

    enumeration: float = 0.0
    planning: float = 0.0
    cost_calculation: float = 0.0
    pruning: float = 0.0
    bip_construction: float = 0.0
    bip_solving: float = 0.0
    recommendation: float = 0.0
    total: float = 0.0
    candidates: int = 0
    query_plan_count: int = 0
    support_plan_count: int = 0
    #: cache hits serving this call: 1 when the prepared workload came
    #: from the advisor's structural cache, plus lookup-cost memo hits
    #: during this call's costing pass
    cache_hits: int = 0
    #: statements (incl. support queries) whose plan space was capped
    truncated_queries: int = 0
    #: statements whose plan spaces were served from the per-statement
    #: artifact store during this call's prepare (delta reuse)
    reused_statements: int = 0
    #: statements actually re-enumerated/re-planned during prepare
    replanned_statements: int = 0

    @property
    def other(self):
        """Everything outside the three Fig 13 named components."""
        named = (self.cost_calculation + self.bip_construction
                 + self.bip_solving)
        return max(self.total - named, 0.0)

    def stage_breakdown(self):
        """Disjoint wall-clock buckets that partition ``total``.

        Every named stage appears exactly once, and the residual
        ``other`` bucket covers only the bookkeeping *between* stages —
        so the values sum to ``total`` (to float precision) and the row
        is safe to stack in a chart or to re-aggregate.  Contrast
        :meth:`as_figure13_row`, whose coarser ``other`` bucket *rolls
        up* several named stages for the paper's figure.
        """
        stages = {
            "enumeration": self.enumeration,
            "planning": self.planning,
            "cost_calculation": self.cost_calculation,
            "pruning": self.pruning,
            "bip_construction": self.bip_construction,
            "bip_solving": self.bip_solving,
            "recommendation": self.recommendation,
        }
        stages["other"] = max(self.total - sum(stages.values()), 0.0)
        return stages

    def as_figure13_row(self):
        """The four series of Fig 13 for one workload size.

        The figure names cost calculation, BIP construction and BIP
        solving; everything else — enumeration, planning, pruning,
        result extraction and inter-stage bookkeeping — is its
        ``other`` share.  The four buckets partition ``total``.
        """
        stages = self.stage_breakdown()
        return {
            "cost_calculation": stages["cost_calculation"],
            "bip_construction": stages["bip_construction"],
            "bip_solving": stages["bip_solving"],
            "other": (stages["enumeration"] + stages["planning"]
                      + stages["pruning"] + stages["recommendation"]
                      + stages["other"]),
            "total": self.total,
        }


class PreparedWorkload:
    """Reusable product of the enumeration and planning stages.

    Created by :meth:`Advisor.prepare` for one workload *structure*
    (weights excluded).  Besides the candidate pool and raw plan
    spaces, it accumulates the weight-independent downstream artifacts
    — costed and pruned plan spaces, and one constructed program per
    space limit — as :meth:`Advisor.recommend_prepared` produces them,
    so repeated solves over the same structure redo only the cost
    vector and the solve itself.
    """

    def __init__(self, key, workload, candidates, query_plans,
                 update_plans, enumeration_seconds=0.0,
                 planning_seconds=0.0, plan_artifacts=None,
                 update_artifacts=None):
        self.key = key
        #: the workload last prepared/looked-up with this structure;
        #: supplies default weights to recommend_prepared
        self.workload = workload
        self.candidates = candidates
        #: {query: PlanSpace} — raw, unpruned plan spaces
        self.query_plans = dict(query_plans)
        #: {update: [UpdatePlan]} — raw maintenance plans
        self.update_plans = dict(update_plans)
        self.enumeration_seconds = enumeration_seconds
        self.planning_seconds = planning_seconds
        #: {query: PlanArtifact} — store entries backing query_plans;
        #: costed/pruned derivatives ride here for cross-prepare reuse
        self.plan_artifacts = dict(plan_artifacts or {})
        #: {update: [UpdatePlanArtifact]} — parallel to update_plans
        self.update_artifacts = dict(update_artifacts or {})
        #: delta accounting for the prepare that produced (or served)
        #: this object; mirrored into AdvisorTiming per recommend
        self.reused_statements = 0
        self.replanned_statements = 0
        #: statements (queries and support queries) whose enumeration
        #: hit the planner's plan cap
        truncated = [query for query, space in self.query_plans.items()
                     if getattr(space, "truncated", False)]
        for plans in self.update_plans.values():
            for update_plan in plans:
                truncated.extend(update_plan.truncated_support)
        self.truncated = tuple(truncated)
        #: times this prepared workload was served from the cache
        self.reuse_count = 0
        # lazily filled by Advisor.recommend_prepared
        self._fresh = True
        self._costed_by = None
        self._cost_seconds = 0.0
        self._cost_cache_hits = 0
        self._pruned_query_plans = None
        self._pruned_update_plans = None
        self._pruning_seconds = 0.0
        #: {statement label: pruning record} — filled during pruning
        self._prune_ledger = {}
        self._programs = {}

    def consume_fresh(self):
        """True on the first call after actual enumeration/planning —
        the caller then attributes those stage timings to itself."""
        fresh, self._fresh = self._fresh, False
        return fresh

    @property
    def plan_count(self):
        return sum(len(space) for space in self.query_plans.values())

    def __repr__(self):
        return (f"PreparedWorkload(candidates={len(self.candidates)}, "
                f"queries={len(self.query_plans)}, "
                f"updates={len(self.update_plans)}, "
                f"reused={self.reuse_count})")


def _statement_key(statement):
    """A structural identity for one statement.

    Covers everything enumeration and planning look at — statement
    type, label, path, predicates, selected/ordered fields, settings —
    and deliberately excludes weights and parameter names, so workloads
    differing only in weights share a prepared workload.
    """
    parts = [
        type(statement).__name__,
        statement.label or "",
        statement.key_path.signature,
        tuple((condition.field.id, condition.operator)
              for condition in statement.conditions),
    ]
    select = getattr(statement, "select", None)
    if select is not None:
        parts.append(tuple(field.id for field in select))
        parts.append(tuple(field.id
                           for field in getattr(statement, "order_by", ())))
        parts.append(getattr(statement, "limit", None))
    settings = getattr(statement, "settings", None)
    if settings is not None:
        parts.append(tuple(sorted(field.id for field in settings)))
    connections = getattr(statement, "connections", None)
    if connections is not None:
        parts.append(tuple(sorted(key.id for key, _ in connections)))
    return tuple(parts)


class Advisor:
    """End-to-end schema advisor.

    >>> advisor = Advisor(model)
    >>> recommendation = advisor.recommend(workload)
    >>> print(recommendation.describe())

    For repeated solves over the same statements with changing weights,
    either keep calling :meth:`recommend` (the structural cache makes
    repeats cheap) or drive the stages explicitly::

    >>> prepared = advisor.prepare(workload)
    >>> for weights in weight_epochs:
    ...     advisor.recommend_prepared(prepared, weights=weights)

    ``cost_model`` defaults to the Cassandra-style model; ``enumerator``
    and ``optimizer`` may be swapped for the ablation studies.  ``jobs``
    fans per-statement planning and costing over a thread pool.
    """

    def __init__(self, model, cost_model=None, enumerator=None,
                 optimizer=None, max_plans=500, prune_to=32,
                 support_prune_to=8, jobs=None, cache_size=8,
                 artifact_cache_size=4096, prune_engine=None):
        self.model = model
        self.cost_model = cost_model or CassandraCostModel()
        self.enumerator = enumerator or CandidateEnumerator(model)
        self.optimizer = optimizer or BIPOptimizer()
        self.max_plans = max_plans
        #: plans kept per query after dominance pruning (None = all)
        self.prune_to = prune_to
        #: plans kept per support query (their spaces are much denser)
        self.support_prune_to = support_prune_to
        #: worker threads for per-statement planning/costing (None = serial)
        self.jobs = jobs
        #: dominance-pruning engine: "vector", "scalar" or "auto"/None
        #: (see repro.dominance; both engines are byte-identical)
        self.prune_engine = prune_engine
        #: prepared workloads kept (FIFO-evicted), keyed by structure
        self.cache_size = cache_size
        self._prepared = {}
        #: per-statement artifacts (enumeration, plan spaces,
        #: maintenance plans), keyed by structural signature + stage
        #: config; every prepare — cold or incremental — goes through
        #: it, so editing one statement replans only that statement
        self.artifacts = ArtifactStore(artifact_cache_size)

    # -- main entry point ----------------------------------------------------

    def _effective_jobs(self, jobs=None):
        """The one resolution path for the worker count.

        Every stage that fans out — planning, costing, pruning — takes
        its ``jobs`` through here, so a per-call override on
        :meth:`prepare`, :meth:`recommend` or :meth:`recommend_prepared`
        is honored everywhere instead of silently reverting to the
        advisor-wide default mid-pipeline.
        """
        return self.jobs if jobs is None else jobs

    def recommend(self, workload, space_limit=None, jobs=None,
                  warm_start=None):
        """Recommend a schema and one plan per statement for a workload.

        A thin wrapper over :meth:`prepare` + :meth:`recommend_prepared`:
        repeated calls with structurally identical workloads (weight
        changes included) reuse the cached plan spaces and program and
        only re-cost and re-solve.  ``warm_start`` optionally passes a
        previous recommendation (or iterable of column families) as an
        incumbent for optimizers that support it — see
        :meth:`recommend_prepared`.
        """
        with telemetry.current().span("recommend"):
            prepared = self.prepare(workload, jobs=jobs)
            return self.recommend_prepared(prepared, weights=workload,
                                           space_limit=space_limit,
                                           warm_start=warm_start,
                                           jobs=jobs)

    # -- stage 1: enumeration + planning -------------------------------------

    def _workload_key(self, workload):
        statements = tuple(_statement_key(statement) for statement, _
                           in workload.weighted_statements)
        return (statements, self.max_plans)

    def prepare(self, workload, jobs=None):
        """Enumerate candidates and generate per-statement plan spaces.

        Preparation is incremental at two levels.  Whole prepared
        workloads are cached on the advisor keyed by the structure of
        the workload's active statements — weights are excluded, so any
        workload differing only in (positive) weights is served with
        enumeration and planning skipped entirely.  Below that, every
        prepare runs through the advisor's per-statement artifact
        store: enumeration results, plan spaces and maintenance plans
        are keyed by structural statement signature plus stage
        configuration, so after an edit only the changed statements are
        re-enumerated and re-planned while unchanged ones are served
        from the store (only the cross-statement Combine step and the
        BIP look across statements and always re-run).  Cold and
        incremental prepares share this one code path — a fresh advisor
        simply starts with an empty store — so incremental results are
        identical to cold ones by construction.  ``jobs`` overrides the
        advisor-wide worker count for this call.
        """
        jobs = self._effective_jobs(jobs)
        active = telemetry.current()
        key = self._workload_key(workload)
        prepared = self._prepared.get(key)
        if prepared is not None:
            prepared.reuse_count += 1
            prepared._fresh = False
            prepared.workload = workload
            total = (len(prepared.query_plans)
                     + len(prepared.update_plans))
            prepared.reused_statements = total
            prepared.replanned_statements = 0
            active.count("advisor.prepared_cache_hits")
            active.count("advisor.delta_reused_statements", total)
            return prepared
        active.count("advisor.prepared_cache_misses")

        with active.span("enumeration"):
            started = time.perf_counter()
            candidates = self._enumerate(workload)
            enumeration_seconds = time.perf_counter() - started

        with active.span("planning"):
            stage = time.perf_counter()
            planner = QueryPlanner(self.model, candidates,
                                   max_plans=self.max_plans)
            update_planner = UpdatePlanner(self.model, planner)
            plan_artifacts = {}
            query_plans, reused_queries = self._plan_queries(
                workload.queries, planner, plan_artifacts, jobs)
            update_artifacts = {}
            update_plans, reused_updates = self._plan_updates(
                workload.updates, planner, update_planner,
                update_artifacts, jobs)
            planning_seconds = time.perf_counter() - stage

        prepared = PreparedWorkload(key, workload, candidates,
                                    query_plans, update_plans,
                                    enumeration_seconds,
                                    planning_seconds,
                                    plan_artifacts=plan_artifacts,
                                    update_artifacts=update_artifacts)
        reused = reused_queries + reused_updates
        replanned = len(query_plans) + len(update_plans) - reused
        prepared.reused_statements = reused
        prepared.replanned_statements = replanned
        active.count("advisor.delta_reused_statements", reused)
        active.count("advisor.delta_replanned_statements", replanned)
        if active.enabled:
            active.gauge("enumeration.pool_size", len(candidates))
            active.gauge("planner.query_plan_count", prepared.plan_count)
            active.count("planner.truncated_statements",
                         len(prepared.truncated))
        self._warn_truncation(prepared)
        if len(self._prepared) >= self.cache_size:
            self._prepared.pop(next(iter(self._prepared)))
        self._prepared[key] = prepared
        return prepared

    def _enumerate(self, workload):
        """Run enumeration through the artifact store when supported.

        The default :class:`~repro.enumerator.CandidateEnumerator`
        serves per-statement candidate sets (with replayed provenance)
        from the store; custom enumerators without the ``store``
        keyword keep working uncached.
        """
        candidates = self.enumerator.candidates
        try:
            parameters = inspect.signature(candidates).parameters
        except (TypeError, ValueError):  # C callables and odd stand-ins
            parameters = {}
        if "store" in parameters:
            return candidates(workload, store=self.artifacts)
        return candidates(workload)

    def _plan_queries(self, queries, planner, artifacts, jobs):
        """Per-query plan spaces: ``({query: space}, reused count)``.

        A query's plan space is a pure function of its structure, the
        planner's plan cap and the pool subset its plans can touch —
        the artifact key captures exactly that (see
        :meth:`~repro.planner.QueryPlanner.relevant_pool_key`), so a
        cached space is served even when unrelated parts of the pool
        changed.  Misses are planned on a forked process pool (the
        plan-space DFS is CPU-bound pure Python, which threads cannot
        speed up) — the workers only plan, the parent owns the artifact
        store, and store order follows the workload.
        """
        store = self.artifacts
        spaces = {}
        missing = []
        reused = 0
        for query in queries:
            key = ("plan", statement_signature(query), query.label,
                   planner.max_plans, planner.relevant_pool_key(query))
            artifact = store.get(key)
            if artifact is None:
                missing.append((query, key))
                spaces[query] = None  # placeholder keeps workload order
            else:
                artifacts[query] = artifact
                spaces[query] = artifact.space
                reused += 1
        planned = parallel_map(
            lambda item: planner.plans_for(item[0]), missing, jobs=jobs,
            backend="process")
        for (query, key), space in zip(missing, planned):
            artifact = PlanArtifact(space)
            store.put(key, artifact)
            artifacts[query] = artifact
            spaces[query] = space
        return spaces, reused

    def _plan_updates(self, updates, planner, update_planner,
                      artifacts, jobs):
        """Maintenance plans: ``({update: [UpdatePlan]}, reused count)``.

        One artifact per (update, modified column family) pair, keyed
        by the update's signature, the column family, the support-plan
        cap and a fingerprint of the pool subset each support query can
        touch.  An update counts as reused only when every one of its
        pairs was served from the store.

        The parent walks the pool, resolves keys and serves store hits;
        only the misses — the actual support-query planning — fan out,
        one (update, column family) pair per work item on the process
        pool.  Workers never touch the artifact store: the process
        backend returns pickled copies, so a worker-side ``put`` would
        populate a store the parent never sees.
        """
        store = self.artifacts
        pool = planner.pool
        slots = []     # (update, [artifact | position into missing])
        stale = set()  # updates with at least one store miss
        missing = []   # (update, index, supports, key) work items
        for update in updates:
            signature = statement_signature(update)
            pairs = []
            for index in pool:
                if not modifies(update, index):
                    continue
                supports = update_planner.support_queries_for(update,
                                                              index)
                fingerprint = tuple(planner.relevant_pool_key(support)
                                    for support in supports)
                key = ("update-plan", signature, update.label,
                       index.key, update_planner.max_support_plans,
                       fingerprint)
                artifact = store.get(key)
                if artifact is None:
                    stale.add(update)
                    pairs.append(len(missing))
                    missing.append((update, index, supports, key))
                else:
                    pairs.append(artifact)
            slots.append((update, pairs))
        planned = parallel_map(
            lambda item: update_planner.plan_one(item[0], item[1],
                                                 supports=item[2]),
            missing, jobs=jobs, backend="process")
        fresh = []
        for (update, index, supports, key), plan in zip(missing,
                                                        planned):
            artifact = UpdatePlanArtifact(plan)
            store.put(key, artifact)
            fresh.append(artifact)
        update_plans = {}
        reused = 0
        for update, pairs in slots:
            resolved = [pair if isinstance(pair, UpdatePlanArtifact)
                        else fresh[pair] for pair in pairs]
            artifacts[update] = resolved
            update_plans[update] = [artifact.plan
                                    for artifact in resolved]
            if update not in stale:
                reused += 1
        return update_plans, reused

    def _warn_truncation(self, prepared):
        """Warn when a *workload query's* plan space was capped.

        Support-query spaces are deliberately dense-capped
        (``max_support_plans``), so their truncation is routine; it is
        surfaced through ``timing.truncated_queries`` and the per-plan
        ``truncated_support`` flags rather than a warning.
        """
        capped = [statement for statement in prepared.truncated
                  if not getattr(statement, "is_support", False)]
        if not capped:
            return
        labels = sorted({statement.label or repr(statement)
                         for statement in capped})
        shown = ", ".join(labels[:5]) + (", ..." if len(labels) > 5
                                         else "")
        message = (f"plan enumeration hit the planner's plan cap for "
                   f"{len(labels)} statement(s) ({shown}); the plan "
                   f"space may be incomplete — raise max_plans for an "
                   f"exhaustive search")
        # emitted both ways: a warning for interactive use, a log
        # record so library users get signal without filtering warnings
        logger.warning("%s", message)
        warnings.warn(TruncationWarning(message), stacklevel=3)

    def clear_cache(self):
        """Drop all cached prepared workloads."""
        self._prepared.clear()

    # -- stage 2: costing + pruning + optimization ----------------------------

    def _resolve_weights(self, prepared, weights):
        if weights is None:
            weights = prepared.workload
        if hasattr(weights, "weighted_statements"):
            weights = {statement.label: weight
                       for statement, weight in weights.weighted_statements}
        return dict(weights)

    def recommend_prepared(self, prepared, weights=None,
                           space_limit=None, warm_start=None,
                           jobs=None):
        """Cost, prune and solve a prepared workload.

        ``weights`` maps statement labels to weights; a
        :class:`~repro.workload.Workload` may be passed instead (its
        active mix is read), and the default is the workload the
        structure was last prepared from.  Costing, dominance pruning
        and program construction all cache on ``prepared``: after the
        first solve, a weight change rebuilds only the program's cost
        vector and re-solves.

        ``warm_start`` optionally passes a previous
        :class:`SchemaRecommendation` (or any iterable of column
        families / keys) to optimizers advertising
        ``supports_warm_start``: the previous schema is evaluated as a
        feasible incumbent and its cost bounds the new solve.  The
        bound can change which of several *equal-cost* optima the
        solver returns, so warm starting is opt-in; leave it unset when
        byte-identical reproducibility across runs matters more than
        solve time.

        ``jobs`` overrides the advisor-wide worker count for this
        call's costing and pruning stages.
        """
        jobs = self._effective_jobs(jobs)
        timing = AdvisorTiming()
        started = time.perf_counter()
        weights = self._resolve_weights(prepared, weights)

        if prepared.consume_fresh():
            timing.enumeration = prepared.enumeration_seconds
            timing.planning = prepared.planning_seconds
        else:
            timing.cache_hits += 1
        timing.candidates = len(prepared.candidates)
        timing.truncated_queries = len(prepared.truncated)
        timing.query_plan_count = prepared.plan_count
        timing.support_plan_count = sum(
            len(update_plan.support_plans)
            for plans in prepared.update_plans.values()
            for update_plan in plans)
        timing.reused_statements = prepared.reused_statements
        timing.replanned_statements = prepared.replanned_statements

        self._cost_prepared(prepared, timing, jobs=jobs)
        self._prune_prepared(prepared, timing, jobs=jobs)
        recommendation = self._optimize_prepared(prepared, weights,
                                                 space_limit, timing,
                                                 warm_start=warm_start)
        recommendation.timing = timing
        # decision provenance: candidate derivations from enumeration,
        # the dominance-pruning ledger, and the cost model for per-step
        # explain terms (the BIP attached its own ledger in extraction)
        recommendation.explain_data = ExplainData(
            provenance=getattr(prepared.candidates, "provenance", None),
            pruning=prepared._prune_ledger,
            cost_model=self.cost_model)
        timing.total = (time.perf_counter() - started
                        + timing.enumeration + timing.planning)
        return recommendation

    def _cost_prepared(self, prepared, timing, jobs=None):
        """Cost all plans once per cost model (plan costs are
        weight-independent); statements are costed in parallel when
        ``jobs`` is set — their step objects are disjoint.  Costing
        *mutates* the shared plan objects in place (step costs, the
        per-plan cost cache), so it must stay on the thread backend.
        Plans whose artifact was already costed by this model (in an
        earlier prepare sharing the artifact) are skipped — their step
        costs are already in place."""
        if prepared._costed_by == id(self.cost_model):
            return
        jobs = self._effective_jobs(jobs)
        active = telemetry.current()
        model_id = id(self.cost_model)
        with active.span("cost_calculation"):
            stage = time.perf_counter()
            hits_before, misses_before, _ = self.cost_model.cache_info()

            def cost_space(space):
                for plan in space:
                    self.cost_model.cost_plan(plan)

            def cost_update_space(plans):
                for update_plan in plans:
                    self.cost_model.cost_update_plan(update_plan)

            query_spaces = []
            for query, space in prepared.query_plans.items():
                artifact = prepared.plan_artifacts.get(query)
                if artifact is not None \
                        and artifact.costed_by == model_id:
                    continue
                query_spaces.append(space)
            update_spaces = []
            for update, plans in prepared.update_plans.items():
                pairs = prepared.update_artifacts.get(update)
                if pairs:
                    pending = [artifact.plan for artifact in pairs
                               if artifact.costed_by != model_id]
                    if pending:
                        update_spaces.append(pending)
                else:
                    update_spaces.append(plans)
            parallel_map(cost_space, query_spaces, jobs=jobs)
            parallel_map(cost_update_space, update_spaces, jobs=jobs)
            for artifact in prepared.plan_artifacts.values():
                artifact.costed_by = model_id
            for pairs in prepared.update_artifacts.values():
                for artifact in pairs:
                    artifact.costed_by = model_id
            prepared._costed_by = model_id
            # costs changed: downstream artifacts are stale
            prepared._pruned_query_plans = None
            prepared._pruned_update_plans = None
            prepared._programs.clear()
            prepared._cost_seconds = time.perf_counter() - stage
            hits, misses, _ = self.cost_model.cache_info()
            prepared._cost_cache_hits = hits - hits_before
        if active.enabled:
            active.count("cost.cache_hits", hits - hits_before)
            active.count("cost.cache_misses", misses - misses_before)
            self.cost_model.record_metrics(active)
        timing.cost_calculation = prepared._cost_seconds
        timing.cache_hits += prepared._cost_cache_hits

    @staticmethod
    def _pruned_hit(artifact, pruned_key):
        """True when an artifact already carries pruning results for
        this (cost model, cap) configuration."""
        return artifact is not None and artifact.pruned_key == pruned_key

    def _prune_prepared(self, prepared, timing, jobs=None):
        if prepared._pruned_query_plans is not None:
            return
        jobs = self._effective_jobs(jobs)
        active = telemetry.current()
        with active.span("pruning"):
            stage = time.perf_counter()
            ledger = prepared._prune_ledger
            # pruned results are a pure function of costed plans and
            # the cap, so artifacts costed+pruned under the same model
            # and cap serve their pruned plans and ledger records as-is.
            # Statements prune independently (each plan belongs to
            # exactly one space), so misses fan out on threads — the
            # vector engine's matrix products release the GIL — while
            # the ledger is filled parent-side in workload order, hits
            # and misses interleaved exactly as the serial loop would.
            query_key = (id(self.cost_model), self.prune_to)
            reused_prunes = 0

            def prune_query(item):
                query, plans = item
                removals = []
                kept = prune_plan_space(plans, self.prune_to,
                                        removals=removals,
                                        engine=self.prune_engine)
                return kept, prune_record(query, len(plans), len(kept),
                                          removals)

            # hit/miss is decided once up front: statements can share
            # an artifact object (structurally identical statements hit
            # the same store key), and a live re-check after the first
            # write-back would desynchronize the result iterator
            query_items = [
                (query, plans, prepared.plan_artifacts.get(query))
                for query, plans in prepared.query_plans.items()]
            query_items = [
                (query, plans, artifact,
                 self._pruned_hit(artifact, query_key))
                for query, plans, artifact in query_items]
            pending = [(query, plans)
                       for query, plans, artifact, hit in query_items
                       if not hit]
            pruned = iter(parallel_map(prune_query, pending, jobs=jobs))
            pruned_query_plans = {}
            for query, plans, artifact, hit in query_items:
                label = query.label or str(query)
                if hit:
                    pruned_query_plans[query] = artifact.pruned
                    ledger[label] = artifact.record
                    reused_prunes += 1
                    continue
                kept, record = next(pruned)
                pruned_query_plans[query] = kept
                ledger[label] = record
                if artifact is not None:
                    artifact.pruned = kept
                    artifact.record = record
                    artifact.pruned_key = query_key
            prepared._pruned_query_plans = pruned_query_plans
            support_key = (id(self.cost_model), self.support_prune_to)

            def prune_update(update_plan):
                records = {}
                pruned_plan = self._prune_update_plan(update_plan,
                                                      records)
                return pruned_plan, records

            update_items = []
            for update, plans in prepared.update_plans.items():
                pairs = prepared.update_artifacts.get(update)
                rows = []
                for position, update_plan in enumerate(plans):
                    artifact = pairs[position] if pairs else None
                    rows.append((update_plan, artifact,
                                 self._pruned_hit(artifact,
                                                  support_key)))
                update_items.append((update, rows))
            pending = [update_plan
                       for update, rows in update_items
                       for update_plan, artifact, hit in rows
                       if not hit]
            pruned = iter(parallel_map(prune_update, pending, jobs=jobs))
            pruned_updates = {}
            for update, rows in update_items:
                pruned_plans = []
                for update_plan, artifact, hit in rows:
                    if hit:
                        pruned_plans.append(artifact.pruned)
                        ledger.update(artifact.records)
                        reused_prunes += 1
                        continue
                    pruned_plan, records = next(pruned)
                    pruned_plans.append(pruned_plan)
                    ledger.update(records)
                    if artifact is not None:
                        artifact.pruned = pruned_plan
                        artifact.records = dict(records)
                        artifact.pruned_key = support_key
                pruned_updates[update] = pruned_plans
            prepared._pruned_update_plans = self._reachable_update_plans(
                prepared._pruned_query_plans, pruned_updates)
            prepared._pruning_seconds = time.perf_counter() - stage
        if active.enabled:
            active.count("prune.spaces_reused", reused_prunes)
            before = sum(len(plans)
                         for plans in pruned_updates.values())
            after = sum(len(plans) for plans
                        in prepared._pruned_update_plans.values())
            active.count("prune.update_plans_removed_unreachable",
                         before - after)
        timing.pruning = prepared._pruning_seconds

    @staticmethod
    def _reachable_update_plans(query_plans, update_plans):
        """Drop maintenance plans for unreachable candidates.

        Delegates to :func:`repro.dominance.reachable_update_plans`,
        which closes the reachable-key set over bit vectors; see there
        for the dominance argument.
        """
        return dominance.reachable_update_plans(query_plans,
                                                update_plans)

    def _optimize_prepared(self, prepared, weights, space_limit, timing,
                           warm_start=None):
        query_plans = prepared._pruned_query_plans
        update_plans = prepared._pruned_update_plans
        staged = (hasattr(self.optimizer, "prepare")
                  and hasattr(self.optimizer, "optimize"))
        warmable = getattr(self.optimizer, "supports_warm_start", False)
        if warm_start is not None and not warmable:
            warm_start = None
        active = telemetry.current()
        stage = time.perf_counter()
        if not staged:
            # e.g. BruteForceOptimizer: single solve() entry point
            with active.span("bip_construction"):
                problem = OptimizationProblem(query_plans, update_plans,
                                              weights,
                                              space_limit=space_limit)
            timing.bip_construction = time.perf_counter() - stage
            stage = time.perf_counter()
            with active.span("bip_solving"):
                if warm_start is not None:
                    recommendation = self.optimizer.solve(
                        problem, warm_start=warm_start)
                else:
                    recommendation = self.optimizer.solve(problem)
            timing.bip_solving = time.perf_counter() - stage
            return recommendation
        with active.span("bip_construction") as span:
            program = prepared._programs.get(space_limit)
            if program is not None \
                    and hasattr(self.optimizer, "reweight"):
                self.optimizer.reweight(program, weights)
                active.count("bip.programs_reweighted")
                if span is not None:
                    span.set(mode="reweight")
            else:
                problem = OptimizationProblem(query_plans, update_plans,
                                              weights,
                                              space_limit=space_limit)
                # a program for another space limit shares this plan
                # structure; optimizers advertising incremental prepare
                # adopt its constraint rows instead of rebuilding
                previous = None
                if getattr(self.optimizer,
                           "supports_incremental_prepare", False):
                    for existing in prepared._programs.values():
                        previous = existing
                if previous is not None:
                    program = self.optimizer.prepare(problem,
                                                     previous=previous)
                else:
                    program = self.optimizer.prepare(problem)
                prepared._programs[space_limit] = program
                active.count("bip.programs_built")
                if span is not None:
                    span.set(mode="build")
        timing.bip_construction = time.perf_counter() - stage

        stage = time.perf_counter()
        if warm_start is not None:
            recommendation = self.optimizer.optimize(
                program, warm_start=warm_start)
        else:
            recommendation = self.optimizer.optimize(program)
        solving = time.perf_counter() - stage
        # the BIP program separates solver time from result extraction;
        # fall back to the wall measurement for other optimizers
        extract = getattr(program, "extract_seconds", 0.0)
        timing.bip_solving = max(solving - extract, 0.0)
        timing.recommendation = extract
        return recommendation

    def _prune_update_plan(self, update_plan, ledger=None):
        """Dominance-prune each support query's plan space."""
        pruned = []
        for query, plans in update_plan.support_plans_by_query.items():
            removals = [] if ledger is not None else None
            kept = prune_plan_space(plans, self.support_prune_to,
                                    removals=removals,
                                    engine=self.prune_engine)
            pruned.extend(kept)
            if ledger is not None:
                label = query.label or str(query)
                ledger[label] = prune_record(query, len(plans),
                                             len(kept), removals)
        return UpdatePlan(update_plan.update, update_plan.index, pruned,
                          update_plan.steps,
                          truncated_support=update_plan.truncated_support)

    # -- fixed-schema evaluation -------------------------------------------------

    def plan_for_schema(self, workload, indexes, require_updates=True):
        """Plan the workload against a fixed, user-supplied schema.

        Used to evaluate hand-designed schemas (the paper's "normalized"
        and "expert" baselines): no enumeration or optimization happens,
        the cheapest plan per statement over exactly ``indexes`` is
        chosen.  Raises :class:`~repro.exceptions.PlanningError` when the
        schema cannot answer the workload.
        """
        planner = QueryPlanner(self.model, indexes,
                               max_plans=self.max_plans)
        update_planner = UpdatePlanner(self.model, planner)
        query_plans = {}
        total = 0.0
        for query in workload.queries:
            plans = planner.plans_for(query)
            for plan in plans:
                self.cost_model.cost_plan(plan)
            chosen = min(plans, key=lambda plan: plan.cost)
            query_plans[query] = chosen
            total += workload.weight(query) * chosen.cost
        update_plans = {}
        for update in workload.updates:
            plans = update_planner.plans_for(update,
                                             require=require_updates)
            chosen_plans = []
            for update_plan in plans:
                self.cost_model.cost_update_plan(update_plan)
                chosen_support = []
                for support_plans in \
                        update_plan.support_plans_by_query.values():
                    chosen_support.append(
                        min(support_plans, key=lambda plan: plan.cost))
                chosen_plans.append(
                    UpdatePlan(update, update_plan.index, chosen_support,
                               update_plan.steps))
                total += workload.weight(update) * (
                    update_plan.update_cost
                    + sum(plan.cost for plan in chosen_support))
            update_plans[update] = chosen_plans
        weights = {statement.label: weight
                   for statement, weight in workload.weighted_statements}
        recommendation = SchemaRecommendation(indexes, query_plans,
                                              update_plans, weights, total)
        # a fixed schema has no enumeration provenance or solver ledger,
        # but explain() can still annotate plan steps with cost terms
        recommendation.explain_data = ExplainData(
            cost_model=self.cost_model)
        return recommendation
