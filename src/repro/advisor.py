"""The NoSE schema advisor facade (Fig 2 / Fig 4 of the paper).

Wires the four stages together — candidate enumeration, query planning,
schema optimization, plan recommendation — and records a wall-clock
breakdown per stage so the Fig 13 runtime-decomposition experiment can
be reproduced (cost calculation / BIP construction / BIP solving /
other).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cost import CassandraCostModel
from repro.enumerator import CandidateEnumerator
from repro.optimizer import BIPOptimizer, OptimizationProblem
from repro.optimizer.results import SchemaRecommendation
from repro.planner import QueryPlanner, UpdatePlanner
from repro.planner.plans import UpdatePlan

__all__ = ["Advisor", "AdvisorTiming", "SchemaRecommendation"]


def prune_dominated_plans(plans, keep=None):
    """Drop plans that cannot appear in any optimal solution.

    Two plans using the same set of column families impose identical
    constraints on the BIP, so only the cheaper one can ever be chosen;
    we keep the cheapest plan per distinct column-family set, and
    optionally only the ``keep`` cheapest overall (the plan space stays
    feasible since every retained plan is self-contained).  Requires
    costed plans.
    """
    best = {}
    for plan in plans:
        key = frozenset(index.key for index in plan.indexes)
        current = best.get(key)
        if current is None or plan.cost < current.cost:
            best[key] = plan
    pruned = sorted(best.values(), key=lambda plan: plan.cost)
    if keep is not None:
        pruned = pruned[:keep]
    return pruned


@dataclass
class AdvisorTiming:
    """Wall-clock seconds spent in each advisor stage.

    ``cost_calculation``, ``bip_construction`` and ``bip_solving`` match
    the three named components of the paper's Fig 13; everything else
    (enumeration, plan-space generation, result extraction) is the
    figure's "other" share.
    """

    enumeration: float = 0.0
    planning: float = 0.0
    cost_calculation: float = 0.0
    bip_construction: float = 0.0
    bip_solving: float = 0.0
    recommendation: float = 0.0
    total: float = 0.0
    candidates: int = 0
    query_plan_count: int = 0
    support_plan_count: int = 0

    @property
    def other(self):
        """Everything outside the three Fig 13 named components."""
        named = (self.cost_calculation + self.bip_construction
                 + self.bip_solving)
        return max(self.total - named, 0.0)

    def as_figure13_row(self):
        """The four series of Fig 13 for one workload size."""
        return {
            "cost_calculation": self.cost_calculation,
            "bip_construction": self.bip_construction,
            "bip_solving": self.bip_solving,
            "other": self.other,
            "total": self.total,
        }


class Advisor:
    """End-to-end schema advisor.

    >>> advisor = Advisor(model)
    >>> recommendation = advisor.recommend(workload)
    >>> print(recommendation.describe())

    ``cost_model`` defaults to the Cassandra-style model; ``enumerator``
    and ``optimizer`` may be swapped for the ablation studies.
    """

    def __init__(self, model, cost_model=None, enumerator=None,
                 optimizer=None, max_plans=500, prune_to=32,
                 support_prune_to=8):
        self.model = model
        self.cost_model = cost_model or CassandraCostModel()
        self.enumerator = enumerator or CandidateEnumerator(model)
        self.optimizer = optimizer or BIPOptimizer()
        self.max_plans = max_plans
        #: plans kept per query after dominance pruning (None = all)
        self.prune_to = prune_to
        #: plans kept per support query (their spaces are much denser)
        self.support_prune_to = support_prune_to

    # -- main entry point ----------------------------------------------------

    def recommend(self, workload, space_limit=None):
        """Recommend a schema and one plan per statement for a workload."""
        timing = AdvisorTiming()
        started = time.perf_counter()

        stage = time.perf_counter()
        candidates = self.enumerator.candidates(workload)
        timing.enumeration = time.perf_counter() - stage
        timing.candidates = len(candidates)

        stage = time.perf_counter()
        planner = QueryPlanner(self.model, candidates,
                               max_plans=self.max_plans)
        update_planner = UpdatePlanner(self.model, planner)
        query_plans = planner.plan_all(workload.queries)
        update_plans = update_planner.plan_all(workload.updates)
        timing.planning = time.perf_counter() - stage
        timing.query_plan_count = sum(len(p) for p in query_plans.values())
        timing.support_plan_count = sum(
            len(up.support_plans)
            for plans in update_plans.values() for up in plans)

        stage = time.perf_counter()
        for plans in query_plans.values():
            for plan in plans:
                self.cost_model.cost_plan(plan)
        for plans in update_plans.values():
            for update_plan in plans:
                self.cost_model.cost_update_plan(update_plan)
        timing.cost_calculation = time.perf_counter() - stage

        query_plans = {query: prune_dominated_plans(plans, self.prune_to)
                       for query, plans in query_plans.items()}
        update_plans = {
            update: [self._prune_update_plan(update_plan)
                     for update_plan in plans]
            for update, plans in update_plans.items()}

        weights = {statement.label: weight
                   for statement, weight in workload.weighted_statements}
        problem = OptimizationProblem(query_plans, update_plans, weights,
                                      space_limit=space_limit)

        stage = time.perf_counter()
        program = self.optimizer.prepare(problem)
        timing.bip_construction = time.perf_counter() - stage

        stage = time.perf_counter()
        recommendation = self.optimizer.optimize(program)
        timing.bip_solving = time.perf_counter() - stage

        stage = time.perf_counter()
        recommendation.timing = timing
        timing.recommendation = time.perf_counter() - stage
        timing.total = time.perf_counter() - started
        return recommendation

    def _prune_update_plan(self, update_plan):
        """Dominance-prune each support query's plan space."""
        pruned = []
        for plans in update_plan.support_plans_by_query.values():
            pruned.extend(prune_dominated_plans(plans,
                                                self.support_prune_to))
        return UpdatePlan(update_plan.update, update_plan.index, pruned,
                          update_plan.steps)

    # -- fixed-schema evaluation -------------------------------------------------

    def plan_for_schema(self, workload, indexes, require_updates=True):
        """Plan the workload against a fixed, user-supplied schema.

        Used to evaluate hand-designed schemas (the paper's "normalized"
        and "expert" baselines): no enumeration or optimization happens,
        the cheapest plan per statement over exactly ``indexes`` is
        chosen.  Raises :class:`~repro.exceptions.PlanningError` when the
        schema cannot answer the workload.
        """
        planner = QueryPlanner(self.model, indexes,
                               max_plans=self.max_plans)
        update_planner = UpdatePlanner(self.model, planner)
        query_plans = {}
        total = 0.0
        for query in workload.queries:
            plans = planner.plans_for(query)
            for plan in plans:
                self.cost_model.cost_plan(plan)
            chosen = min(plans, key=lambda plan: plan.cost)
            query_plans[query] = chosen
            total += workload.weight(query) * chosen.cost
        update_plans = {}
        for update in workload.updates:
            plans = update_planner.plans_for(update,
                                             require=require_updates)
            chosen_plans = []
            for update_plan in plans:
                self.cost_model.cost_update_plan(update_plan)
                chosen_support = []
                for support_plans in \
                        update_plan.support_plans_by_query.values():
                    chosen_support.append(
                        min(support_plans, key=lambda plan: plan.cost))
                chosen_plans.append(
                    UpdatePlan(update, update_plan.index, chosen_support,
                               update_plan.steps))
                total += workload.weight(update) * (
                    update_plan.update_cost
                    + sum(plan.cost for plan in chosen_support))
            update_plans[update] = chosen_plans
        weights = {statement.label: weight
                   for statement, weight in workload.weighted_statements}
        return SchemaRecommendation(indexes, query_plans, update_plans,
                                    weights, total)
