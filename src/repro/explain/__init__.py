"""Decision observability for the advisor pipeline.

Three layers make a recommendation explainable instead of a black box:

* :mod:`repro.explain.provenance` — why each candidate column family
  was enumerated (derivation rule, source statements, merge parents);
* :mod:`repro.explain.ledger` — why plans and candidates were rejected
  (dominance-pruning removals, BIP selection statuses, chosen-plan
  cost next to the best rejected alternative);
* :mod:`repro.explain.document` — the serializable explain document
  built from a recommendation, and recommendation diffing for the
  repeated-tuning workflow (``nose-advisor diff``).
"""

from repro.explain.document import (
    EXPLAIN_FORMAT,
    ExplainData,
    diff_recommendations,
    explain_document,
    step_terms,
)
from repro.explain.ledger import (
    INDEX_STATUSES,
    PRUNE_RULES,
    prune_entry,
    prune_record,
    solver_ledger,
)
from repro.explain.provenance import (
    RULES,
    IndexProvenance,
    ProvenanceRecorder,
    source_label,
)

__all__ = [
    "EXPLAIN_FORMAT",
    "ExplainData",
    "INDEX_STATUSES",
    "IndexProvenance",
    "PRUNE_RULES",
    "ProvenanceRecorder",
    "RULES",
    "diff_recommendations",
    "explain_document",
    "prune_entry",
    "prune_record",
    "solver_ledger",
    "source_label",
    "step_terms",
]
