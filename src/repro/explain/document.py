"""The explain document: one JSON-serializable record of a decision.

``explain_document`` turns a :class:`~repro.optimizer.results
.SchemaRecommendation` (plus the provenance and ledgers the advisor
attached to it) into a plain dict with deterministic key order:

* ``indexes`` — the recommended column families, each with its
  selection status and derivation chain back to workload statements;
* ``statements`` — per statement: weight, cost, the chosen plan as an
  annotated step list with per-step cost-model terms, and how many
  alternatives were enumerated / survived to the solver / what the
  best rejected alternative would have cost;
* ``solver`` / ``pruning`` — the raw decision ledgers.

``diff_recommendations`` compares two such documents (or two
recommendations) and reports index-set changes, per-statement plan and
cost changes, and the total-cost regression — the artifact a CI job
checks with ``nose-advisor diff --fail-on-regression``.

Documents round-trip through :func:`repro.io.dump_explain` /
``load_explain``; renderers live in :mod:`repro.reporting`.
"""

from __future__ import annotations

from repro.planner.steps import (
    DeleteStep,
    FilterStep,
    IndexLookupStep,
    InsertStep,
    SortStep,
)

EXPLAIN_FORMAT = "nose-explain/1"

#: removals listed verbatim per statement in the document (the full
#: ledger stays in memory); the cap is flagged via ``removed_truncated``
MAX_REMOVALS_LISTED = 50


class ExplainData:
    """Decision-provenance bundle the advisor attaches to a result.

    ``provenance`` is the enumeration's
    :class:`~repro.explain.provenance.ProvenanceRecorder` (or None),
    ``pruning`` the per-statement dominance-pruning ledger, and
    ``cost_model`` the model used for costing — consulted for per-step
    cost terms when rendering plans.
    """

    def __init__(self, provenance=None, pruning=None, cost_model=None):
        self.provenance = provenance
        self.pruning = dict(pruning or {})
        self.cost_model = cost_model

    def chain(self, key):
        if self.provenance is None:
            return []
        return self.provenance.chain(key)


def step_terms(step, cost_model=None):
    """Cost-model terms for one plan step, as a name → number dict.

    Prefers the cost model's own :meth:`~repro.cost.CostModel
    .cost_terms` decomposition; falls back to the cardinality facts
    every step carries (partitions contacted, rows read/written).
    """
    if cost_model is not None:
        terms = getattr(cost_model, "cost_terms", None)
        if terms is not None:
            decomposed = terms(step)
            if decomposed is not None:
                return decomposed
    if isinstance(step, IndexLookupStep):
        return {"partitions_contacted": max(step.bindings, 1.0),
                "rows_read": max(step.raw_rows, 0.0)}
    if isinstance(step, InsertStep):
        return {"rows_written": max(step.cardinality, 0.0)}
    if isinstance(step, DeleteStep):
        return {"rows_deleted": max(step.cardinality, 0.0)}
    if isinstance(step, FilterStep):
        return {"rows_scanned": max(step.input_cardinality, 0.0)}
    if isinstance(step, SortStep):
        return {"rows_sorted": max(step.cardinality, 0.0)}
    return {}


def _step_record(step, cost_model):
    record = {"op": step.describe(), "cost": step.cost}
    terms = step_terms(step, cost_model)
    if terms:
        record["terms"] = {name: terms[name] for name in sorted(terms)}
    return record


def _plan_record(plan, cost_model):
    return {
        "signature": plan.signature,
        "cost": plan.cost,
        "steps": [_step_record(step, cost_model)
                  for step in plan.steps],
    }


def _query_statement(recommendation, query, plan, data, solver):
    label = query.label or str(query)
    weight = recommendation.weight(query)
    record = {
        "kind": "query",
        "weight": weight,
        "cost": plan.cost,
        "weighted_cost": weight * plan.cost,
        "plan": _plan_record(plan, data.cost_model if data else None),
    }
    pruning = (data.pruning if data else {}).get(label)
    if pruning:
        record["alternatives_enumerated"] = pruning["considered"]
        record["alternatives_after_pruning"] = pruning["kept"]
    ledger_row = (solver or {}).get("statements", {}).get(label)
    if ledger_row:
        record["alternatives_in_solver"] = \
            ledger_row["alternatives_in_solver"]
        record["best_rejected_cost"] = ledger_row["best_rejected_cost"]
    return label, record


def _update_statement(recommendation, update, plans, data):
    label = update.label or str(update)
    weight = recommendation.weight(update)
    cost = recommendation.update_cost(update)
    cost_model = data.cost_model if data else None
    maintenance = []
    for plan in plans:
        written = sum(max(step.cardinality, 0.0)
                      for step in plan.update_steps)
        maintenance.append({
            "index": plan.index.key,
            "update_cost": plan.update_cost,
            # rows rewritten in this column family per statement
            # execution — the denormalization write amplification
            "write_amplification": written,
            "steps": [_step_record(step, cost_model)
                      for step in plan.update_steps],
            "support_plans": [
                _plan_record(min(space, key=lambda p: (p.cost,
                                                       p.signature)),
                             cost_model)
                for space in plan.support_plans_by_query.values()],
        })
    record = {
        "kind": "update",
        "weight": weight,
        "cost": cost,
        "weighted_cost": weight * cost,
        "maintenance": maintenance,
    }
    return label, record


def _pruning_section(data):
    section = {}
    for label in sorted(data.pruning if data else ()):
        record = dict(data.pruning[label])
        removed = record.get("removed", [])
        if len(removed) > MAX_REMOVALS_LISTED:
            record["removed"] = removed[:MAX_REMOVALS_LISTED]
            record["removed_truncated"] = True
        section[label] = record
    return section


def explain_document(recommendation):
    """The full explain document for one recommendation.

    A superset of :meth:`SchemaRecommendation.as_dict`: consumers of
    the plain recommendation JSON (``indexes``, ``query_plans``,
    ``update_plans``) keep working, and the explain sections ride
    along.  Provenance and ledger sections are present but empty when
    the recommendation was produced without them (e.g. by
    :meth:`Advisor.plan_for_schema`).
    """
    data = getattr(recommendation, "explain_data", None)
    solver = getattr(recommendation, "ledger", None)
    document = recommendation.as_dict()
    document["format"] = EXPLAIN_FORMAT
    for entry in document["indexes"]:
        key = entry["key"]
        if solver is not None:
            status = solver["indexes"].get(key, {}).get("status")
            entry["status"] = status or "chosen"
        else:
            entry["status"] = "chosen"
        entry["provenance"] = data.chain(key) if data else []
    statements = {}
    for query, plan in recommendation.query_plans.items():
        label, record = _query_statement(recommendation, query, plan,
                                         data, solver)
        statements[label] = record
    for update, plans in recommendation.update_plans.items():
        label, record = _update_statement(recommendation, update, plans,
                                          data)
        statements[label] = record
    document["statements"] = {label: statements[label]
                              for label in sorted(statements)}
    document["solver"] = solver or {}
    document["pruning"] = _pruning_section(data)
    return document


# -- diffing -------------------------------------------------------------------


def _as_document(source):
    if isinstance(source, dict):
        return source
    return explain_document(source)


def _statement_costs(document):
    """``{label: cost}`` from an explain document, with a fallback to
    the plain recommendation shape (query plans only)."""
    statements = document.get("statements")
    if statements:
        return {label: record.get("cost")
                for label, record in statements.items()}
    return {label: record.get("cost")
            for label, record in document.get("query_plans", {}).items()}


def _plan_shapes(document):
    shapes = {}
    for label, record in document.get("statements", {}).items():
        plan = record.get("plan")
        if plan is not None:
            shapes[label] = plan.get("signature") \
                or tuple(step["op"] for step in plan.get("steps", ()))
    for label, record in document.get("query_plans", {}).items():
        shapes.setdefault(label, tuple(record.get("steps", ())))
    return shapes


def diff_recommendations(base, other):
    """Structured diff of two recommendations (or explain documents).

    Reports the index-set changes, every statement whose cost or chosen
    plan changed, and the total-cost delta with its regression
    percentage (positive = ``other`` is more expensive than ``base``).
    """
    a, b = _as_document(base), _as_document(other)
    a_indexes = {entry["key"]: entry for entry in a.get("indexes", [])}
    b_indexes = {entry["key"]: entry for entry in b.get("indexes", [])}
    added = [{"key": key, "triple": b_indexes[key].get("triple", "")}
             for key in sorted(set(b_indexes) - set(a_indexes))]
    dropped = [{"key": key, "triple": a_indexes[key].get("triple", "")}
               for key in sorted(set(a_indexes) - set(b_indexes))]

    a_costs, b_costs = _statement_costs(a), _statement_costs(b)
    a_shapes, b_shapes = _plan_shapes(a), _plan_shapes(b)
    statements = {}
    for label in sorted(set(a_costs) | set(b_costs)):
        base_cost = a_costs.get(label)
        other_cost = b_costs.get(label)
        plan_changed = (label in a_shapes and label in b_shapes
                        and a_shapes[label] != b_shapes[label])
        if base_cost == other_cost and not plan_changed:
            continue
        record = {"base_cost": base_cost, "other_cost": other_cost,
                  "plan_changed": plan_changed}
        if base_cost is not None and other_cost is not None:
            record["delta"] = other_cost - base_cost
        statements[label] = record

    base_total = a.get("total_cost", 0.0)
    other_total = b.get("total_cost", 0.0)
    delta = other_total - base_total
    regression_pct = (delta / base_total * 100.0) if base_total else None
    return {
        "total_cost": {
            "base": base_total,
            "other": other_total,
            "delta": delta,
            "regression_pct": regression_pct,
        },
        "size_bytes": {
            "base": a.get("size_bytes"),
            "other": b.get("size_bytes"),
        },
        "indexes_added": added,
        "indexes_dropped": dropped,
        "statements": statements,
    }
