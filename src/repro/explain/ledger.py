"""Pruning and solver ledgers: why plans and candidates were rejected.

Two decision points discard work between enumeration and the final
recommendation, and both record their reasoning here:

* **dominance pruning** (``repro.advisor.prune_plan_space``) removes
  plans per statement; each removal is logged with the rule that killed
  the plan and the signature of the plan that dominated it;
* **the BIP** selects column families and one plan per statement; the
  solver ledger records each candidate's selection status and, per
  statement, the chosen plan's cost next to the best rejected
  alternative — the numbers a designer needs to judge how close the
  call was.

Both ledgers are plain dicts with deterministic key order so they
serialize into the explain document unchanged.
"""

from __future__ import annotations

#: rules of :func:`repro.advisor.prune_plan_space`, in application order
PRUNE_RULES = ("duplicate-cfset", "superset-cfset", "cap")

#: candidate selection statuses in the solver ledger
INDEX_STATUSES = ("chosen", "selected-unused", "rejected")


def prune_entry(plan, rule, dominated_by=None):
    """One pruning-ledger removal record."""
    if rule not in PRUNE_RULES:
        from repro.exceptions import NoseError
        raise NoseError(f"unknown prune rule {rule!r}; known rules: "
                        f"{', '.join(PRUNE_RULES)}")
    entry = {"plan": getattr(plan, "signature", "") or repr(plan),
             "rule": rule}
    if dominated_by is not None:
        entry["dominated_by"] = (getattr(dominated_by, "signature", "")
                                 or repr(dominated_by))
    return entry


def prune_record(statement, considered, kept, removed):
    """The pruning ledger's per-statement record."""
    by_rule = {}
    for entry in removed:
        by_rule[entry["rule"]] = by_rule.get(entry["rule"], 0) + 1
    return {
        "statement": getattr(statement, "label", None) or str(statement),
        "considered": considered,
        "kept": kept,
        "removed_by_rule": {rule: by_rule[rule]
                            for rule in sorted(by_rule)},
        "removed": list(removed),
    }


def solver_ledger(problem, chosen_keys, selected_keys, query_plans,
                  plan_columns, costs=None):
    """Build the BIP's decision ledger from an extracted solution.

    ``chosen_keys`` are the column families in the final schema,
    ``selected_keys`` everything the solver set to 1 (a superset —
    cost-free selections the extraction pruned are "selected-unused").
    ``query_plans`` maps each workload query to its chosen plan and
    ``plan_columns`` is the program's ``(query, plan, column)`` listing,
    from which per-statement alternatives and the best rejected plan
    cost are derived.
    """
    space_limited = problem.space_limit is not None
    indexes = {}
    for index in problem.indexes:
        if index.key in chosen_keys:
            status, reason = "chosen", None
        elif index.key in selected_keys:
            status, reason = "selected-unused", "no chosen plan uses it"
        else:
            status = "rejected"
            reason = "space-budget" if space_limited else "cost"
        record = {"status": status}
        if reason is not None:
            record["reason"] = reason
        indexes[index.key] = record

    grouped = {}
    for query, plan, _column in plan_columns:
        grouped.setdefault(query, []).append(plan)
    statements = {}
    for query, plans in grouped.items():
        chosen = query_plans.get(query)
        label = getattr(query, "label", None) or str(query)
        record = {
            "alternatives_in_solver": len(plans),
            "chosen_cost": chosen.cost if chosen is not None else None,
            "chosen_signature": (chosen.signature
                                 if chosen is not None else None),
        }
        rejected = [plan for plan in plans if plan is not chosen]
        if rejected:
            best = min(rejected,
                       key=lambda plan: (plan.cost, plan.signature))
            record["best_rejected_cost"] = best.cost
            record["best_rejected_signature"] = best.signature
        else:
            record["best_rejected_cost"] = None
            record["best_rejected_signature"] = None
        statements[label] = record

    return {
        "space_limit": problem.space_limit,
        "indexes": {key: indexes[key] for key in sorted(indexes)},
        "statements": {label: statements[label]
                       for label in sorted(statements)},
    }
