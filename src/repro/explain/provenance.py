"""Candidate provenance: why each column family was enumerated.

Every candidate the enumerator produces is derived from a workload
statement by one of a small set of rules (the §IV-A constructions plus
this repo's extensions).  The recorder keeps, per column-family key,
which rules produced it, which workload statements it serves, and —
for combiner merges — which parent candidates it was built from.  A
*chain* walks these records back until it reaches workload statements,
so a schema designer can answer "why does this column family exist?"
for any index in a recommendation.

Recording is identity-based (index ``key``), so the same column family
reached from several queries or rules accumulates all of them; the
records are cheap dict updates and stay attached to the candidate pool
through the advisor's structural cache.
"""

from __future__ import annotations

#: derivation rules, in roughly decreasing specificity
RULES = (
    "materialize",       # the view answering a full query with one get
    "prefix-split",      # view for a proper prefix of the query path
    "join-segment",      # chain link across an interior path segment
    "order-relax",       # ORDER BY moved out of the clustering key
    "predicate-relax",   # range predicate demoted to value / dropped
    "id-fetch-split",    # key-only variant or per-entity point lookup
    "group-collapse",    # GROUP BY extension: one row per result
    "combiner-merge",    # §IV-A3 Combine of two value-only candidates
)

_KNOWN_RULES = frozenset(RULES)


def source_label(statement):
    """The workload-statement label a candidate's derivation anchors to.

    Support queries are synthetic — they exist only to maintain a
    column family under an update — so their candidates are attributed
    to the *update* statement, keeping every chain terminated at a real
    workload statement.
    """
    if statement is None:
        return None
    if getattr(statement, "is_support", False):
        update = getattr(statement, "update", None)
        if update is not None and update.label:
            return update.label
    label = getattr(statement, "label", None)
    return label or str(statement)


class IndexProvenance:
    """Accumulated derivation facts for one candidate column family."""

    __slots__ = ("key", "rules", "sources", "parents")

    def __init__(self, key):
        self.key = key
        #: rules that produced this candidate, in first-recorded order
        self.rules = []
        #: labels of the workload statements it was derived for
        self.sources = []
        #: keys of parent candidates (combiner merges)
        self.parents = []

    def add(self, rule, source=None, parents=()):
        if rule not in self.rules:
            self.rules.append(rule)
        if source is not None and source not in self.sources:
            self.sources.append(source)
        for parent in parents:
            if parent not in self.parents:
                self.parents.append(parent)

    def as_dict(self):
        return {
            "rules": list(self.rules),
            "sources": sorted(self.sources),
            "parents": sorted(self.parents),
        }

    def __repr__(self):
        return (f"IndexProvenance({self.key}: rules={self.rules}, "
                f"sources={self.sources}, parents={self.parents})")


class ProvenanceRecorder:
    """Collects :class:`IndexProvenance` records during enumeration."""

    def __init__(self):
        self.records = {}
        #: total record() calls — the explain-overhead benchmark prices
        #: provenance collection as ops x per-op cost
        self.ops = 0

    def record(self, index, rule, source=None, parents=()):
        """Note that ``index`` was produced by ``rule`` for ``source``.

        ``source`` may be a statement (its label is resolved, support
        queries mapping to their update) or a plain label string;
        ``parents`` are the keys of the candidates a merge combined.
        """
        if rule not in _KNOWN_RULES:
            from repro.exceptions import NoseError
            raise NoseError(f"unknown derivation rule {rule!r}; "
                            f"known rules: {', '.join(RULES)}")
        self.ops += 1
        record = self.records.get(index.key)
        if record is None:
            record = self.records[index.key] = IndexProvenance(index.key)
        if source is not None and not isinstance(source, str):
            source = source_label(source)
        record.add(rule, source=source, parents=parents)
        return record

    def get(self, key):
        return self.records.get(key)

    def __contains__(self, key):
        return key in self.records

    def __len__(self):
        return len(self.records)

    def chain(self, key):
        """Derivation chain from ``key`` back to workload statements.

        Returns a list of record dicts (each with ``index``, ``rules``,
        ``sources``, ``parents``), starting at ``key`` and following
        combiner parents breadth-first.  Empty when the key was never
        recorded.  The chain *terminates at a workload statement* when
        some record in it carries a non-empty ``sources`` list.
        """
        chain = []
        seen = set()
        frontier = [key]
        while frontier:
            next_frontier = []
            for current in frontier:
                if current in seen:
                    continue
                seen.add(current)
                record = self.records.get(current)
                if record is None:
                    continue
                chain.append({"index": record.key,
                              **record.as_dict()})
                next_frontier.extend(record.parents)
            frontier = next_frontier
        return chain

    def terminates_at_statement(self, key):
        """True when the chain for ``key`` reaches a workload statement."""
        return any(record["sources"] for record in self.chain(key))

    def as_dict(self):
        """``{key: provenance}`` with deterministic key order."""
        return {key: self.records[key].as_dict()
                for key in sorted(self.records)}
