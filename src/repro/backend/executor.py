"""Execution engine: runs recommended plans against the record store.

This is the paper's "simple execution engine which can execute the plans
recommended by NoSE" (§VII-A): it interprets query plans (get / filter /
sort / limit / join-by-chained-gets) and update plans (support queries
followed by puts and deletes) against the simulated store, keeping every
column family consistent with the ground-truth :class:`Dataset`.

``share_reads`` enables a per-transaction read cache that de-duplicates
identical get requests across the statements of one transaction — the
correlation knowledge the paper credits the expert schema with (§VII-A's
discussion of the 100x write mix), which NoSE plans do not assume.
"""

from __future__ import annotations

import itertools

from repro import telemetry
from repro.backend.dataset import materialize_rows
from repro.backend.store import Store
from repro.exceptions import ExecutionError
from repro.planner.plans import UnionPlan
from repro.planner.steps import (
    AggregateStep,
    FilterStep,
    IndexLookupStep,
    LimitStep,
    SortStep,
    UnionStep,
)
from repro.workload.semantics import aggregate_value, ordering_key
from repro.workload.statements import Query


class ExecutionEngine:
    """Executes one schema recommendation's plans over a store."""

    def __init__(self, model, recommendation, dataset, store=None,
                 share_reads=False, update_protocol="nose",
                 recorder=None, monitor=None):
        if update_protocol not in ("nose", "expert"):
            raise ExecutionError(
                f"unknown update protocol {update_protocol!r}")
        self.model = model
        self.recommendation = recommendation
        self.dataset = dataset
        self.store = store or Store()
        self.share_reads = share_reads
        #: optional flight recorder (see :mod:`repro.profile`)
        #: receiving per-statement store-metric deltas; also wired into
        #: the store for per-operation latency observations
        self.recorder = recorder
        if recorder is not None:
            self.store.recorder = recorder
        #: optional workload monitor (see :mod:`repro.monitor`) fed one
        #: ``observe_execution`` call per top-level statement
        self.monitor = monitor
        self._observe_depth = 0
        #: "nose" follows the paper's §VI-B protocol — delete the records
        #: for the old data, then insert records for the new data;
        #: "expert" upserts only the rows that actually changed (the
        #: hand-optimized plans a human designer writes)
        self.update_protocol = update_protocol
        self._transaction_cache = None
        self._query_plans = {}
        self._update_plans = {}
        self._statements = {}
        # Workload guarantees unique labels, but hand-built
        # recommendations do not: a query and an update sharing a label
        # would silently shadow each other here, so collisions are an
        # error rather than last-writer-wins.
        for query, plan in recommendation.query_plans.items():
            self._register(query)
            self._query_plans[query.label] = plan
        for update, plans in recommendation.update_plans.items():
            self._register(update)
            self._update_plans[update.label] = plans

    def _register(self, statement):
        label = statement.label
        existing = self._statements.get(label)
        if existing is not None and existing is not statement:
            raise ExecutionError(
                f"duplicate statement label {label!r} in recommendation: "
                f"{existing!r} and {statement!r} would shadow each other")
        self._statements[label] = statement

    # -- loading -----------------------------------------------------------

    def load(self):
        """Create all recommended column families and populate them from
        the dataset (unmetered — loading is not part of any experiment).
        Returns the total number of rows materialized."""
        total = 0
        for index in self.recommendation.indexes:
            column_family = self.store.create(index)
            rows = materialize_rows(self.dataset, index)
            total += column_family.put_many(rows, charge=False)
        return total

    # -- dispatch -------------------------------------------------------------

    def execute(self, label, params):
        """Execute one workload statement by label."""
        statement = self._statements.get(label)
        if statement is None:
            raise ExecutionError(f"unknown statement {label!r}")
        if isinstance(statement, Query):
            return self.execute_query(statement, params)
        return self.execute_update(statement, params)

    def execute_transaction(self, requests):
        """Execute a list of ``(label, params)`` as one user transaction.

        Returns the simulated service time in milliseconds.  When
        ``share_reads`` is enabled, identical get requests within the
        transaction are answered once.
        """
        started = self.store.metrics.simulated_ms
        if self.share_reads:
            self._transaction_cache = {}
        try:
            for label, params in requests:
                self.execute(label, params)
        finally:
            self._transaction_cache = None
        return self.store.metrics.simulated_ms - started

    # -- observation ---------------------------------------------------------

    def _observed(self, kind, label, run, *args):
        """Run one statement under the flight-recorder/telemetry hooks.

        Measures the store-metric deltas (rows scanned, partitions
        touched, bytes transferred, maintenance puts/deletes) and the
        simulated-clock delta the statement causes, and publishes them
        per statement — to the attached recorder and, when telemetry is
        active, to the process-wide sink as an ``exec.*`` span plus
        counters and latency histograms.  Support queries executed
        inside an update are charged to the update, never double-counted
        under their own label (``_observe_depth`` suppresses nesting).
        """
        active = telemetry.current()
        metrics = self.store.metrics
        before = metrics.snapshot()
        self._observe_depth += 1
        try:
            if active.enabled:
                with active.span(f"exec.{kind}", label=label):
                    result = run(*args)
            else:
                result = run(*args)
        finally:
            self._observe_depth -= 1
        after = metrics.snapshot()
        delta = {name: after[name] - before[name] for name in after}
        if self.recorder is not None:
            self.recorder.record_statement(label, kind, delta)
        if self.monitor is not None:
            self.monitor.observe_execution(self._statements.get(label),
                                           label, kind, delta)
        if active.enabled:
            elapsed = delta["simulated_ms"]
            buckets = telemetry.LATENCY_BUCKETS_MS
            active.count("exec.requests")
            active.observe("exec.latency_ms", elapsed, buckets=buckets)
            active.observe(f"exec.latency_ms.{label}", elapsed,
                           buckets=buckets)
            for name in ("rows_read", "rows_scanned", "bytes_read",
                         "partitions_touched"):
                if delta[name]:
                    active.count(f"store.{name}", delta[name])
            if kind == "update":
                for name in ("puts", "deletes", "rows_written",
                             "rows_deleted"):
                    if delta[name]:
                        active.count(f"exec.maintenance_{name}",
                                     delta[name])
        return result

    # -- queries ------------------------------------------------------------------

    def execute_query(self, query, params, plan=None):
        """Run a query plan; returns distinct selected rows as dicts.

        When a flight recorder is attached or telemetry is active, the
        execution is observed per statement (store-metric deltas,
        simulated latency); otherwise this is a plain dispatch.
        """
        if self._observe_depth == 0 and (
                self.recorder is not None
                or self.monitor is not None
                or telemetry.current().enabled):
            return self._observed("query", query.label or str(query),
                                  self._execute_query, query, params,
                                  plan)
        return self._execute_query(query, params, plan)

    def _execute_query(self, query, params, plan=None):
        if plan is None:
            plan = self._query_plans.get(query.label)
        if plan is None:
            raise ExecutionError(
                f"no recommended plan for query {query.label!r}")
        if isinstance(plan, UnionPlan):
            # each branch runs with its own branch query so lookups and
            # filters resolve conditions against that branch's predicate
            # set; the tail steps see the concatenated streams
            bindings = []
            for branch_plan in plan.branch_plans:
                bindings.extend(self._run_steps(
                    branch_plan.steps, branch_plan.query, params, [{}]))
            bindings = self._run_steps(plan.tail_steps, plan.query,
                                       params, bindings)
        else:
            bindings = self._run_steps(plan.steps, plan.query, params,
                                       [{}])
        return self._project(plan.query, bindings)

    def _run_steps(self, steps, query, params, bindings):
        for step in steps:
            if isinstance(step, IndexLookupStep):
                bindings = self._lookup(step, query, params, bindings)
            elif isinstance(step, FilterStep):
                bindings = self._filter(step, params, bindings)
            elif isinstance(step, SortStep):
                bindings = self._sort(step, bindings)
            elif isinstance(step, UnionStep):
                pass  # branch streams are already concatenated
            elif isinstance(step, AggregateStep):
                bindings = self._aggregate(query, step, bindings)
            elif isinstance(step, LimitStep):
                bindings = bindings[:step.limit]
            else:  # pragma: no cover - queries have no other step types
                raise ExecutionError(f"unexpected step {step!r}")
        return bindings

    def _project(self, query, bindings):
        if getattr(query, "is_aggregate", False):
            # aggregation already produced one row per group; the
            # grouping keys make rows distinct by construction
            ids = query.output_ids
            return [{field_id: binding.get(field_id) for field_id in ids}
                    for binding in bindings]
        select = tuple(getattr(query, "select", ()))
        seen = set()
        results = []
        for binding in bindings:
            values = tuple(binding.get(field.id) for field in select)
            if values not in seen:
                seen.add(values)
                results.append(dict(zip((f.id for f in select), values)))
        return results

    def _aggregate(self, query, step, bindings):
        # fold over *distinct* target rows: the underlying select keeps
        # the target entity's ID precisely so duplicate join rows (and
        # duplicate OR-branch rows) collapse before folding
        select_ids = [field.id for field in query.select]
        distinct = {}
        for binding in bindings:
            key = tuple(binding.get(field_id) for field_id in select_ids)
            if key not in distinct:
                distinct[key] = binding
        group_ids = [field.id for field in step.group_by]
        groups = {}
        for binding in distinct.values():
            key = tuple(binding.get(field_id) for field_id in group_ids)
            groups.setdefault(key, []).append(binding)
        if not groups and not group_ids:
            # a global aggregate over zero rows still yields one row
            # (COUNT -> 0, other folds -> NULL)
            groups[()] = []
        results = []
        for rows in groups.values():
            out = ({field_id: rows[0].get(field_id)
                    for field_id in group_ids} if rows else {})
            for aggregate in step.aggregates:
                if aggregate.field is None:  # COUNT(*)
                    out[aggregate.output_id] = len(rows)
                else:
                    values = [row.get(aggregate.field.id) for row in rows]
                    out[aggregate.output_id] = aggregate_value(
                        aggregate.func, values)
            results.append(out)
        return results

    def _lookup(self, step, query, params, bindings):
        column_family = self.store[step.index.key]
        index = step.index
        prefix_fields = [field for field in step.eq_fields
                         if field not in index.hash_fields]
        range_request = None
        if step.range_field is not None:
            condition = query.condition_on(step.range_field)
            range_request = (condition.operator,
                             params[condition.parameter])

        def values_of(binding, field):
            """Candidate values for one key field of the get request.

            A scalar binding contributes one value; an ``IN`` predicate
            contributes one value per (distinct) list member, turning
            the lookup into a multi-get over the cross product.
            """
            if field.id in binding:
                return (binding[field.id],)
            condition = query.condition_on(field)
            if condition is None:
                raise ExecutionError(
                    f"no value available for {field.id} in lookup on "
                    f"{index.key}")
            bound = condition.bind(params)
            if condition.is_membership:
                return tuple(dict.fromkeys(bound))
            return (bound,)

        results = []
        issued = {}
        for binding in bindings:
            partition_values = [values_of(binding, field)
                                for field in index.hash_fields]
            prefix_values = [values_of(binding, field)
                             for field in prefix_fields]
            for partition in itertools.product(*partition_values):
                for prefix in itertools.product(*prefix_values):
                    request = (index.key, partition, prefix,
                               range_request)
                    if request in issued:
                        rows = issued[request]
                    elif (self._transaction_cache is not None
                            and request in self._transaction_cache):
                        rows = self._transaction_cache[request]
                    else:
                        rows = column_family.get(
                            partition, prefix,
                            range_filter=range_request)
                        issued[request] = rows
                        if self._transaction_cache is not None:
                            self._transaction_cache[request] = rows
                    for row in rows:
                        merged = dict(binding)
                        merged.update(row)
                        results.append(merged)
        return results

    def _filter(self, step, params, bindings):
        # Condition.matches applies the canonical NULL rule (see
        # repro.workload.semantics), so a missing/None stored value can
        # still satisfy an equality against a None parameter and never
        # satisfies a range — the same rule the reference interpreter
        # and the store's range scans use.
        kept = []
        for binding in bindings:
            keep = True
            for condition in step.conditions:
                value = binding.get(condition.field.id)
                if not condition.matches(value, condition.bind(params)):
                    keep = False
                    break
            if keep:
                kept.append(binding)
        return kept

    def _sort(self, step, bindings):
        # stable, with the canonical NULLS LAST order; a None/missing
        # sort field must not TypeError against concrete values
        field_ids = [field.id for field in step.fields]
        return sorted(bindings,
                      key=lambda binding: tuple(
                          ordering_key(binding.get(field_id))
                          for field_id in field_ids))

    # -- updates -------------------------------------------------------------------

    def execute_update(self, update, params):
        """Run an update: support queries, dataset mutation, and row-level
        maintenance of every recommended column family it modifies.

        Returns the number of store rows written plus deleted.  Observed
        per statement (support queries included) when a flight recorder
        is attached or telemetry is active."""
        if self._observe_depth == 0 and (
                self.recorder is not None
                or self.monitor is not None
                or telemetry.current().enabled):
            return self._observed("update", update.label or str(update),
                                  self._execute_update, update, params)
        return self._execute_update(update, params)

    def _execute_update(self, update, params):
        plans = self._update_plans.get(update.label, [])
        for update_plan in plans:
            for support_plans in \
                    update_plan.support_plans_by_query.values():
                chosen = support_plans[0]
                self.execute_query(chosen.query, params, plan=chosen)
        anchor_entity, anchor_ids = self._anchor_for(update, params)
        before = {}
        for update_plan in plans:
            before[update_plan.index.key] = materialize_rows(
                self.dataset, update_plan.index, anchor_entity, anchor_ids)
        affected = self.dataset.apply(update, params)
        if anchor_ids is None:
            anchor_ids = affected
        changed = 0
        for update_plan in plans:
            index = update_plan.index
            column_family = self.store[index.key]
            after = materialize_rows(self.dataset, index, anchor_entity,
                                     anchor_ids or affected)
            old_rows = {column_family.row_key(row): row
                        for row in before[index.key]}
            new_rows = {column_family.row_key(row): row for row in after}
            vanished = {key: row for key, row in old_rows.items()
                        if key not in new_rows}
            still_alive = self._rows_still_derivable(
                index, column_family, vanished, anchor_entity)
            if self.update_protocol == "nose":
                # the paper's protocol: remove records for the old data,
                # then insert records corresponding to the new data
                to_delete = [row for key, row in old_rows.items()
                             if key not in still_alive]
                to_put = list(new_rows.values()) \
                    + list(still_alive.values())
            else:
                to_delete = [row for key, row in vanished.items()
                             if key not in still_alive]
                to_put = [row for key, row in new_rows.items()
                          if old_rows.get(key) != row]
                to_put += [row for key, row in still_alive.items()
                           if old_rows.get(key) != row]
            if to_delete:
                changed += column_family.delete_many(to_delete)
            if to_put:
                changed += column_family.put_many(to_put)
        return changed

    def _rows_still_derivable(self, index, column_family, vanished,
                              anchor_entity):
        """Rows among ``vanished`` that other join rows still produce.

        When a column family's record key does not include the anchor
        entity's ID (e.g. grouped views keyed only by the result
        entity), a record that stopped being derivable *through the
        anchor* may still be derivable through other join rows — it
        must be kept, with freshly materialized values.  Returns
        ``{key: fresh row}`` for such records.
        """
        if not vanished or len(index.path) == 1:
            return {}
        key_ids = {field.id for field in index.key_fields}
        if anchor_entity is not None \
                and anchor_entity.id_field.id in key_ids:
            # every record key pins a specific anchor row, so the
            # anchored recomputation was already authoritative
            return {}
        check_field = next(
            (entity.id_field for entity in index.path.entities
             if entity is not anchor_entity
             and entity.id_field.id in key_ids), None)
        if check_field is not None:
            check_ids = sorted({row[check_field.id]
                                for row in vanished.values()
                                if row.get(check_field.id) is not None})
            fresh = materialize_rows(self.dataset, index,
                                     check_field.parent, check_ids)
        else:  # pragma: no cover - keys without any entity ID are rare
            fresh = materialize_rows(self.dataset, index)
        return {key: row for row in fresh
                for key in [column_family.row_key(row)]
                if key in vanished}

    def _anchor_for(self, update, params):
        """Entity (and IDs) whose join neighbourhood the update touches."""
        from repro.workload.statements import Connect, Insert
        if isinstance(update, Insert):
            id_parameter = update.settings[update.entity.id_field]
            return update.entity, [params[id_parameter]]
        if isinstance(update, Connect):
            return update.entity, [params[update.source_parameter]]
        return update.entity, self.dataset.matching_ids(update, params)
