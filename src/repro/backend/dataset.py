"""Ground-truth data: entity rows plus relationship instances.

The benchmark harnesses need a consistent source of truth from which
every column family can be (re)materialized: initial loading, and the
row-level maintenance performed when updates execute.  A
:class:`Dataset` stores entity rows keyed by ID and adjacency sets for
both directions of every relationship, and can enumerate the join rows
of any path — optionally anchored at specific entity IDs, which makes
update maintenance proportional to the change rather than the data.
"""

from __future__ import annotations

from repro.exceptions import ExecutionError, ModelError
from repro.model.fields import ForeignKeyField


class Dataset:
    """In-memory instance of a conceptual model."""

    def __init__(self, model):
        self.model = model
        #: entity name -> {id value: {field_id: value}}
        self.rows = {name: {} for name in model.entities}
        #: foreign key field id -> {source id: set of target ids}
        self.links = {}
        for entity in model.entities.values():
            for key in entity.foreign_keys:
                self.links[key.id] = {}

    # -- population ------------------------------------------------------------

    def add_row(self, entity_name, values):
        """Insert one entity row; ``values`` maps field names (or ids) to
        values and must include the primary key."""
        entity = self.model.entity(entity_name)
        row = {}
        for name, value in values.items():
            field = entity.fields.get(name.split(".")[-1])
            if field is None or isinstance(field, ForeignKeyField):
                raise ModelError(
                    f"entity {entity.name!r} has no attribute {name!r}")
            row[field.id] = value
        id_field = entity.id_field
        if id_field.id not in row:
            raise ModelError(
                f"row for {entity.name!r} is missing its primary key")
        self.rows[entity.name][row[id_field.id]] = row
        return row

    def connect(self, entity_name, source_id, relationship, target_id):
        """Create a relationship instance (both directions)."""
        key = self._relationship(entity_name, relationship)
        self.links[key.id].setdefault(source_id, set()).add(target_id)
        if key.reverse is not None:
            self.links[key.reverse.id].setdefault(
                target_id, set()).add(source_id)

    def disconnect(self, entity_name, source_id, relationship, target_id):
        key = self._relationship(entity_name, relationship)
        self.links[key.id].get(source_id, set()).discard(target_id)
        if key.reverse is not None:
            self.links[key.reverse.id].get(target_id, set()).discard(
                source_id)

    def delete_entity(self, entity_name, entity_id):
        """Remove a row and every relationship instance touching it."""
        entity = self.model.entity(entity_name)
        self.rows[entity.name].pop(entity_id, None)
        for key in entity.foreign_keys:
            targets = self.links[key.id].pop(entity_id, set())
            if key.reverse is not None:
                for target in targets:
                    self.links[key.reverse.id].get(target, set()).discard(
                        entity_id)

    def copy(self):
        """An independent deep copy (rows and links), sharing the model.

        Differential verification replays the same statement sequence
        against fresh state per update protocol, and the fuzz shrinker
        mutates candidate datasets; both start from a copy.
        """
        twin = Dataset(self.model)
        twin.rows = {name: {identifier: dict(row)
                            for identifier, row in rows.items()}
                     for name, rows in self.rows.items()}
        twin.links = {key: {source: set(targets)
                            for source, targets in links.items()}
                      for key, links in self.links.items()}
        return twin

    def _relationship(self, entity_name, relationship):
        entity = self.model.entity(entity_name)
        key = entity.fields.get(relationship) \
            if isinstance(relationship, str) else relationship
        if not isinstance(key, ForeignKeyField):
            raise ModelError(
                f"{entity.name}.{relationship} is not a relationship")
        return key

    # -- navigation --------------------------------------------------------------

    def related(self, key, source_id):
        """Target IDs reached from one source row over one edge."""
        return self.links[key.id].get(source_id, set())

    def row(self, entity, entity_id):
        stored = self.rows[entity.name].get(entity_id)
        if stored is None:
            raise ExecutionError(
                f"no {entity.name} row with id {entity_id!r}")
        return stored

    def join_tuples(self, path, anchor_position=None, anchor_ids=None):
        """All ID tuples of the join along ``path``.

        When an anchor is given, only join rows containing one of
        ``anchor_ids`` at ``anchor_position`` are produced — the
        expansion walks outward from the anchor in both directions, so
        the work is proportional to the number of produced rows.
        """
        if anchor_position is None:
            anchor_position = 0
            anchor_ids = list(self.rows[path.first.name])
        tuples = [(identifier,) for identifier in anchor_ids
                  if identifier in self.rows[
                      path.entities[anchor_position].name]]
        # expand toward the end of the path
        for key in path.keys[anchor_position:]:
            tuples = [row + (target,)
                      for row in tuples
                      for target in self.related(key, row[-1])]
        # expand toward the start of the path (via reverse edges)
        for key in reversed(path.keys[:anchor_position]):
            reverse = key.reverse
            if reverse is None:
                raise ModelError(
                    f"cannot expand over {key.id}: no reverse edge")
            tuples = [(source,) + row
                      for row in tuples
                      for source in self.related(reverse, row[0])]
        return tuples

    # -- statement evaluation --------------------------------------------------------

    def matching_ids(self, statement, params):
        """Target-entity IDs satisfying a statement's predicates.

        Reference (non-simulated) evaluation over the ground truth; used
        to drive maintenance and to validate plan execution results.
        """
        path = statement.key_path
        tuples = self._filtered_tuples(statement, params, path)
        return sorted({row[0] for row in tuples})

    def _filtered_tuples(self, statement, params, path):
        anchor_position, anchor_ids = self._best_anchor(
            statement, params, path)
        tuples = self.join_tuples(path, anchor_position, anchor_ids)
        branches = statement.disjuncts

        def satisfies(row, branch):
            for condition in branch:
                position = path.index_of(condition.field.parent)
                value = self.rows[path.entities[position].name][
                    row[position]].get(condition.field.id)
                if not condition.matches(value, condition.bind(params)):
                    return False
            return True

        return [row for row in tuples
                if any(satisfies(row, branch) for branch in branches)]

    def _best_anchor(self, statement, params, path):
        """Anchor the join at the most selective bindable predicate."""
        if getattr(statement, "is_disjunctive", False):
            # no single predicate constrains every OR branch
            return None, None
        best = None
        for condition in statement.bindable_conditions:
            position = path.index_of(condition.field.parent)
            entity = path.entities[position]
            bound = condition.bind(params)
            if condition.field is entity.id_field \
                    and not condition.is_membership:
                ids = [bound] if bound in self.rows[entity.name] else []
            elif condition.field is entity.id_field:
                ids = [member for member in dict.fromkeys(bound)
                       if member in self.rows[entity.name]]
            else:
                field_id = condition.field.id
                ids = [identifier for identifier, row
                       in self.rows[entity.name].items()
                       if condition.matches(row.get(field_id), bound)]
            if best is None or len(ids) < len(best[1]):
                best = (position, ids)
        if best is None:
            return None, None
        return best

    def evaluate_query(self, query, params):
        """Reference answer for a query: distinct selected-field tuples.

        Evaluates the query directly over the ground truth (no plans, no
        store) — the oracle the execution-engine tests compare against.
        """
        path = query.key_path
        tuples = self._filtered_tuples(query, params, path)
        positions = {field.id: path.index_of(field.parent)
                     for field in query.select}
        results = set()
        for row in tuples:
            values = []
            for field in query.select:
                position = positions[field.id]
                source = self.rows[path.entities[position].name].get(
                    row[position], {})
                values.append(source.get(field.id))
            results.add(tuple(values))
        return results

    # -- mutation by statements ----------------------------------------------------

    def apply(self, statement, params):
        """Apply a write statement; returns the affected target IDs."""
        from repro.workload.statements import (
            Connect,
            Delete,
            Insert,
            Update,
        )
        if isinstance(statement, Insert):
            return self._apply_insert(statement, params)
        if isinstance(statement, Update):
            return self._apply_update(statement, params)
        if isinstance(statement, Delete):
            return self._apply_delete(statement, params)
        if isinstance(statement, Connect):
            return self._apply_connect(statement, params)
        raise ExecutionError(f"not a write statement: {statement!r}")

    def _apply_insert(self, insert, params):
        entity = insert.entity
        values = {field.id: params[parameter]
                  for field, parameter in insert.settings.items()}
        new_id = values[entity.id_field.id]
        self.rows[entity.name][new_id] = values
        for key, parameter in insert.connections:
            self.connect(entity.name, new_id, key, params[parameter])
        return [new_id]

    def _apply_update(self, update, params):
        affected = self.matching_ids(update, params)
        for entity_id in affected:
            row = self.rows[update.entity.name][entity_id]
            for field, parameter in update.settings.items():
                row[field.id] = params[parameter]
        return affected

    def _apply_delete(self, delete, params):
        affected = self.matching_ids(delete, params)
        for entity_id in affected:
            self.delete_entity(delete.entity.name, entity_id)
        return affected

    def _apply_connect(self, connect, params):
        source_id = params[connect.source_parameter]
        target_id = params[connect.target_parameter]
        if connect.removes_link:
            self.disconnect(connect.entity.name, source_id,
                            connect.relationship, target_id)
        else:
            self.connect(connect.entity.name, source_id,
                         connect.relationship, target_id)
        return [source_id]

    # -- statistics refresh -----------------------------------------------------------

    def entity_count(self, entity_name):
        return len(self.rows[entity_name])

    def sync_counts(self):
        """Copy observed row counts back onto the model's entities so
        cardinality estimates match the loaded data."""
        for name, rows in self.rows.items():
            if rows:
                self.model.entity(name).count = len(rows)
        return self

    def __repr__(self):
        total = sum(len(rows) for rows in self.rows.values())
        return f"Dataset({self.model.name!r}, rows={total})"


def materialize_rows(dataset, index, anchor_entity=None, anchor_ids=None):
    """Rows of a column family: the path join projected onto its fields.

    With an anchor, only the join rows containing the given entity IDs
    are produced (the rows an update touches).  A path may visit the
    anchor entity more than once (e.g. ``E2.R8To4.R6From1.R4To2`` both
    starts and ends at E2); anchoring only at the first occurrence
    would miss join rows that pass through a later one — found by the
    differential oracle as lost maintenance rows on inserts — so the
    expansion anchors at every occurrence and deduplicates.
    """
    path = index.path
    if anchor_entity is None:
        tuples = dataset.join_tuples(path)
    else:
        positions = [position
                     for position, entity in enumerate(path.entities)
                     if entity is anchor_entity]
        if not positions:
            return []
        seen = set()
        tuples = []
        for position in positions:
            for ids in dataset.join_tuples(path, position, anchor_ids):
                if ids not in seen:
                    seen.add(ids)
                    tuples.append(ids)
    fields_by_position = {}
    for field in index.all_fields:
        position = path.index_of(field.parent)
        fields_by_position.setdefault(position, []).append(field)
    rows = []
    for ids in tuples:
        row = {}
        for position, fields in fields_by_position.items():
            source = dataset.rows[path.entities[position].name].get(
                ids[position])
            if source is None:
                row = None
                break
            for field in fields:
                row[field.id] = source.get(field.id)
        if row is not None:
            rows.append(row)
    return rows
