"""Simulated extensible record store and plan execution engine.

The paper evaluated NoSE against Cassandra 2.0.9 on a dedicated testbed;
this package substitutes an in-memory extensible record store exposing
the same operation surface (get by partition key plus clustering range,
put, delete) with a calibrated service-time simulator, so the benchmark
harnesses can measure schema quality with a yardstick independent of the
advisor's cost model.
"""

from repro.backend.dataset import Dataset, materialize_rows
from repro.backend.executor import ExecutionEngine
from repro.backend.latency import LatencyModel
from repro.backend.store import ColumnFamily, Store, StoreMetrics

__all__ = [
    "ColumnFamily",
    "Dataset",
    "ExecutionEngine",
    "LatencyModel",
    "Store",
    "StoreMetrics",
    "materialize_rows",
]
