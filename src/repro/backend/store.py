"""An in-memory extensible record store (the Cassandra substrate).

Implements the column-family model of §III-C: each
:class:`ColumnFamily` maps a partition key to records sorted by
clustering key, supporting exactly the get/put/delete surface the paper
assumes.  Every operation is metered (request counts, rows, bytes) and
charged simulated service time through a
:class:`~repro.backend.latency.LatencyModel`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.backend.latency import LatencyModel
from repro.exceptions import ExecutionError
from repro.workload.semantics import NULL_KEY, ordering_key


def _clustering_key(clustering):
    """Comparable sort key for a clustering tuple (NULLS LAST; see
    repro.workload.semantics — the rule shared with client-side sorts
    and the reference interpreter)."""
    return tuple(ordering_key(value) for value in clustering)


class StoreMetrics:
    """Operation counters and accumulated simulated time (ms)."""

    __slots__ = ("gets", "puts", "deletes", "rows_read", "rows_scanned",
                 "rows_written", "rows_deleted", "bytes_read",
                 "partitions_touched", "simulated_ms")

    def __init__(self):
        self.reset()

    def reset(self):
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.rows_read = 0
        self.rows_scanned = 0
        self.rows_written = 0
        self.rows_deleted = 0
        self.bytes_read = 0
        self.partitions_touched = 0
        self.simulated_ms = 0.0

    def snapshot(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (f"StoreMetrics(gets={self.gets}, puts={self.puts}, "
                f"rows_read={self.rows_read}, "
                f"simulated_ms={self.simulated_ms:.3f})")


class ColumnFamily:
    """One table: partition key -> clustering-key-sorted records.

    Rows are supplied as ``{field_id: value}`` dictionaries; the column
    family extracts its partition tuple, clustering tuple, and value
    columns from them.
    """

    def __init__(self, index, latency, metrics, store=None):
        self.index = index
        self.name = index.key
        self._latency = latency
        self._metrics = metrics
        #: owning store, consulted for the optional per-op flight
        #: recorder (one attribute read per charged operation when
        #: nothing is recording)
        self._store = store
        self._hash_ids = tuple(f.id for f in index.hash_fields)
        self._order_ids = tuple(f.id for f in index.order_fields)
        self._extra_ids = tuple(f.id for f in index.extra_fields)
        self._row_bytes = max(index.entry_size, 1)
        #: partition tuple -> sorted list of (clustering tuple, values)
        self._partitions = {}

    # -- row shredding -------------------------------------------------------

    def _keys_of(self, row):
        try:
            partition = tuple(row[field] for field in self._hash_ids)
            clustering = tuple(row[field] for field in self._order_ids)
        except KeyError as missing:
            raise ExecutionError(
                f"row is missing key column {missing} for {self.name}"
            ) from None
        return partition, clustering

    def _values_of(self, row):
        return {field: row.get(field) for field in self._extra_ids}

    def row_key(self, row):
        """The (partition, clustering) key tuple identifying a row."""
        return self._keys_of(row)

    def _as_row(self, partition, clustering, values):
        row = dict(zip(self._hash_ids, partition))
        row.update(zip(self._order_ids, clustering))
        row.update(values)
        return row

    # -- operations --------------------------------------------------------------

    def _recorder(self):
        return self._store.recorder if self._store is not None else None

    def put(self, row, charge=True):
        """Upsert one record (Cassandra put semantics).  Returns the
        record's partition tuple (for batch partition accounting)."""
        partition, clustering = self._keys_of(row)
        bucket = self._partitions.setdefault(partition, [])
        position = bisect_left(bucket, _clustering_key(clustering),
                               key=lambda record: _clustering_key(
                                   record[0]))
        values = self._values_of(row)
        if position < len(bucket) and bucket[position][0] == clustering:
            bucket[position] = (clustering,
                                {**bucket[position][1], **values})
        else:
            insort(bucket, (clustering, values),
                   key=lambda record: _clustering_key(record[0]))
        if charge:
            self._metrics.puts += 1
            self._metrics.rows_written += 1
            self._metrics.partitions_touched += 1
            elapsed = self._latency.put_time(1)
            self._metrics.simulated_ms += elapsed
            recorder = self._recorder()
            if recorder is not None:
                recorder.observe_op(self.name, "put", rows=1,
                                    row_bytes=self._row_bytes,
                                    time_ms=elapsed)
        return partition

    def put_many(self, rows, charge=True):
        """Batch upsert, charged as a single request."""
        count = 0
        partitions = set()
        for row in rows:
            partition = self.put(row, charge=False)
            count += 1
            if charge:
                partitions.add(partition)
        if charge and count:
            self._metrics.puts += 1
            self._metrics.rows_written += count
            self._metrics.partitions_touched += len(partitions)
            elapsed = self._latency.put_time(count)
            self._metrics.simulated_ms += elapsed
            recorder = self._recorder()
            if recorder is not None:
                recorder.observe_op(self.name, "put", rows=count,
                                    row_bytes=self._row_bytes,
                                    time_ms=elapsed)
        return count

    def get(self, partition, prefix=(), range_filter=None, limit=None,
            charge=True):
        """One get request: all records of a partition whose clustering
        key extends ``prefix``, optionally range-restricted on the next
        clustering component.

        ``range_filter`` is ``(operator, value)`` with operator one of
        ``> >= < <=`` applied to clustering component ``len(prefix)``.
        Returns full rows (key and value columns merged).
        """
        partition = tuple(partition)
        prefix = tuple(prefix)
        bucket = self._partitions.get(partition, [])
        width = len(prefix)
        prefix_key = _clustering_key(prefix)
        low = bisect_left(bucket, prefix_key,
                          key=lambda record: _clustering_key(
                              record[0][:width]))
        high = bisect_right(bucket, prefix_key,
                            key=lambda record: _clustering_key(
                                record[0][:width]))
        scanned = high - low
        selected = bucket[low:high]
        if range_filter is not None:
            operator, bound = range_filter
            component = width
            if component >= len(self._order_ids):
                raise ExecutionError(
                    f"no clustering component {component} to range-scan "
                    f"in {self.name}")
            selected = _range_restrict(selected, component, operator,
                                       bound)
        if limit is not None:
            selected = selected[:limit]
        rows = [self._as_row(partition, clustering, values)
                for clustering, values in selected]
        if charge:
            self._metrics.gets += 1
            self._metrics.rows_read += len(rows)
            self._metrics.rows_scanned += scanned
            self._metrics.partitions_touched += 1
            returned_bytes = len(rows) * self._row_bytes
            self._metrics.bytes_read += returned_bytes
            elapsed = self._latency.get_time(scanned, returned_bytes)
            self._metrics.simulated_ms += elapsed
            recorder = self._recorder()
            if recorder is not None:
                recorder.observe_op(self.name, "get", rows=scanned,
                                    returned=len(rows),
                                    row_bytes=self._row_bytes,
                                    bytes_read=returned_bytes,
                                    time_ms=elapsed)
        return rows

    def delete_row(self, row, charge=True):
        """Remove one record identified by its key columns; no-op if
        absent. Returns True when a record was removed."""
        partition, clustering = self._keys_of(row)
        bucket = self._partitions.get(partition)
        removed = False
        if bucket:
            position = bisect_left(bucket, _clustering_key(clustering),
                                   key=lambda record: _clustering_key(
                                       record[0]))
            if position < len(bucket) and bucket[position][0] == clustering:
                del bucket[position]
                removed = True
                if not bucket:
                    del self._partitions[partition]
        if charge:
            self._metrics.deletes += 1
            self._metrics.rows_deleted += 1 if removed else 0
            self._metrics.partitions_touched += 1
            elapsed = self._latency.delete_time(1)
            self._metrics.simulated_ms += elapsed
            recorder = self._recorder()
            if recorder is not None:
                recorder.observe_op(self.name, "delete", rows=1,
                                    row_bytes=self._row_bytes,
                                    time_ms=elapsed)
        return removed

    def delete_many(self, rows, charge=True):
        """Batch delete, charged as a single request."""
        removed = 0
        rows = list(rows)
        partitions = set()
        for row in rows:
            removed += self.delete_row(row, charge=False)
            if charge:
                partitions.add(self._keys_of(row)[0])
        if charge and rows:
            self._metrics.deletes += 1
            self._metrics.rows_deleted += removed
            self._metrics.partitions_touched += len(partitions)
            elapsed = self._latency.delete_time(len(rows))
            self._metrics.simulated_ms += elapsed
            recorder = self._recorder()
            if recorder is not None:
                recorder.observe_op(self.name, "delete", rows=len(rows),
                                    row_bytes=self._row_bytes,
                                    time_ms=elapsed)
        return removed

    # -- introspection ---------------------------------------------------------------

    def rows(self):
        """Iterate all rows (unmetered; for tests and maintenance)."""
        for partition, bucket in self._partitions.items():
            for clustering, values in bucket:
                yield self._as_row(partition, clustering, values)

    @property
    def partition_count(self):
        return len(self._partitions)

    def __len__(self):
        return sum(len(bucket) for bucket in self._partitions.values())

    def __repr__(self):
        return (f"ColumnFamily({self.name}, partitions="
                f"{self.partition_count}, rows={len(self)})")


def _range_restrict(records, component, operator, bound):
    """Restrict a clustering-sorted block on one sorted component.

    Follows the canonical NULL rule: a NULL bound matches nothing, and
    NULL component values (sorted last) never satisfy a range.
    """
    if bound is None:
        return []
    keys = [ordering_key(record[0][component]) for record in records]
    bound_key = ordering_key(bound)
    # NULL components sort after every bound, so they must be cut from
    # the tail of any lower-bounded scan
    nulls_start = bisect_left(keys, NULL_KEY)
    if operator == ">":
        return records[bisect_right(keys, bound_key):nulls_start]
    if operator == ">=":
        return records[bisect_left(keys, bound_key):nulls_start]
    if operator == "<":
        return records[:bisect_left(keys, bound_key)]
    if operator == "<=":
        return records[:bisect_right(keys, bound_key)]
    raise ExecutionError(f"unsupported range operator {operator!r}")


class Store:
    """A collection of column families sharing metrics and a latency
    model — the simulated record-store cluster."""

    def __init__(self, latency=None):
        self.latency = latency or LatencyModel()
        self.metrics = StoreMetrics()
        self.column_families = {}
        #: optional flight recorder receiving one ``observe_op`` call
        #: per charged operation (see :mod:`repro.profile`)
        self.recorder = None

    def create(self, index):
        """Create (or return) the column family backing an index."""
        if index.key not in self.column_families:
            self.column_families[index.key] = ColumnFamily(
                index, self.latency, self.metrics, store=self)
        return self.column_families[index.key]

    def drop(self, index):
        self.column_families.pop(index.key, None)

    def __getitem__(self, key):
        try:
            return self.column_families[key]
        except KeyError:
            raise ExecutionError(f"no column family {key!r}") from None

    def __contains__(self, key):
        return key in self.column_families

    @property
    def total_rows(self):
        return sum(len(cf) for cf in self.column_families.values())

    def reset_metrics(self):
        self.metrics.reset()

    def __repr__(self):
        return (f"Store(column_families={len(self.column_families)}, "
                f"rows={self.total_rows})")
