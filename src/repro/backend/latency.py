"""Service-time simulation for the in-memory record store.

Charges each operation a latency (in milliseconds) resembling a
Cassandra deployment on a local network: a fixed per-request round-trip
plus per-row scan and per-byte transfer components.  The constants are
intentionally *different* from the advisor's cost model
(:mod:`repro.cost`) so that benchmark results measure recommendation
quality with an independent yardstick rather than echoing the advisor's
own estimates.
"""

from __future__ import annotations


class LatencyModel:
    """Latency charged per store operation, in milliseconds."""

    def __init__(self, get_base=0.45, row_scan=0.0025, byte_transfer=4e-5,
                 put_base=0.25, put_row=0.035, delete_base=0.25,
                 delete_row=0.03):
        self.get_base = get_base
        self.row_scan = row_scan
        self.byte_transfer = byte_transfer
        self.put_base = put_base
        self.put_row = put_row
        self.delete_base = delete_base
        self.delete_row = delete_row

    def get_time(self, rows_scanned, bytes_returned):
        """One get request: seek, scan the clustering block, transfer."""
        return (self.get_base + rows_scanned * self.row_scan
                + bytes_returned * self.byte_transfer)

    def put_time(self, rows):
        """One put request writing ``rows`` rows (batched per request)."""
        return self.put_base + rows * self.put_row

    def delete_time(self, rows):
        return self.delete_base + rows * self.delete_row
