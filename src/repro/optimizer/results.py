"""The advisor's output: a recommended schema plus per-statement plans."""

from __future__ import annotations


class SchemaRecommendation:
    """Result of schema optimization (the right-hand side of Fig 2).

    ``indexes`` are the recommended column families; ``query_plans`` maps
    each workload query to its recommended implementation plan;
    ``update_plans`` maps each update to one maintenance plan per
    recommended column family it modifies (with the chosen support-query
    plans).  ``total_cost`` is the weighted workload cost under the cost
    model used for optimization.
    """

    def __init__(self, indexes, query_plans, update_plans, weights,
                 total_cost):
        self.indexes = tuple(indexes)
        self.query_plans = dict(query_plans)
        self.update_plans = dict(update_plans)
        self.weights = dict(weights)
        self.total_cost = total_cost
        #: filled by the advisor with an AdvisorTiming breakdown
        self.timing = None
        #: filled by the BIP: per-candidate selection statuses and
        #: per-statement chosen-vs-rejected plan costs
        self.ledger = None
        #: filled by the advisor: candidate provenance, pruning ledger
        #: and the cost model used (see repro.explain.ExplainData)
        self.explain_data = None

    # -- derived reporting ---------------------------------------------------

    @property
    def size(self):
        """Estimated total schema size in bytes."""
        return sum(index.size for index in self.indexes)

    def weight(self, statement):
        return self.weights.get(statement.label, 0.0)

    def query_cost(self, query):
        """Unweighted cost of the chosen plan for one query."""
        return self.query_plans[query].cost

    def update_cost(self, update):
        """Unweighted maintenance cost of one update across the schema."""
        total = 0.0
        for plan in self.update_plans.get(update, []):
            total += plan.update_cost
            for plans in plan.support_plans_by_query.values():
                total += min(p.cost for p in plans)
        return total

    @property
    def statement_costs(self):
        """``{label: (weight, unweighted cost)}`` for every statement."""
        costs = {}
        for query, plan in self.query_plans.items():
            costs[query.label] = (self.weight(query), plan.cost)
        for update in self.update_plans:
            costs[update.label] = (self.weight(update),
                                   self.update_cost(update))
        return costs

    def as_cql(self, keyspace=None):
        """CQL3 DDL creating every recommended column family."""
        from repro.indexes.cql import create_schema
        return create_schema(self.indexes, keyspace=keyspace)

    def as_dict(self):
        """JSON-serializable summary of the recommendation."""
        def plan_steps(plan):
            return [step.describe() for step in plan.steps]

        return {
            "total_cost": self.total_cost,
            "size_bytes": self.size,
            "indexes": [
                {"key": index.key, "triple": index.triple(),
                 "path": str(index.path),
                 "entries": index.entries,
                 "size_bytes": index.size}
                for index in self.indexes],
            "query_plans": {
                query.label: {"cost": plan.cost,
                              "steps": plan_steps(plan)}
                for query, plan in self.query_plans.items()},
            "update_plans": {
                update.label: [
                    {"index": plan.index.key,
                     "support_queries": [
                         support.text or str(support)
                         for support in plan.support_plans_by_query],
                     "steps": [step.describe()
                               for step in plan.update_steps]}
                    for plan in plans]
                for update, plans in self.update_plans.items()},
        }

    def explain_document(self):
        """The serializable explain document (see ``repro.explain``)."""
        from repro.explain import explain_document
        return explain_document(self)

    def explain(self, statement=None):
        """Annotated decision report: provenance, ledger and plan trees.

        Renders each chosen plan with per-step cost-model terms, the
        derivation chain of every recommended column family, and the
        solver's chosen-vs-rejected accounting.  ``statement`` narrows
        the report to one statement label.
        """
        from repro.reporting import explain_report
        return explain_report(self.explain_document(),
                              statement=statement)

    def describe(self):
        """Human-readable report: schema, then one plan per statement."""
        lines = [f"Recommended schema ({len(self.indexes)} column families, "
                 f"~{self.size / 1e6:.2f} MB, cost {self.total_cost:.4f}):"]
        for index in self.indexes:
            lines.append(f"  {index.key}  {index.triple()}  over {index.path}")
        lines.append("")
        for query, plan in self.query_plans.items():
            lines.append(plan.describe())
        for update, plans in self.update_plans.items():
            for plan in plans:
                lines.append(plan.describe())
        return "\n".join(lines)

    def __repr__(self):
        return (f"SchemaRecommendation(indexes={len(self.indexes)}, "
                f"cost={self.total_cost:.4f})")
