"""Schema optimization: choose column families via a BIP (paper §V, §VI-D).

The problem container gathers per-statement plan spaces; the BIP solver
(scipy's HiGHS backend, substituting for the paper's Gurobi) selects a
set of column families and one plan per statement minimising total
weighted cost, then re-solves to find the smallest schema achieving that
cost, optionally under a storage constraint.  A brute-force optimizer
cross-checks the encoding on small instances.
"""

from repro.optimizer.bip import BIPOptimizer
from repro.optimizer.brute import BruteForceOptimizer
from repro.optimizer.problem import OptimizationProblem
from repro.optimizer.results import SchemaRecommendation

__all__ = [
    "BIPOptimizer",
    "BruteForceOptimizer",
    "OptimizationProblem",
    "SchemaRecommendation",
]
