"""The schema-design optimization problem instance."""

from __future__ import annotations

from repro.exceptions import OptimizationError


class OptimizationProblem:
    """Everything the optimizers need, in one container.

    ``query_plans`` maps each workload query to its (costed) plan space;
    ``update_plans`` maps each update to its list of
    :class:`~repro.planner.plans.UpdatePlan` (one per modified candidate
    column family, support plans costed).  ``weights`` maps statements to
    their workload weights.  ``space_limit`` optionally bounds the total
    estimated size of the recommended schema in bytes.
    """

    def __init__(self, query_plans, update_plans, weights,
                 space_limit=None):
        self.query_plans = dict(query_plans)
        self.update_plans = dict(update_plans)
        self.weights = dict(weights)
        self.space_limit = space_limit
        self._indexes = None
        for query, plans in self.query_plans.items():
            if not plans:
                raise OptimizationError(
                    f"query has an empty plan space: {query.text or query!r}")

    @property
    def indexes(self):
        """Every candidate column family referenced by any plan.

        The plan spaces are fixed at construction, so the scan is done
        once and cached — the BIP consults this list per column.
        """
        if self._indexes is None:
            seen = {}
            for plans in self.query_plans.values():
                for plan in plans:
                    for index in plan.indexes:
                        seen.setdefault(index.key, index)
            for update_plans in self.update_plans.values():
                for update_plan in update_plans:
                    seen.setdefault(update_plan.index.key,
                                    update_plan.index)
                    for plan in update_plan.support_plans:
                        for index in plan.indexes:
                            seen.setdefault(index.key, index)
            self._indexes = list(seen.values())
        return list(self._indexes)

    def weight(self, statement):
        try:
            return self.weights[statement.label]
        except KeyError:
            raise OptimizationError(
                f"no weight for statement {statement.label!r}") from None

    def set_weights(self, weights):
        """Replace the statement weights (plan spaces stay fixed).

        Every statement with a plan space must keep a weight — the BIP's
        constraint structure is weight-independent, so a prepared
        program can be re-costed in place after this.
        """
        weights = dict(weights)
        statements = list(self.query_plans) + list(self.update_plans)
        missing = [s.label for s in statements if s.label not in weights]
        if missing:
            raise OptimizationError(
                f"new weights miss statements: {sorted(missing)}")
        self.weights = weights

    def evaluate_schema(self, keys):
        """Total weighted cost of selecting exactly ``keys``, or None.

        Evaluates the feasible solution that materializes every listed
        column family: the cheapest plan per query restricted to
        ``keys``, plus — for every maintained column family in ``keys``
        — its update cost and the cheapest feasible plan per support
        query.  Returns None when some query or open support gate has
        no plan within ``keys`` or the schema exceeds the space limit.
        Requires costed plans; used to turn a previous recommendation
        into a warm-start incumbent bound for the BIP.
        """
        known = {index.key for index in self.indexes}
        keys = frozenset(keys) & known
        if self.space_limit is not None:
            total_size = sum(index.size for index in self.indexes
                             if index.key in keys)
            if total_size > self.space_limit:
                return None

        def cheapest(plans):
            feasible = [plan.cost for plan in plans
                        if all(index.key in keys
                               for index in plan.indexes)]
            return min(feasible) if feasible else None

        total = 0.0
        for query, plans in self.query_plans.items():
            cost = cheapest(plans)
            if cost is None:
                return None
            total += self.weight(query) * cost
        for update, update_plans in self.update_plans.items():
            weight = self.weight(update)
            for update_plan in update_plans:
                if update_plan.index.key not in keys:
                    continue
                total += weight * update_plan.update_cost
                grouped = update_plan.support_plans_by_query
                for _support, plans in grouped.items():
                    cost = cheapest(plans)
                    if cost is None:
                        return None
                    total += weight * cost
        return total

    @property
    def size(self):
        """Rough problem size: (candidates, query plans, support plans)."""
        query_plan_count = sum(len(p) for p in self.query_plans.values())
        support_plan_count = sum(
            len(up.support_plans)
            for plans in self.update_plans.values() for up in plans)
        return (len(self.indexes), query_plan_count, support_plan_count)

    def __repr__(self):
        candidates, query_plans, support_plans = self.size
        return (f"OptimizationProblem(candidates={candidates}, "
                f"query_plans={query_plans}, "
                f"support_plans={support_plans})")
