"""Exhaustive schema optimization, for validating the BIP encoding.

Enumerates every subset of the candidate pool (the naive approach §V
mentions and rejects for scale) and picks the feasible subset with the
lowest weighted cost, breaking ties toward fewer column families.  Only
usable for small candidate pools; property tests assert it agrees with
:class:`~repro.optimizer.bip.BIPOptimizer`.
"""

from __future__ import annotations

from itertools import combinations

from repro.exceptions import OptimizationError
from repro.optimizer.results import SchemaRecommendation
from repro.planner.plans import UpdatePlan


class BruteForceOptimizer:
    """Exponential-time reference optimizer."""

    def __init__(self, max_indexes=16):
        self.max_indexes = max_indexes

    def solve(self, problem):
        indexes = problem.indexes
        if len(indexes) > self.max_indexes:
            raise OptimizationError(
                f"brute force supports at most {self.max_indexes} "
                f"candidates, got {len(indexes)}")
        query_requirements = {
            query: [(plan, frozenset(i.key for i in plan.indexes))
                    for plan in plans]
            for query, plans in problem.query_plans.items()}
        best = None
        for subset_size in range(len(indexes) + 1):
            for subset in combinations(indexes, subset_size):
                outcome = self._evaluate(problem, subset,
                                         query_requirements)
                if outcome is None:
                    continue
                cost, query_plans, update_plans = outcome
                candidate = (cost, len(subset))
                if best is None or candidate < best[0]:
                    best = (candidate, subset, query_plans, update_plans)
        if best is None:
            raise OptimizationError("no feasible schema exists")
        (cost, _size), subset, query_plans, update_plans = best
        return SchemaRecommendation(subset, query_plans, update_plans,
                                    problem.weights, cost)

    def _evaluate(self, problem, subset, query_requirements):
        keys = frozenset(index.key for index in subset)
        if problem.space_limit is not None:
            if sum(index.size for index in subset) > problem.space_limit:
                return None
        cost = 0.0
        query_plans = {}
        for query, plans in query_requirements.items():
            usable = [plan for plan, required in plans
                      if required <= keys]
            if not usable:
                return None
            chosen = min(usable, key=lambda plan: plan.cost)
            query_plans[query] = chosen
            cost += problem.weight(query) * chosen.cost
        update_plans = {}
        for update, plans in problem.update_plans.items():
            kept = []
            for update_plan in plans:
                if update_plan.index.key not in keys:
                    continue
                weight = problem.weight(update)
                cost += weight * update_plan.update_cost
                chosen_support = []
                for _support, support_plans in \
                        update_plan.support_plans_by_query.items():
                    usable = [plan for plan in support_plans
                              if frozenset(i.key for i in plan.indexes)
                              <= keys]
                    if not usable:
                        return None
                    chosen = min(usable, key=lambda plan: plan.cost)
                    chosen_support.append(chosen)
                    cost += weight * chosen.cost
                kept.append(UpdatePlan(update, update_plan.index,
                                       chosen_support, update_plan.steps))
            if kept:
                update_plans[update] = kept
        return cost, query_plans, update_plans
