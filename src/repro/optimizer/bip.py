"""Binary integer program for schema selection (paper §V, Fig 7 & Fig 10).

The paper formulates schema choice with one variable per (query, column
family) use plus per-column-family selection variables, tied together by
per-query path constraints.  We solve the equivalent per-plan
formulation: one binary variable per enumerated plan, exactly one plan
per query, and plan variables dominated by the selection variables of
every column family they touch.  Updates contribute the ``C'_mn`` terms
of Fig 10 directly on the selection variables, and support queries are
planned iff their column family is selected (an equality constraint on
the plan variables).  After minimising cost, a second solve finds the
smallest schema achieving that optimum, as §V describes.

Solved with scipy's HiGHS MILP backend (substituting for Gurobi, which
is unavailable offline); the formulation is identical.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro import telemetry
from repro.exceptions import OptimizationError
from repro.explain import solver_ledger
from repro.optimizer.results import SchemaRecommendation
from repro.planner.plans import UpdatePlan


def _same_plan_structure(previous, problem):
    """True when two problems carry identical per-statement plan lists.

    Identity (``is``) per plan object: the constraint structure built
    from them is then guaranteed equal, which is what program adoption
    relies on.  Statement labels must match too — the cost vector is
    rebuilt through label-keyed weight lookups.
    """

    def matches(left, right):
        if len(left) != len(right):
            return False
        for (stmt_a, plans_a), (stmt_b, plans_b) in zip(left.items(),
                                                        right.items()):
            if stmt_a.label != stmt_b.label \
                    or len(plans_a) != len(plans_b):
                return False
            if any(a is not b for a, b in zip(plans_a, plans_b)):
                return False
        return True

    return (matches(previous.query_plans, problem.query_plans)
            and matches(previous.update_plans, problem.update_plans))


class _Program:
    """A fully materialized BIP instance, ready to optimize.

    The constraint structure depends only on the plan spaces, never on
    the statement weights — weights enter through the cost vector alone.
    :meth:`reweight` therefore re-costs a built program in place, and
    the constraint matrix, integrality vector and variable bounds are
    each materialized once and reused across solves.
    """

    def __init__(self, problem, previous=None):
        self.problem = problem
        self.indexes = problem.indexes
        self.index_column = {index.key: column
                             for column, index in enumerate(self.indexes)}
        self.columns = len(self.indexes)
        self.costs = [0.0] * self.columns
        #: (query, plan, column) for workload query plans
        self.plan_columns = []
        #: (update_plan, support query, plan, column)
        self.support_columns = []
        self._entries = []  # (row, column, value)
        self._lower = []
        self._upper = []
        #: rows/entries belonging to the weight- and space-independent
        #: constraint structure (everything but the space row); lets a
        #: later program over the same plan spaces adopt the structure
        self._structure_rows = 0
        self._structure_entries = 0
        #: lazily materialized solver inputs, reused across solves
        self._base_constraint = None
        self._entry_arrays = None
        self._integrality = None
        self._unit_bounds = None
        #: lazily built index arrays for vectorized reweighting
        self._reweight_arrays = None
        #: wall-clock seconds of the last optimize(), split so the
        #: advisor can attribute solving vs result extraction honestly
        self.solve_seconds = 0.0
        self.extract_seconds = 0.0
        adopted = previous is not None and self._adopt(previous)
        if not adopted:
            self._build()
        active = telemetry.current()
        if active.enabled:
            active.gauge("bip.columns", self.columns)
            active.gauge("bip.binary_columns", len(self.indexes))
            active.gauge("bip.rows", len(self._lower))
            active.gauge("bip.nonzeros", len(self._entries))
            if adopted:
                active.count("bip.programs_adopted")

    # -- construction -----------------------------------------------------

    def _new_row(self, lower, upper):
        self._lower.append(lower)
        self._upper.append(upper)
        return len(self._lower) - 1

    def _new_column(self, cost):
        self.costs.append(cost)
        column = self.columns
        self.columns += 1
        return column

    def _adopt(self, previous):
        """Rebuild incrementally from a previous program.

        The constraint structure (choose-one rows, support gates, plan
        links) is a pure function of the plan spaces, so when the new
        problem carries the *same plan objects per statement* — e.g.
        the same prepared workload solved under a different space limit
        or with new weights — the previous program's rows and columns
        are adopted wholesale, only the space row and cost vector are
        rebuilt, and construction work is skipped.  Returns False (and
        leaves the program untouched) when the plan spaces differ, in
        which case the caller falls back to a full build.
        """
        if not _same_plan_structure(previous.problem, self.problem):
            return False
        self.indexes = previous.indexes
        self.index_column = previous.index_column
        self.columns = previous.columns
        self.plan_columns = list(previous.plan_columns)
        self.support_columns = list(previous.support_columns)
        self._entries = previous._entries[:previous._structure_entries]
        self._lower = previous._lower[:previous._structure_rows]
        self._upper = previous._upper[:previous._structure_rows]
        self._structure_rows = previous._structure_rows
        self._structure_entries = previous._structure_entries
        self._append_space_row()
        if self.problem.space_limit == previous.problem.space_limit:
            # identical matrices: the materialized solver inputs
            # (constraint matrix, entry arrays) carry over as well
            self._base_constraint = previous._base_constraint
            self._entry_arrays = previous._entry_arrays
        self._integrality = previous._integrality
        self._unit_bounds = previous._unit_bounds
        self.costs = [0.0] * self.columns
        self.reweight(self.problem.weights)
        return True

    def _append_space_row(self):
        problem = self.problem
        if problem.space_limit is None:
            return
        space = self._new_row(-np.inf, float(problem.space_limit))
        for index in self.indexes:
            self._entries.append(
                (space, self.index_column[index.key], index.size))

    def _build(self):
        problem = self.problem
        for query, plans in problem.query_plans.items():
            weight = problem.weight(query)
            choose_one = self._new_row(1.0, 1.0)
            links = {}
            for plan in plans:
                column = self._new_column(weight * plan.cost)
                self.plan_columns.append((query, plan, column))
                self._entries.append((choose_one, column, 1.0))
                self._link_plan(column, plan, links)
        for update, update_plans in problem.update_plans.items():
            weight = problem.weight(update)
            for update_plan in update_plans:
                index_column = self.index_column[update_plan.index.key]
                self.costs[index_column] += weight * update_plan.update_cost
                grouped = update_plan.support_plans_by_query
                for support, plans in grouped.items():
                    # one support plan iff the column family is selected
                    gate = self._new_row(0.0, 0.0)
                    self._entries.append((gate, index_column, -1.0))
                    links = {}
                    for plan in plans:
                        column = self._new_column(weight * plan.cost)
                        self.support_columns.append(
                            (update_plan, support, plan, column))
                        self._entries.append((gate, column, 1.0))
                        self._link_plan(column, plan, links)
        self._structure_rows = len(self._lower)
        self._structure_entries = len(self._entries)
        self._append_space_row()

    def _link_plan(self, column, plan, links):
        """Plan usable only when every column family it touches exists.

        Links are aggregated per (statement, column family): since each
        statement selects exactly one plan, ``sum of plans using j <= d_j``
        is valid and gives a tighter LP relaxation than per-plan rows.
        """
        for index in plan.indexes:
            row = links.get(index.key)
            if row is None:
                row = self._new_row(-np.inf, 0.0)
                links[index.key] = row
                self._entries.append(
                    (row, self.index_column[index.key], -1.0))
            self._entries.append((row, column, 1.0))

    # -- re-costing -----------------------------------------------------------

    def _reweight_cache(self):
        """Index arrays mapping statements to their cost-vector slots.

        Built once per program: a list of distinct statements, and for
        each cost contribution (query plan columns, support plan
        columns, per-column-family maintenance terms) an integer column
        array, a base-cost array and a statement-position array.  A
        weight change then reduces to gathers and one scatter-add over
        these arrays instead of a Python loop over every plan column.
        Plan base costs are stable for the program's lifetime — the
        advisor rebuilds programs whenever the cost model re-costs.
        """
        if self._reweight_arrays is None:
            statements = []
            positions = {}

            def position(statement):
                slot = positions.get(statement.label)
                if slot is None:
                    slot = positions[statement.label] = len(statements)
                    statements.append(statement)
                return slot

            plan_data = np.array(
                [(column, plan.cost, position(query))
                 for query, plan, column in self.plan_columns],
                dtype=float).reshape(-1, 3)
            support_data = np.array(
                [(column, plan.cost, position(update_plan.update))
                 for update_plan, _support, plan, column
                 in self.support_columns],
                dtype=float).reshape(-1, 3)
            maintenance_data = np.array(
                [(self.index_column[update_plan.index.key],
                  update_plan.update_cost, position(update))
                 for update, update_plans
                 in self.problem.update_plans.items()
                 for update_plan in update_plans],
                dtype=float).reshape(-1, 3)
            self._reweight_arrays = (statements, [
                (data[:, 0].astype(np.intp), data[:, 1],
                 data[:, 2].astype(np.intp), accumulate)
                for data, accumulate in ((plan_data, False),
                                         (support_data, False),
                                         (maintenance_data, True))])
        return self._reweight_arrays

    def reweight(self, weights):
        """Re-cost the program for new statement weights, in place.

        Choose-one rows, support gates, plan links and the space row are
        all weight-independent, so only the cost vector needs rebuilding
        — the expensive construction work survives a weight change; the
        rebuild itself is vectorized (see :meth:`_reweight_cache`).
        """
        problem = self.problem
        problem.set_weights(weights)
        statements, groups = self._reweight_cache()
        by_statement = np.array([problem.weight(statement)
                                 for statement in statements])
        costs = np.zeros(self.columns)
        for columns, base_costs, stmt_positions, accumulate in groups:
            if not len(columns):
                continue
            terms = by_statement[stmt_positions] * base_costs
            if accumulate:
                np.add.at(costs, columns, terms)
            else:
                costs[columns] = terms
        self.costs = costs.tolist()

    # -- solving --------------------------------------------------------------

    def _matrix(self, extra_entries=(), extra_bounds=()):
        if self._entry_arrays is None:
            self._entry_arrays = (
                np.asarray([e[0] for e in self._entries]),
                np.asarray([e[1] for e in self._entries]),
                np.asarray([e[2] for e in self._entries], dtype=float),
            )
        rows, columns, values = self._entry_arrays
        if not extra_entries and not extra_bounds:
            if self._base_constraint is None:
                matrix = csr_matrix(
                    (values, (rows, columns)),
                    shape=(len(self._lower), self.columns))
                self._base_constraint = LinearConstraint(
                    matrix, np.asarray(self._lower, dtype=float),
                    np.asarray(self._upper, dtype=float))
            return self._base_constraint
        rows = np.concatenate([rows, [e[0] for e in extra_entries]])
        columns = np.concatenate([columns,
                                  [e[1] for e in extra_entries]])
        values = np.concatenate([values, [e[2] for e in extra_entries]])
        lower = list(self._lower) + [b[0] for b in extra_bounds]
        upper = list(self._upper) + [b[1] for b in extra_bounds]
        matrix = csr_matrix((values, (rows, columns)),
                            shape=(len(lower), self.columns))
        return LinearConstraint(matrix, np.asarray(lower),
                                np.asarray(upper))

    def _solve(self, objective, constraints, options=None, bounds=None,
               integrality=None):
        # Only the column-family selection variables need integrality:
        # for any 0/1 selection, every plan whose column families are
        # all selected is feasible on its own (the aggregated links
        # allow x_p = 1), so a linear objective over the plan variables
        # attains its optimum at a pure plan — fractional plan mixes
        # can never beat the cheapest feasible plan.  Declaring the
        # plan variables continuous cuts the binaries from thousands to
        # the number of candidates.  ``integrality`` overrides (the LP
        # gate passes all-zeros for the relaxation).
        if integrality is None:
            if self._integrality is None:
                self._integrality = np.zeros(self.columns)
                self._integrality[:len(self.indexes)] = 1
            integrality = self._integrality
        if bounds is None:
            if self._unit_bounds is None:
                self._unit_bounds = Bounds(0, 1)
            bounds = self._unit_bounds
        result = milp(
            c=np.asarray(objective),
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options or {},
        )
        acceptable = result.success or (result.status == 1
                                        and result.x is not None)
        if not acceptable:
            raise OptimizationError(
                f"BIP solve failed: {result.message}")
        return result

    def _phase2_bounds(self, best_cost, tolerance):
        """Variable fixing for the schema-minimisation solve.

        Any solution within the phase-2 cost cap pays at least the
        cheapest plan of every query group (their sum ``lower_bound``),
        plus — for each active support gate and in full for a pure plan
        choice — the cost of whichever plan column carries weight.  A
        plan column whose cost exceeds its group minimum by more than
        ``best_cost + tolerance - lower_bound`` therefore appears in no
        pure solution under the cap, and since the best cost achievable
        for a fixed schema is always attained by pure plan choices,
        fixing such columns to zero preserves a phase-2 optimum.  This
        is a no-op when maintenance costs dominate the slack (e.g.
        update-heavy mixes) but prunes most plan columns on read-mostly
        workloads.  Returns ``None`` when nothing can be fixed.
        """
        costs = np.asarray(self.costs, dtype=float)
        if costs.size == 0 or costs.min() < 0.0:
            # negative costs void the lower-bound argument
            return None
        # index-selection columns must never be fixed: the group minima
        # below are computed ignoring which column families exist
        margins = np.full(self.columns, -np.inf)
        lower_bound = 0.0
        by_query = {}
        for query, _plan, column in self.plan_columns:
            by_query.setdefault(id(query), []).append(column)
        for group in by_query.values():
            group_costs = costs[group]
            group_min = float(group_costs.min())
            lower_bound += group_min
            margins[group] = group_costs - group_min
        for _update_plan, _support, _plan, column in self.support_columns:
            # support plans cost nothing when their gate is closed, so
            # their margin is the full column cost
            margins[column] = costs[column]
        slack = best_cost + tolerance - lower_bound
        fixed = margins > slack
        active = telemetry.current()
        if active.enabled:
            active.gauge("bip.phase2_fixed_columns",
                         int(fixed.sum()))
            active.gauge("bip.phase2_free_columns",
                         int(self.columns - fixed.sum()))
        if not fixed.any():
            return None
        upper = np.ones(self.columns)
        upper[fixed] = 0.0
        return Bounds(0, upper)

    def _warm_bound(self, keys):
        """Incumbent cost bound from a previous schema's keys, or None.

        Evaluating the schema as a full solution of *this* program
        yields a feasible objective value; solutions costing more can
        be cut off without losing any optimum.  scipy's ``milp`` has no
        MIP-start API, so this incumbent-bound cut is how a previous
        solution warm-starts the solve.  None (no cut) when the warm
        schema is infeasible for the current problem.
        """
        incumbent = self.problem.evaluate_schema(keys)
        active = telemetry.current()
        if incumbent is None:
            if active.enabled:
                active.count("bip.warm_start_infeasible")
            return None
        if active.enabled:
            active.count("bip.warm_starts_applied")
            active.gauge("bip.warm_start_bound", incumbent)
        # slack absorbs float noise only: any true optimum still
        # satisfies cost <= incumbent < incumbent + slack
        return incumbent + 1e-7 * (1.0 + abs(incumbent))

    def _cost_cut(self, bound):
        """The base constraints plus ``cost @ x <= bound`` as one row."""
        row = len(self._lower)
        cut = [(row, column, value)
               for column, value in enumerate(self.costs)
               if value != 0.0]
        return self._matrix(extra_entries=cut,
                            extra_bounds=[(-np.inf, bound)])

    def _solve_gated(self, constraint, options, cost_vector, gate_gap,
                     warm_keys):
        """LP-relaxation gate for large programs (lazy activation).

        Solves the LP relaxation first, then a restricted MILP with
        every column family the relaxation left at zero fixed out
        (plus the warm-start incumbent's, so its bound stays
        attainable).  Feasibility is preserved by construction: the
        aggregated link rows force every LP-supported plan's column
        families fractionally open, so all plans carrying LP weight
        survive the restriction and every choose-one row keeps a
        candidate.  The restricted optimum is accepted when it is
        within ``gate_gap`` of the LP lower bound — a certificate that
        no excluded column family can improve the solution by more
        than the gap — and otherwise the full MILP runs with the
        restricted solution as an incumbent cost cut.
        """
        active = telemetry.current()
        if active.enabled:
            active.count("bip.lp_gate_used")
        binaries = len(self.indexes)
        relaxed = self._solve(self.costs, [constraint], options,
                              integrality=np.zeros(self.columns))
        lp_bound = float(cost_vector @ relaxed.x)
        support = relaxed.x[:binaries] > 1e-9
        for key in warm_keys:
            column = self.index_column.get(key)
            if column is not None:
                support[column] = True
        upper = np.ones(self.columns)
        upper[:binaries][~support] = 0.0
        restricted = self._solve(self.costs, [constraint], options,
                                 bounds=Bounds(0, upper))
        best_cost = float(cost_vector @ restricted.x)
        gap = (best_cost - lp_bound) / max(1.0, abs(best_cost))
        if active.enabled:
            active.gauge("bip.lp_gate_active_columns",
                         int(support.sum()))
            active.gauge("bip.lp_gate_inactive_columns",
                         int(binaries - support.sum()))
            active.gauge("bip.lp_bound", lp_bound)
            active.gauge("bip.lp_gate_gap", gap)
        if gap <= gate_gap:
            if active.enabled:
                active.count("bip.lp_gate_accepted")
            return restricted, best_cost
        # the restriction lost too much: full MILP, with the restricted
        # optimum as an incumbent cost cut (it is a feasible solution
        # of the full program, so no optimum is cut off)
        if active.enabled:
            active.count("bip.lp_gate_fallbacks")
        slack = 1e-7 * (1.0 + abs(best_cost))
        result = self._solve(self.costs,
                             [self._cost_cut(best_cost + slack)],
                             options)
        return result, float(cost_vector @ result.x)

    def optimize(self, minimize_schema_size=True, mip_rel_gap=1e-4,
                 time_limit=120.0, warm_start=None,
                 lp_gate_columns=None, lp_gate_gap=0.01):
        """Two-phase solve: min cost, then min #column families.

        ``mip_rel_gap`` and ``time_limit`` bound the branch-and-bound
        effort; with a time limit the incumbent solution is returned
        (still feasible, within the reported gap of optimal).
        ``warm_start`` optionally supplies a previous solution whose
        cost bounds the first solve from above (see :meth:`_warm_bound`
        for the exact semantics — the optimum is never changed, though
        equal-cost ties may resolve differently than an unassisted
        solve).

        ``lp_gate_columns`` arms the LP-relaxation gate: when the
        program has at least that many binary columns, the first solve
        runs as LP relaxation + restricted MILP with a gap certificate
        (see :meth:`_solve_gated`), falling back to the full MILP when
        the certificate fails.  The result is then optimal within
        ``lp_gate_gap`` rather than ``mip_rel_gap``.
        """
        active = telemetry.current()
        solve_started = time.perf_counter()
        with active.span("bip_solving"):
            options = {"mip_rel_gap": mip_rel_gap,
                       "time_limit": time_limit}
            cost_vector = np.asarray(self.costs)
            warm_keys = ()
            bound = None
            if warm_start is not None:
                if hasattr(warm_start, "indexes"):
                    warm_start = warm_start.indexes
                warm_keys = {getattr(index, "key", index)
                             for index in warm_start}
                bound = self._warm_bound(warm_keys)
            if bound is None:
                constraint = self._matrix()
            else:
                constraint = self._cost_cut(bound)
            gated = (lp_gate_columns is not None
                     and len(self.indexes) >= lp_gate_columns)
            if gated:
                result, best_cost = self._solve_gated(
                    constraint, options, cost_vector, lp_gate_gap,
                    warm_keys)
            else:
                result = self._solve(self.costs, [constraint], options)
                best_cost = float(cost_vector @ result.x)
            if minimize_schema_size:
                phase1_seconds = time.perf_counter() - solve_started
                # pin the cost at the incumbent — slack proportional to
                # the MIP gap, so the second solve is never knife-edge —
                # and minimise the number of selected column families
                tolerance = (mip_rel_gap * abs(best_cost)
                             + 1e-7 * (1.0 + abs(best_cost)))
                binaries = len(self.indexes)
                # the phase-1 selection is feasible for phase 2 at its
                # own cardinality, so a sum(d) <= |phase-1 schema| cut
                # is sound and substantially narrows the search
                cardinality = float(
                    (result.x[:binaries] > 0.5).sum())
                row = len(self._lower)
                entries = [(row, column, value)
                           for column, value in enumerate(self.costs)
                           if value != 0.0]
                entries.extend((row + 1, column, 1.0)
                               for column in range(binaries))
                constraint = self._matrix(
                    extra_entries=entries,
                    extra_bounds=[(-np.inf, best_cost + tolerance),
                                  (-np.inf, cardinality)])
                objective = [0.0] * self.columns
                for column in range(binaries):
                    objective[column] = 1.0
                # the second solve only shrinks the schema at equal
                # cost — it must never dominate the runtime, so its
                # budget matches the phase-1 solve (floor 1s, cap 30s;
                # the old fixed 30s wall routinely timed out having
                # improved nothing) and its gap is loose (the objective
                # is a small integer count); on failure or timeout the
                # phase-1 solution is kept and _extract prunes unused
                # column families
                phase2_options = {
                    "mip_rel_gap": max(mip_rel_gap, 0.02),
                    "time_limit": min(
                        time_limit, 30.0,
                        max(1.0, phase1_seconds)),
                }
                bounds = self._phase2_bounds(best_cost, tolerance)
                phase2_started = time.perf_counter()
                try:
                    result = self._solve(objective, [constraint],
                                         phase2_options, bounds=bounds)
                except OptimizationError:
                    pass
                if active.enabled:
                    active.gauge("bip.phase2_time_limit",
                                 phase2_options["time_limit"])
                    active.gauge("bip.phase2_seconds",
                                 time.perf_counter() - phase2_started)
            extract_started = time.perf_counter()
            self.solve_seconds = extract_started - solve_started
        with active.span("recommendation"):
            recommendation = self._extract(result, best_cost)
        self.extract_seconds = time.perf_counter() - extract_started
        if active.enabled:
            active.observe("bip.solve_seconds", self.solve_seconds,
                           buckets=telemetry.TIME_BUCKETS)
            active.observe("bip.extract_seconds", self.extract_seconds,
                           buckets=telemetry.TIME_BUCKETS)
        return recommendation

    @staticmethod
    def _beats(weight, plan, best):
        """Plan ranking for extraction: highest solver weight wins, then
        cheaper cost, then the lexicographically smallest signature — so
        equal-cost recommendations are byte-for-byte reproducible across
        runs and hash seeds instead of following iteration order."""
        if best is None:
            return True
        best_weight, best_cost, best_plan = best
        rank = (weight, -plan.cost)
        if rank != (best_weight, -best_cost):
            return rank > (best_weight, -best_cost)
        return plan.signature < best_plan.signature

    def _extract(self, result, total_cost):
        selected = result.x > 0.5
        # plan variables are continuous and may split across
        # equal-cost alternatives; pick the highest-weight plan per
        # statement (ties broken toward cheaper plans, then by plan
        # signature for determinism)
        query_plans = {}
        query_best = {}
        for query, plan, column in self.plan_columns:
            weight = result.x[column]
            if weight < 1e-6:
                continue
            if self._beats(weight, plan, query_best.get(query)):
                query_best[query] = (weight, plan.cost, plan)
                query_plans[query] = plan
        chosen_support = {}
        support_best = {}
        for update_plan, support, plan, column in self.support_columns:
            weight = result.x[column]
            if weight < 1e-6:
                continue
            key = (id(update_plan), id(support))
            if self._beats(weight, plan, support_best.get(key)):
                support_best[key] = (weight, plan.cost, plan)
        for (plan_id, _support_id), (_w, _c, plan) in support_best.items():
            chosen_support.setdefault(plan_id, []).append(plan)
        chosen_keys = self._used_keys(selected, query_plans,
                                      chosen_support)
        indexes = [index for index in self.indexes
                   if index.key in chosen_keys]
        update_plans = {}
        for update, plans in self.problem.update_plans.items():
            kept = []
            for update_plan in plans:
                if update_plan.index.key not in chosen_keys:
                    continue
                support = chosen_support.get(id(update_plan), [])
                kept.append(UpdatePlan(update, update_plan.index, support,
                                       update_plan.steps))
            if kept:
                update_plans[update] = kept
        weights = {label: weight
                   for label, weight in self.problem.weights.items()}
        recommendation = SchemaRecommendation(indexes, query_plans,
                                              update_plans, weights,
                                              total_cost)
        # the decision ledger: per-candidate selection status and, per
        # statement, the chosen plan next to the best rejected one
        selected_keys = {self.indexes[column].key
                         for column in range(len(self.indexes))
                         if selected[column]}
        recommendation.ledger = solver_ledger(
            self.problem, chosen_keys, selected_keys, query_plans,
            self.plan_columns)
        return recommendation

    def _used_keys(self, selected, query_plans, chosen_support):
        """Selected column families actually needed by some chosen plan.

        When the two-phase solve runs this matches the solver's minimal
        selection; when it is skipped, cost-free selected-but-unused
        column families are pruned here (dropping one never violates a
        constraint: no chosen plan references it, and its maintenance
        gates only bind when it is kept).
        """
        selected_keys = {self.indexes[column].key
                         for column in range(len(self.indexes))
                         if selected[column]}
        used = set()
        for plan in query_plans.values():
            used.update(index.key for index in plan.indexes)
        # fixpoint: keeping a column family keeps its support plans,
        # whose lookups may require further column families
        plans_by_target = {}
        for update_plan, _support, _plan, _column in self.support_columns:
            plans_by_target.setdefault(update_plan.index.key,
                                       set()).add(id(update_plan))
        frontier = set(used)
        while frontier:
            next_frontier = set()
            for key in frontier:
                for plan_id in plans_by_target.get(key, ()):
                    for chosen in chosen_support.get(plan_id, []):
                        for index in chosen.indexes:
                            if index.key not in used:
                                next_frontier.add(index.key)
            used |= next_frontier
            frontier = next_frontier
        return used & selected_keys


class BIPOptimizer:
    """Facade exposing BIP construction and solving as separate stages,
    so the advisor can report the paper's Fig 13 runtime breakdown."""

    #: a previous solution can seed the solve (incumbent-bound cut)
    supports_warm_start = True
    #: prepare() accepts a previous program for incremental rebuild
    supports_incremental_prepare = True

    def __init__(self, minimize_schema_size=True, mip_rel_gap=1e-4,
                 time_limit=120.0, lp_gate_columns=2048,
                 lp_gate_gap=0.01):
        self.minimize_schema_size = minimize_schema_size
        self.mip_rel_gap = mip_rel_gap
        self.time_limit = time_limit
        #: binary-column count from which the first solve runs as an
        #: LP relaxation + restricted MILP with a gap certificate
        #: (None disables the gate); the default is far above every
        #: demo workload, so small programs keep the exact path
        self.lp_gate_columns = lp_gate_columns
        #: accepted optimality gap versus the LP lower bound
        self.lp_gate_gap = lp_gate_gap

    def prepare(self, problem, previous=None):
        """Construct the program (the 'BIP construction' stage).

        ``previous`` optionally passes an earlier program; when the new
        problem spans the same plan spaces (e.g. the same prepared
        workload under a different space limit), its constraint
        structure is adopted instead of rebuilt.
        """
        return _Program(problem, previous=previous)

    def reweight(self, program, weights):
        """Re-cost a prepared program for new statement weights.

        The constraint structure is weight-independent, so this replaces
        only the cost vector — re-solving after a weight change skips
        construction entirely.
        """
        program.reweight(weights)
        return program

    def optimize(self, program, warm_start=None):
        """Solve a prepared program (the 'BIP solving' stage).

        ``warm_start`` may be a previous
        :class:`~repro.optimizer.results.SchemaRecommendation` (or any
        iterable of indexes / index keys); its cost becomes an
        incumbent upper bound on the first solve.
        """
        return program.optimize(self.minimize_schema_size,
                                mip_rel_gap=self.mip_rel_gap,
                                time_limit=self.time_limit,
                                warm_start=warm_start,
                                lp_gate_columns=self.lp_gate_columns,
                                lp_gate_gap=self.lp_gate_gap)

    def solve(self, problem, warm_start=None):
        """Construct and solve in one call."""
        return self.optimize(self.prepare(problem),
                             warm_start=warm_start)
