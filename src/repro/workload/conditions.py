"""Predicates appearing in WHERE clauses.

NoSE statements support equality, inequality, single-sided range, and
``IN``-list predicates over attributes of entities along the statement's
path.  Values are left as named parameters (``?city``) at design time
and bound at execution time; an ``IN`` predicate carries one parameter
name per list member.
"""

from __future__ import annotations

from repro.workload import semantics

#: supported comparison operators, in the paper's query language plus
#: the inequality and membership extensions (``<>`` is normalized to
#: ``!=`` by the parser)
OPERATORS = ("=", "!=", ">", ">=", "<", "<=", "IN")

#: operators that can bind a column-family hash or clustering column via
#: (multi-)get requests — equality, and IN as a k-way equality
BINDABLE_OPERATORS = ("=", "IN")

#: default selectivity assumed for a range predicate when no histogram
#: information is available (the tech-report cost model does the same)
RANGE_SELECTIVITY = 0.1


class Condition:
    """A single predicate ``field op ?parameter``.

    ``field`` is a :class:`~repro.model.fields.Field` on an entity along
    the statement's path.  Conditions are immutable value objects.  For
    ``IN`` predicates ``parameter`` is a tuple of parameter names, one
    per list member; for every other operator it is a single name.
    """

    __slots__ = ("field", "operator", "parameter", "_selectivity")

    def __init__(self, field, operator, parameter=None):
        if operator not in OPERATORS:
            raise ValueError(f"unsupported operator {operator!r}")
        self.field = field
        self.operator = operator
        #: name(s) of the placeholder(s) supplying the comparison value
        if operator == "IN":
            if not parameter:
                raise ValueError("IN condition requires parameter names")
            self.parameter = tuple(parameter)
        else:
            self.parameter = parameter if parameter else field.name
        self._selectivity = None

    @property
    def is_equality(self):
        return self.operator == "="

    @property
    def is_membership(self):
        """True for ``IN``-list predicates."""
        return self.operator == "IN"

    @property
    def is_inequality(self):
        """True for ``!=`` predicates."""
        return self.operator == "!="

    @property
    def is_bindable(self):
        """True when the predicate can bind a hash/clustering column.

        Equality binds a column to one value; membership binds it to a
        k-way multi-get.  Inequality and ranges cannot seed a get.
        """
        return self.operator in BINDABLE_OPERATORS

    @property
    def is_range(self):
        """True for single-sided range predicates (``> >= < <=``)."""
        return self.operator in (">", ">=", "<", "<=")

    @property
    def cardinality(self):
        """Number of distinct values the predicate binds (1, or k for IN)."""
        if self.is_membership:
            return len(self.parameter)
        return 1

    @property
    def selectivity(self):
        """Fraction of rows expected to satisfy this predicate.

        Cached on first access — the planner consults it once per
        (candidate, predicate) binding attempt, millions of times on
        large pools, and field cardinalities are fixed while a
        statement is being planned.
        """
        if self._selectivity is None:
            distinct = max(self.field.cardinality, 1)
            if self.is_equality:
                self._selectivity = 1.0 / distinct
            elif self.is_membership:
                self._selectivity = min(1.0, len(self.parameter) / distinct)
            elif self.is_inequality:
                self._selectivity = 1.0 - 1.0 / distinct
            else:
                self._selectivity = RANGE_SELECTIVITY
        return self._selectivity

    def bind(self, params):
        """Resolve this predicate's bound value(s) from a parameter map.

        Returns a single value for scalar operators and a tuple of
        values (one per list member) for ``IN``.
        """
        if self.is_membership:
            return tuple(params[name] for name in self.parameter)
        return params[self.parameter]

    def matches(self, value, bound):
        """Evaluate the predicate for a concrete row/parameter value.

        Follows the canonical NULL rule of :mod:`repro.workload.semantics`:
        ``None`` equals only ``None`` and never satisfies a range.
        """
        return semantics.matches(self.operator, value, bound)

    def __eq__(self, other):
        if not isinstance(other, Condition):
            return NotImplemented
        return (self.field is other.field
                and self.operator == other.operator
                and self.parameter == other.parameter)

    def __hash__(self):
        return hash((id(self.field), self.operator, self.parameter))

    def __repr__(self):
        return f"Condition({self})"

    def __str__(self):
        if self.is_membership:
            members = ", ".join(f"?{name}" for name in self.parameter)
            return f"{self.field.id} IN ({members})"
        return f"{self.field.id} {self.operator} ?{self.parameter}"
