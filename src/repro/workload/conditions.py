"""Predicates appearing in WHERE clauses.

NoSE statements support equality and single-sided range predicates over
attributes of entities along the statement's path.  Values are left as
named parameters (``?city``) at design time and bound at execution time.
"""

from __future__ import annotations

from repro.workload import semantics

#: supported comparison operators, in the paper's query language
OPERATORS = ("=", ">", ">=", "<", "<=")

#: default selectivity assumed for a range predicate when no histogram
#: information is available (the tech-report cost model does the same)
RANGE_SELECTIVITY = 0.1


class Condition:
    """A single predicate ``field op ?parameter``.

    ``field`` is a :class:`~repro.model.fields.Field` on an entity along
    the statement's path.  Conditions are immutable value objects.
    """

    __slots__ = ("field", "operator", "parameter", "_selectivity")

    def __init__(self, field, operator, parameter=None):
        if operator not in OPERATORS:
            raise ValueError(f"unsupported operator {operator!r}")
        self.field = field
        self.operator = operator
        #: name of the placeholder supplying the comparison value
        self.parameter = parameter if parameter else field.name
        self._selectivity = None

    @property
    def is_equality(self):
        return self.operator == "="

    @property
    def is_range(self):
        return self.operator != "="

    @property
    def selectivity(self):
        """Fraction of rows expected to satisfy this predicate.

        Cached on first access — the planner consults it once per
        (candidate, predicate) binding attempt, millions of times on
        large pools, and field cardinalities are fixed while a
        statement is being planned.
        """
        if self._selectivity is None:
            if self.is_equality:
                self._selectivity = 1.0 / max(self.field.cardinality, 1)
            else:
                self._selectivity = RANGE_SELECTIVITY
        return self._selectivity

    def matches(self, value, bound):
        """Evaluate the predicate for a concrete row/parameter value.

        Follows the canonical NULL rule of :mod:`repro.workload.semantics`:
        ``None`` equals only ``None`` and never satisfies a range.
        """
        return semantics.matches(self.operator, value, bound)

    def __eq__(self, other):
        if not isinstance(other, Condition):
            return NotImplemented
        return (self.field is other.field
                and self.operator == other.operator
                and self.parameter == other.parameter)

    def __hash__(self):
        return hash((id(self.field), self.operator, self.parameter))

    def __repr__(self):
        return f"Condition({self.field.id} {self.operator} ?{self.parameter})"

    def __str__(self):
        return f"{self.field.id} {self.operator} ?{self.parameter}"
