"""Parser for the paper's SQL-like statement language.

The parser is layered the way a conventional compiler front end is:

1. a tokenizer producing a stream of :class:`_Token` objects that carry
   their source offset, so every later error can point at a line and
   column with a caret-annotated snippet;
2. an expression grammar with precedence for WHERE clauses
   (``OR`` < ``AND`` < parenthesized groups < predicates), normalized
   to disjunctive normal form;
3. per-statement productions for the six statement types.

Supported statement forms (Fig 3 and Fig 8 of the paper, plus the
aggregation / IN-list / disjunction extensions)::

    SELECT Guest.GuestName, Guest.GuestEmail FROM Guest
        WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city
          AND Guest.Reservations.Room.RoomRate > ?rate
        ORDER BY Guest.GuestName LIMIT 10

    SELECT Hotel.HotelCity, COUNT(*), AVG(Room.RoomRate) FROM Room.Hotel
        WHERE Room.RoomFloor IN (?low, ?high)
           OR (Room.RoomRate >= ?rate AND Room.RoomNumber = ?n)
        GROUP BY Hotel.HotelCity

    INSERT INTO Reservation SET ResID = ?, ResEndDate = ?date
        AND CONNECT TO Guest(?guest), Room(?room)

    UPDATE Room FROM Room.Hotel SET RoomRate = ?rate
        WHERE Hotel.HotelID = ?hotel

    DELETE FROM Guest WHERE Guest.GuestID = ?guest

    CONNECT Guest(?guest) TO Reservations(?res)
    DISCONNECT Guest(?guest) FROM Reservations(?res)

Paths may be written in the FROM clause (``FROM Room.Hotel.PointsOfInterest``,
Fig 9 style) or implied by dotted references in the WHERE clause rooted at
the target entity (``Guest.Reservations.Room.Hotel.HotelCity``, Fig 3
style); both extend the statement's key path.  Path components may name
either the relationship (the foreign key) or the entity it reaches,
whenever that is unambiguous.

``OR`` is supported in query WHERE clauses only (updates modify rows
through single-branch predicates); ``IN`` and ``!=``/``<>`` work in
every WHERE clause.  Aggregate select items (``COUNT/SUM/AVG/MIN/MAX``)
take a dotted reference or ``*`` (COUNT only) and may be grouped with
``GROUP BY``.
"""

from __future__ import annotations

import re
from typing import NamedTuple

from repro.exceptions import ModelError, ParseError
from repro.model.fields import ForeignKeyField
from repro.model.paths import KeyPath
from repro.workload.conditions import Condition
from repro.workload.semantics import AGGREGATE_FUNCTIONS
from repro.workload.statements import (
    Aggregate,
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Update,
)

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<param>\?[A-Za-z_][A-Za-z0-9_]*|\?)
      | (?P<number>\d+)
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op>>=|<=|!=|<>|=|>|<)
      | (?P<punct>[.,()*])
    )""", re.VERBOSE)

_KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "OR", "IN", "GROUP", "ORDER", "BY",
    "LIMIT", "INSERT", "INTO", "SET", "CONNECT", "TO", "UPDATE", "DELETE",
    "DISCONNECT",
})


class _Token(NamedTuple):
    """One lexeme with its position in the source text."""

    kind: str
    value: str
    offset: int


#: sentinel kind for the end of the statement
_EOF = "eof"


def _tokenize(text):
    """Split statement text into position-carrying tokens."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:]
            stripped = remainder.lstrip()
            if stripped:
                offset = position + (len(remainder) - len(stripped))
                raise ParseError(
                    f"unexpected character {stripped[0]!r}", text, offset)
            break
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        offset = match.start(kind)
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper(), offset))
        else:
            tokens.append(_Token(kind, value, offset))
    return tokens


class _TokenStream:
    """Cursor over the token list with positioned expectations."""

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.position = 0
        #: offset of the first OR keyword consumed, for statement types
        #: that reject disjunction
        self.or_offset = None

    def peek(self, ahead=0):
        index = self.position + ahead
        if index < len(self.tokens):
            return self.tokens[index]
        return _Token(_EOF, None, len(self.text))

    def next(self):
        token = self.peek()
        self.position += 1
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            self.position += 1
            return token.value
        return None

    def error(self, message, token=None):
        """Raise a :class:`ParseError` pointing at ``token`` (or here)."""
        if token is None:
            token = self.peek()
        raise ParseError(message, self.text, token.offset)

    def expect(self, kind, value=None, describe=None):
        result = self.accept(kind, value)
        if result is None:
            token = self.peek()
            wanted = describe or repr(value if value is not None else kind)
            found = ("end of statement" if token.kind == _EOF
                     else repr(token.value))
            self.error(f"expected {wanted}, found {found}", token)
        return result

    def expect_keyword(self, *words):
        for word in words:
            self.expect("keyword", word)

    @property
    def exhausted(self):
        return self.position >= len(self.tokens)


class _PathBuilder:
    """Incrementally grows a statement's key path while resolving refs.

    Holds the path as an entity/key list; dotted references either follow
    the existing path or extend it linearly at the tail, which implements
    the paper's implicit-path queries (Fig 3).
    """

    def __init__(self, model, root_entity, text):
        self.model = model
        self.text = text
        self.entities = [root_entity]
        self.keys = []

    @property
    def path(self):
        return KeyPath(self.entities[0], self.keys)

    def _positions_of(self, name):
        """Path positions a name may refer to (entity or arrival alias)."""
        positions = []
        for index, entity in enumerate(self.entities):
            if entity.name == name:
                positions.append(index)
        for index, key in enumerate(self.keys):
            if key.name == name and (index + 1) not in positions:
                positions.append(index + 1)
        return positions

    def _step(self, position, name, offset=None):
        """Advance one path component from ``position``; extends the tail.

        ``name`` may match the outgoing relationship, the next entity's
        name, or — when at the tail — a foreign key on the tail entity
        (by relationship name, or by target entity name if unique).
        """
        at_tail = position == len(self.entities) - 1
        if not at_tail:
            next_key = self.keys[position]
            if name in (next_key.name, next_key.entity.name):
                return position + 1
            raise ParseError(
                f"path component {name!r} diverges from the statement path "
                f"after {self.entities[position].name}", self.text, offset)
        entity = self.entities[position]
        key = entity.fields.get(name)
        if not isinstance(key, ForeignKeyField):
            key = None
            candidates = [fk for fk in entity.foreign_keys
                          if fk.entity.name == name]
            if len(candidates) == 1:
                key = candidates[0]
            elif len(candidates) > 1:
                raise ParseError(
                    f"ambiguous path component {name!r} from "
                    f"{entity.name}: name the relationship explicitly",
                    self.text, offset)
        if key is None:
            raise ParseError(
                f"no relationship {name!r} from entity {entity.name}",
                self.text, offset)
        self.keys.append(key)
        self.entities.append(key.entity)
        return position + 1

    def extend(self, names, offset=None):
        """Walk relationship names from the root, extending the tail."""
        position = 0
        for name in names:
            position = self._step(position, name, offset)
        return position

    def resolve(self, components, offset=None):
        """Resolve a dotted reference to (entity, field).

        The last component is the field name; the preceding components
        locate an entity, starting from any alias on the path (entity or
        relationship name) and possibly extending the path at its tail.
        """
        if len(components) < 2:
            raise ParseError(
                f"reference {'.'.join(components)!r} must be qualified as "
                "Entity.Field", self.text, offset)
        *path_parts, field_name = components
        positions = self._positions_of(path_parts[0])
        if not positions:
            raise ParseError(
                f"{path_parts[0]!r} is not an entity or relationship on "
                f"the statement path", self.text, offset)
        position = positions[0]
        for name in path_parts[1:]:
            position = self._step(position, name, offset)
        entity = self.entities[position]
        field = entity.fields.get(field_name)
        if field is None:
            raise ParseError(
                f"entity {entity.name!r} has no field {field_name!r}",
                self.text, offset)
        if isinstance(field, ForeignKeyField):
            raise ParseError(
                f"{field.id} is a relationship, not an attribute",
                self.text, offset)
        return entity, field


def _parse_dotted_names(stream):
    """Read ``Name(.Name)*``; returns the components and their offset."""
    first = stream.peek()
    names = [stream.expect("name", describe="a name")]
    while stream.accept("punct", "."):
        if stream.accept("punct", "*"):
            names.append("*")
            break
        names.append(stream.expect("name", describe="a name"))
    return names, first.offset


def _parse_parameter(stream, default):
    token = stream.expect("param", describe="a ?parameter")
    return token[1:] if len(token) > 1 else default


# -- WHERE expression grammar (precedence: OR < AND < ( ) < predicate) ---


def _parse_predicate(stream, builder):
    """``ref op ?param`` or ``ref IN (?param, ...)``."""
    components, offset = _parse_dotted_names(stream)
    _entity, field = builder.resolve(components, offset)
    if stream.accept("keyword", "IN"):
        stream.expect("punct", "(")
        parameters = []
        while True:
            default = f"{field.name}{len(parameters) + 1}"
            parameters.append(_parse_parameter(stream, default))
            if stream.accept("punct", ",") is None:
                break
        stream.expect("punct", ")")
        return Condition(field, "IN", parameters)
    operator = stream.expect("op", describe="a comparison operator")
    if operator == "<>":
        operator = "!="
    parameter = _parse_parameter(stream, field.name)
    return Condition(field, operator, parameter)


def _parse_factor(stream, builder):
    if stream.accept("punct", "("):
        branches = _parse_or_expr(stream, builder)
        stream.expect("punct", ")")
        return branches
    return [[_parse_predicate(stream, builder)]]


def _parse_and_expr(stream, builder):
    branches = _parse_factor(stream, builder)
    while stream.accept("keyword", "AND"):
        right = _parse_factor(stream, builder)
        # distribute the conjunction over both sides' branches (DNF)
        branches = [left + factor for left in branches for factor in right]
    return branches


def _parse_or_expr(stream, builder):
    branches = _parse_and_expr(stream, builder)
    while True:
        token = stream.peek()
        if stream.accept("keyword", "OR") is None:
            return branches
        if stream.or_offset is None:
            stream.or_offset = token.offset
        branches = branches + _parse_and_expr(stream, builder)


def _parse_where(stream, builder):
    """Parse an optional WHERE clause into DNF predicate branches.

    Returns a list of branches (each a list of conditions); a missing
    clause yields the single empty branch.
    """
    if stream.accept("keyword", "WHERE") is None:
        return [[]]
    return _parse_or_expr(stream, builder)


def _require_conjunctive(stream, branches, what):
    if len(branches) > 1:
        token = _Token("keyword", "OR",
                       stream.or_offset if stream.or_offset is not None
                       else stream.peek().offset)
        stream.error(f"OR predicates are not supported in {what}", token)
    return branches[0]


# -- SELECT ---------------------------------------------------------------


def _parse_select_items(stream):
    """Parse the SELECT list: dotted refs and aggregate items.

    References are resolved only after the FROM clause (and the WHERE
    clause, which may extend the path) has been read, so items are
    returned unresolved.
    """
    items = []
    while True:
        token = stream.peek()
        is_aggregate = (token.kind == "name"
                        and token.value.upper() in AGGREGATE_FUNCTIONS
                        and stream.peek(1).kind == "punct"
                        and stream.peek(1).value == "(")
        if is_aggregate:
            func = stream.next().value.upper()
            stream.expect("punct", "(")
            if stream.accept("punct", "*"):
                if func != "COUNT":
                    stream.error(f"{func}(*) is not defined; only COUNT(*)",
                                 token)
                argument = None
            else:
                argument = _parse_dotted_names(stream)
            stream.expect("punct", ")")
            items.append(("aggregate", func, argument, token.offset))
        else:
            components, offset = _parse_dotted_names(stream)
            items.append(("ref", components, offset))
        if stream.accept("punct", ",") is None:
            return items


def _resolve_select(items, builder, text):
    resolved = []
    for item in items:
        if item[0] == "aggregate":
            _tag, func, argument, offset = item
            if argument is None:
                resolved.append(Aggregate(func))
            else:
                components, ref_offset = argument
                _entity, field = builder.resolve(components, ref_offset)
                resolved.append(Aggregate(func, field))
            continue
        _tag, components, offset = item
        if components[-1] == "*":
            positions = builder._positions_of(components[0])
            if len(components) != 2 or not positions:
                raise ParseError(
                    f"cannot expand {'.'.join(components)!r}", text, offset)
            entity = builder.entities[positions[0]]
            resolved.append(tuple(entity.attributes))
        else:
            _entity, field = builder.resolve(components, offset)
            resolved.append((field,))
    # preserve order, drop duplicates; aggregates stay distinct items
    flattened = dict.fromkeys(
        element
        for item in resolved
        for element in (item if isinstance(item, tuple) else (item,)))
    return tuple(flattened)


def _parse_field_list(stream, builder):
    """Parse ``ref, ref, ...`` clauses (GROUP BY / ORDER BY)."""
    fields = []
    while True:
        components, offset = _parse_dotted_names(stream)
        _entity, field = builder.resolve(components, offset)
        fields.append(field)
        if stream.accept("punct", ",") is None:
            return fields


def _parse_query(stream, model, text, label):
    stream.expect_keyword("SELECT")
    select_items = _parse_select_items(stream)
    stream.expect_keyword("FROM")
    from_names, from_offset = _parse_dotted_names(stream)
    builder = _PathBuilder(model, model.entity(from_names[0]), text)
    builder.extend(from_names[1:], from_offset)
    branches = _parse_where(stream, builder)
    group_by = []
    if stream.accept("keyword", "GROUP"):
        stream.expect_keyword("BY")
        group_by = _parse_field_list(stream, builder)
    order_by = []
    if stream.accept("keyword", "ORDER"):
        stream.expect_keyword("BY")
        order_by = _parse_field_list(stream, builder)
    limit = None
    if stream.accept("keyword", "LIMIT"):
        limit = int(stream.expect("number", describe="a number"))
    select = _resolve_select(select_items, builder, text)
    if len(branches) > 1:
        return Query(builder.path, select, disjuncts=branches,
                     order_by=order_by, limit=limit, text=text,
                     label=label, group_by=group_by)
    return Query(builder.path, select, branches[0], order_by=order_by,
                 limit=limit, text=text, label=label, group_by=group_by)


# -- write statements ------------------------------------------------------


def _parse_settings(stream, entity, text):
    """Parse ``field = ?param`` assignments for INSERT/UPDATE SET clauses."""
    settings = {}
    while True:
        components, offset = _parse_dotted_names(stream)
        if len(components) == 2 and components[0] == entity.name:
            field_name = components[1]
        elif len(components) == 1:
            field_name = components[0]
        else:
            raise ParseError(
                f"SET must assign fields of {entity.name}", text, offset)
        field = entity.fields.get(field_name)
        if field is None or isinstance(field, ForeignKeyField):
            raise ParseError(
                f"entity {entity.name!r} has no attribute {field_name!r}",
                text, offset)
        stream.expect("op", "=")
        settings[field] = _parse_parameter(stream, field.name)
        if stream.accept("punct", ",") is None:
            break
    return settings


def _parse_relationship(stream, entity, text):
    """Read a relationship name on ``entity`` (by key or entity name)."""
    token = stream.peek()
    name = stream.expect("name", describe="a relationship name")
    key = entity.fields.get(name)
    if not isinstance(key, ForeignKeyField):
        candidates = [fk for fk in entity.foreign_keys
                      if fk.entity.name == name]
        if len(candidates) != 1:
            raise ParseError(
                f"no relationship {name!r} on entity {entity.name}",
                text, token.offset)
        key = candidates[0]
    return key


def _parse_connections(stream, entity, text):
    """Parse the ``AND CONNECT TO rel(?param), ...`` clause of an INSERT."""
    connections = []
    while True:
        key = _parse_relationship(stream, entity, text)
        stream.expect("punct", "(")
        parameter = _parse_parameter(stream, key.name)
        stream.expect("punct", ")")
        connections.append((key, parameter))
        if stream.accept("punct", ",") is None:
            break
    return connections


def _parse_insert(stream, model, text, label):
    stream.expect_keyword("INSERT", "INTO")
    entity = model.entity(stream.expect("name", describe="an entity name"))
    stream.expect_keyword("SET")
    settings = _parse_settings(stream, entity, text)
    connections = ()
    if stream.accept("keyword", "AND"):
        stream.expect_keyword("CONNECT", "TO")
        connections = _parse_connections(stream, entity, text)
    return Insert(KeyPath(entity), settings, connections, text=text,
                  label=label)


def _parse_update(stream, model, text, label):
    stream.expect_keyword("UPDATE")
    entity = model.entity(stream.expect("name", describe="an entity name"))
    builder = _PathBuilder(model, entity, text)
    if stream.accept("keyword", "FROM"):
        from_names, from_offset = _parse_dotted_names(stream)
        if from_names[0] != entity.name:
            raise ParseError(
                "the FROM path of an UPDATE must start at the updated "
                "entity", text, from_offset)
        builder.extend(from_names[1:], from_offset)
    stream.expect_keyword("SET")
    settings = _parse_settings(stream, entity, text)
    branches = _parse_where(stream, builder)
    conditions = _require_conjunctive(stream, branches, "UPDATE statements")
    return Update(builder.path, settings, conditions, text=text, label=label)


def _parse_delete(stream, model, text, label):
    stream.expect_keyword("DELETE", "FROM")
    from_names, from_offset = _parse_dotted_names(stream)
    builder = _PathBuilder(model, model.entity(from_names[0]), text)
    builder.extend(from_names[1:], from_offset)
    branches = _parse_where(stream, builder)
    conditions = _require_conjunctive(stream, branches, "DELETE statements")
    return Delete(builder.path, conditions, text=text, label=label)


def _parse_connect(stream, model, text, label, disconnect):
    stream.expect_keyword("DISCONNECT" if disconnect else "CONNECT")
    entity = model.entity(stream.expect("name", describe="an entity name"))
    stream.expect("punct", "(")
    source_parameter = _parse_parameter(stream, entity.id_field.name)
    stream.expect("punct", ")")
    stream.expect_keyword("FROM" if disconnect else "TO")
    key = _parse_relationship(stream, entity, text)
    stream.expect("punct", "(")
    target_parameter = _parse_parameter(stream, key.entity.id_field.name)
    stream.expect("punct", ")")
    path = KeyPath(entity, (key,))
    cls = Disconnect if disconnect else Connect
    return cls(path, source_parameter, target_parameter, text=text,
               label=label)


def parse_statement(model, text, label=None):
    """Parse one statement against a conceptual model.

    Returns a :class:`~repro.workload.statements.Statement` subclass
    instance; raises :class:`~repro.exceptions.ParseError` on malformed
    input or references that do not resolve against the model.  Errors
    raised during parsing carry the source line/column and a caret
    pointing at the offending token.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty statement", text)
    stream = _TokenStream(tokens, text)
    first = tokens[0]
    keyword = first.value if first.kind == "keyword" else None
    parsers = {
        "SELECT": lambda: _parse_query(stream, model, text, label),
        "INSERT": lambda: _parse_insert(stream, model, text, label),
        "UPDATE": lambda: _parse_update(stream, model, text, label),
        "DELETE": lambda: _parse_delete(stream, model, text, label),
        "CONNECT": lambda: _parse_connect(stream, model, text, label, False),
        "DISCONNECT": lambda: _parse_connect(stream, model, text, label,
                                             True),
    }
    if keyword not in parsers:
        raise ParseError(f"unknown statement type {first.value!r}", text,
                         first.offset)
    try:
        statement = parsers[keyword]()
    except ModelError as error:
        raise ParseError(str(error), text) from error
    if not stream.exhausted:
        token = stream.peek()
        raise ParseError(f"trailing input near {token.value!r}", text,
                         token.offset)
    return statement
