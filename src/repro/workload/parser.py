"""Parser for the paper's SQL-like statement language.

Supported statement forms (Fig 3 and Fig 8 of the paper)::

    SELECT Guest.GuestName, Guest.GuestEmail FROM Guest
        WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city
          AND Guest.Reservations.Room.RoomRate > ?rate
        ORDER BY Guest.GuestName LIMIT 10

    INSERT INTO Reservation SET ResID = ?, ResEndDate = ?date
        AND CONNECT TO Guest(?guest), Room(?room)

    UPDATE Room FROM Room.Hotel SET RoomRate = ?rate
        WHERE Hotel.HotelID = ?hotel

    DELETE FROM Guest WHERE Guest.GuestID = ?guest

    CONNECT Guest(?guest) TO Reservations(?res)
    DISCONNECT Guest(?guest) FROM Reservations(?res)

Paths may be written in the FROM clause (``FROM Room.Hotel.PointsOfInterest``,
Fig 9 style) or implied by dotted references in the WHERE clause rooted at
the target entity (``Guest.Reservations.Room.Hotel.HotelCity``, Fig 3
style); both extend the statement's key path.  Path components may name
either the relationship (the foreign key) or the entity it reaches,
whenever that is unambiguous.
"""

from __future__ import annotations

import re

from repro.exceptions import ModelError, ParseError
from repro.model.fields import ForeignKeyField
from repro.model.paths import KeyPath
from repro.workload.conditions import OPERATORS, Condition
from repro.workload.statements import (
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Update,
)

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<param>\?[A-Za-z_][A-Za-z0-9_]*|\?)
      | (?P<number>\d+)
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op>>=|<=|=|>|<)
      | (?P<punct>[.,()*])
    )""", re.VERBOSE)

_KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "LIMIT",
    "INSERT", "INTO", "SET", "CONNECT", "TO", "UPDATE", "DELETE",
    "DISCONNECT",
})


def _tokenize(text):
    """Split statement text into (kind, value) tokens."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ParseError(
                    f"unexpected character {text[position]!r} at offset "
                    f"{position}", text)
            break
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(("keyword", value.upper()))
        else:
            tokens.append((kind, value))
    return tokens


class _TokenStream:
    """Cursor over the token list with convenience expectations."""

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.position = 0

    def peek(self, offset=0):
        index = self.position + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return (None, None)

    def next(self):
        token = self.peek()
        self.position += 1
        return token

    def accept(self, kind, value=None):
        token_kind, token_value = self.peek()
        if token_kind == kind and (value is None or token_value == value):
            self.position += 1
            return token_value
        return None

    def expect(self, kind, value=None):
        result = self.accept(kind, value)
        if result is None:
            token_kind, token_value = self.peek()
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token_value!r}", self.text)
        return result

    def expect_keyword(self, *words):
        for word in words:
            self.expect("keyword", word)

    @property
    def exhausted(self):
        return self.position >= len(self.tokens)


class _PathBuilder:
    """Incrementally grows a statement's key path while resolving refs.

    Holds the path as an entity/key list; dotted references either follow
    the existing path or extend it linearly at the tail, which implements
    the paper's implicit-path queries (Fig 3).
    """

    def __init__(self, model, root_entity, text):
        self.model = model
        self.text = text
        self.entities = [root_entity]
        self.keys = []

    @property
    def path(self):
        return KeyPath(self.entities[0], self.keys)

    def _positions_of(self, name):
        """Path positions a name may refer to (entity or arrival alias)."""
        positions = []
        for index, entity in enumerate(self.entities):
            if entity.name == name:
                positions.append(index)
        for index, key in enumerate(self.keys):
            if key.name == name and (index + 1) not in positions:
                positions.append(index + 1)
        return positions

    def _step(self, position, name):
        """Advance one path component from ``position``; extends the tail.

        ``name`` may match the outgoing relationship, the next entity's
        name, or — when at the tail — a foreign key on the tail entity
        (by relationship name, or by target entity name if unique).
        """
        at_tail = position == len(self.entities) - 1
        if not at_tail:
            next_key = self.keys[position]
            if name in (next_key.name, next_key.entity.name):
                return position + 1
            raise ParseError(
                f"path component {name!r} diverges from the statement path "
                f"after {self.entities[position].name}", self.text)
        entity = self.entities[position]
        key = entity.fields.get(name)
        if not isinstance(key, ForeignKeyField):
            key = None
            candidates = [fk for fk in entity.foreign_keys
                          if fk.entity.name == name]
            if len(candidates) == 1:
                key = candidates[0]
            elif len(candidates) > 1:
                raise ParseError(
                    f"ambiguous path component {name!r} from "
                    f"{entity.name}: name the relationship explicitly",
                    self.text)
        if key is None:
            raise ParseError(
                f"no relationship {name!r} from entity {entity.name}",
                self.text)
        self.keys.append(key)
        self.entities.append(key.entity)
        return position + 1

    def extend(self, names):
        """Walk relationship names from the root, extending the tail."""
        position = 0
        for name in names:
            position = self._step(position, name)
        return position

    def resolve(self, components):
        """Resolve a dotted reference to (entity, field).

        The last component is the field name; the preceding components
        locate an entity, starting from any alias on the path (entity or
        relationship name) and possibly extending the path at its tail.
        """
        if len(components) < 2:
            raise ParseError(
                f"reference {'.'.join(components)!r} must be qualified as "
                "Entity.Field", self.text)
        *path_parts, field_name = components
        positions = self._positions_of(path_parts[0])
        if not positions:
            raise ParseError(
                f"{path_parts[0]!r} is not an entity or relationship on "
                f"the statement path", self.text)
        position = positions[0]
        for name in path_parts[1:]:
            position = self._step(position, name)
        entity = self.entities[position]
        field = entity.fields.get(field_name)
        if field is None:
            raise ParseError(
                f"entity {entity.name!r} has no field {field_name!r}",
                self.text)
        if isinstance(field, ForeignKeyField):
            raise ParseError(
                f"{field.id} is a relationship, not an attribute",
                self.text)
        return entity, field


def _parse_dotted_names(stream):
    """Read ``Name(.Name)*`` from the stream."""
    names = [stream.expect("name")]
    while stream.accept("punct", "."):
        if stream.accept("punct", "*"):
            names.append("*")
            break
        names.append(stream.expect("name"))
    return names


def _parse_parameter(stream, default):
    token = stream.expect("param")
    return token[1:] if len(token) > 1 else default


def _parse_where(stream, builder):
    conditions = []
    if stream.accept("keyword", "WHERE") is None:
        return conditions
    while True:
        components = _parse_dotted_names(stream)
        _entity, field = builder.resolve(components)
        operator = stream.expect("op")
        if operator not in OPERATORS:  # pragma: no cover - regex guarded
            raise ParseError(f"unsupported operator {operator!r}",
                             stream.text)
        parameter = _parse_parameter(stream, field.name)
        conditions.append(Condition(field, operator, parameter))
        if stream.accept("keyword", "AND") is None:
            break
    return conditions


def _parse_select(stream, builder, text):
    """Parse the SELECT list of dotted references (resolved after FROM)."""
    select = []
    while True:
        select.append(_parse_dotted_names(stream))
        if stream.accept("punct", ",") is None:
            break
    return select


def _resolve_select(select_refs, builder, text):
    fields = []
    for components in select_refs:
        if components[-1] == "*":
            positions = builder._positions_of(components[0])
            if len(components) != 2 or not positions:
                raise ParseError(
                    f"cannot expand {'.'.join(components)!r}", text)
            entity = builder.entities[positions[0]]
            fields.extend(entity.attributes)
        else:
            _entity, field = builder.resolve(components)
            fields.append(field)
    # preserve order, drop duplicates
    return tuple(dict.fromkeys(fields))


def _parse_query(stream, model, text, label):
    stream.expect_keyword("SELECT")
    select_refs = _parse_select(stream, None, text)
    stream.expect_keyword("FROM")
    from_names = _parse_dotted_names(stream)
    builder = _PathBuilder(model, model.entity(from_names[0]), text)
    builder.extend(from_names[1:])
    conditions = _parse_where(stream, builder)
    order_by = []
    if stream.accept("keyword", "ORDER"):
        stream.expect_keyword("BY")
        while True:
            components = _parse_dotted_names(stream)
            _entity, field = builder.resolve(components)
            order_by.append(field)
            if stream.accept("punct", ",") is None:
                break
    limit = None
    if stream.accept("keyword", "LIMIT"):
        limit = int(stream.expect("number"))
    select = _resolve_select(select_refs, builder, text)
    return Query(builder.path, select, conditions, order_by=order_by,
                 limit=limit, text=text, label=label)


def _parse_settings(stream, entity, text):
    """Parse ``field = ?param`` assignments for INSERT/UPDATE SET clauses."""
    settings = {}
    while True:
        components = _parse_dotted_names(stream)
        if len(components) == 2 and components[0] == entity.name:
            field_name = components[1]
        elif len(components) == 1:
            field_name = components[0]
        else:
            raise ParseError(
                f"SET must assign fields of {entity.name}", text)
        field = entity.fields.get(field_name)
        if field is None or isinstance(field, ForeignKeyField):
            raise ParseError(
                f"entity {entity.name!r} has no attribute {field_name!r}",
                text)
        stream.expect("op", "=")
        settings[field] = _parse_parameter(stream, field.name)
        if stream.accept("punct", ",") is None:
            break
    return settings


def _parse_connections(stream, entity, text):
    """Parse the ``AND CONNECT TO rel(?param), ...`` clause of an INSERT."""
    connections = []
    while True:
        name = stream.expect("name")
        key = entity.fields.get(name)
        if not isinstance(key, ForeignKeyField):
            candidates = [fk for fk in entity.foreign_keys
                          if fk.entity.name == name]
            if len(candidates) != 1:
                raise ParseError(
                    f"no relationship {name!r} on entity {entity.name}",
                    text)
            key = candidates[0]
        stream.expect("punct", "(")
        parameter = _parse_parameter(stream, key.name)
        stream.expect("punct", ")")
        connections.append((key, parameter))
        if stream.accept("punct", ",") is None:
            break
    return connections


def _parse_insert(stream, model, text, label):
    stream.expect_keyword("INSERT", "INTO")
    entity = model.entity(stream.expect("name"))
    stream.expect_keyword("SET")
    settings = _parse_settings(stream, entity, text)
    connections = ()
    if stream.accept("keyword", "AND"):
        stream.expect_keyword("CONNECT", "TO")
        connections = _parse_connections(stream, entity, text)
    return Insert(KeyPath(entity), settings, connections, text=text,
                  label=label)


def _parse_update(stream, model, text, label):
    stream.expect_keyword("UPDATE")
    entity = model.entity(stream.expect("name"))
    builder = _PathBuilder(model, entity, text)
    if stream.accept("keyword", "FROM"):
        from_names = _parse_dotted_names(stream)
        if from_names[0] != entity.name:
            raise ParseError(
                "the FROM path of an UPDATE must start at the updated "
                "entity", text)
        builder.extend(from_names[1:])
    stream.expect_keyword("SET")
    settings = _parse_settings(stream, entity, text)
    conditions = _parse_where(stream, builder)
    return Update(builder.path, settings, conditions, text=text, label=label)


def _parse_delete(stream, model, text, label):
    stream.expect_keyword("DELETE", "FROM")
    from_names = _parse_dotted_names(stream)
    builder = _PathBuilder(model, model.entity(from_names[0]), text)
    builder.extend(from_names[1:])
    conditions = _parse_where(stream, builder)
    return Delete(builder.path, conditions, text=text, label=label)


def _parse_connect(stream, model, text, label, disconnect):
    stream.expect_keyword("DISCONNECT" if disconnect else "CONNECT")
    entity = model.entity(stream.expect("name"))
    stream.expect("punct", "(")
    source_parameter = _parse_parameter(stream, entity.id_field.name)
    stream.expect("punct", ")")
    stream.expect_keyword("FROM" if disconnect else "TO")
    name = stream.expect("name")
    key = entity.fields.get(name)
    if not isinstance(key, ForeignKeyField):
        candidates = [fk for fk in entity.foreign_keys
                      if fk.entity.name == name]
        if len(candidates) != 1:
            raise ParseError(
                f"no relationship {name!r} on entity {entity.name}", text)
        key = candidates[0]
    stream.expect("punct", "(")
    target_parameter = _parse_parameter(stream, key.entity.id_field.name)
    stream.expect("punct", ")")
    path = KeyPath(entity, (key,))
    cls = Disconnect if disconnect else Connect
    return cls(path, source_parameter, target_parameter, text=text,
               label=label)


def parse_statement(model, text, label=None):
    """Parse one statement against a conceptual model.

    Returns a :class:`~repro.workload.statements.Statement` subclass
    instance; raises :class:`~repro.exceptions.ParseError` on malformed
    input or references that do not resolve against the model.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty statement", text)
    stream = _TokenStream(tokens, text)
    keyword = tokens[0][1] if tokens[0][0] == "keyword" else None
    parsers = {
        "SELECT": lambda: _parse_query(stream, model, text, label),
        "INSERT": lambda: _parse_insert(stream, model, text, label),
        "UPDATE": lambda: _parse_update(stream, model, text, label),
        "DELETE": lambda: _parse_delete(stream, model, text, label),
        "CONNECT": lambda: _parse_connect(stream, model, text, label, False),
        "DISCONNECT": lambda: _parse_connect(stream, model, text, label,
                                             True),
    }
    if keyword not in parsers:
        raise ParseError(f"unknown statement type {keyword!r}", text)
    try:
        statement = parsers[keyword]()
    except ModelError as error:
        raise ParseError(str(error), text) from error
    if not stream.exhausted:
        _kind, value = stream.peek()
        raise ParseError(f"trailing input near {value!r}", text)
    return statement
