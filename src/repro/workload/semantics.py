"""Canonical value semantics: the NULL comparison and ordering rules.

One definition shared by every layer that compares or orders attribute
values — WHERE-clause predicates (:meth:`Condition.matches`), the
execution engine's client-side filter/sort steps, the record store's
clustering order and range scans, and the :mod:`repro.verify` reference
interpreter.  A single rule is what makes differential testing
meaningful: the executor and the oracle can only be compared if they
agree on what a missing value means.

The rules, restricted to NoSE's operator set (``= > >= < <=``):

* A missing attribute behaves as NULL (``None``).
* Equality: ``NULL = NULL`` holds, ``NULL = v`` fails for every other
  value.  (Parameters bound to ``None`` follow the same rule.)
* Range operators never match when either side is NULL.
* Ordering: NULL sorts after every non-NULL value (NULLS LAST), and
  sorts are stable.
"""

from __future__ import annotations

#: ordering key that sorts after every ``(False, value)`` key — the
#: NULLS LAST rule (compares against non-NULL keys on the first element)
NULL_KEY = (True,)


def ordering_key(value):
    """Sort key implementing the canonical NULLS LAST order."""
    if value is None:
        return NULL_KEY
    return (False, value)


def row_ordering_key(values):
    """Sort key for a sequence of values (e.g. an ORDER BY tuple)."""
    return tuple(ordering_key(value) for value in values)


def matches(operator, value, bound):
    """Evaluate ``value operator bound`` under the canonical NULL rule."""
    if operator == "=":
        return value == bound
    if value is None or bound is None:
        return False
    if operator == ">":
        return value > bound
    if operator == ">=":
        return value >= bound
    if operator == "<":
        return value < bound
    if operator == "<=":
        return value <= bound
    raise ValueError(f"unsupported operator {operator!r}")
