"""Canonical value semantics: the NULL comparison and ordering rules.

One definition shared by every layer that compares or orders attribute
values — WHERE-clause predicates (:meth:`Condition.matches`), the
execution engine's client-side filter/sort steps, the record store's
clustering order and range scans, and the :mod:`repro.verify` reference
interpreter.  A single rule is what makes differential testing
meaningful: the executor and the oracle can only be compared if they
agree on what a missing value means.

The rules, restricted to NoSE's operator set (``= != > >= < <= IN``):

* A missing attribute behaves as NULL (``None``).
* Equality: ``NULL = NULL`` holds, ``NULL = v`` fails for every other
  value.  (Parameters bound to ``None`` follow the same rule.)
* Inequality is the exact complement of equality: ``NULL != NULL``
  fails, ``NULL != v`` holds for every other value.
* ``IN`` matches when the value equals any member of the bound list,
  member-wise under the equality rule (so ``NULL IN (.., NULL, ..)``
  holds).
* Range operators never match when either side is NULL.
* Ordering: NULL sorts after every non-NULL value (NULLS LAST), and
  sorts are stable.

Aggregation folds (:func:`aggregate_value`) live here for the same
reason: the executor's AggregateStep and the reference interpreter must
produce bit-identical results, so both fold values in the same
canonical order.
"""

from __future__ import annotations

#: ordering key that sorts after every ``(False, value)`` key — the
#: NULLS LAST rule (compares against non-NULL keys on the first element)
NULL_KEY = (True,)


def ordering_key(value):
    """Sort key implementing the canonical NULLS LAST order."""
    if value is None:
        return NULL_KEY
    return (False, value)


def row_ordering_key(values):
    """Sort key for a sequence of values (e.g. an ORDER BY tuple)."""
    return tuple(ordering_key(value) for value in values)


def matches(operator, value, bound):
    """Evaluate ``value operator bound`` under the canonical NULL rule.

    For ``IN``, ``bound`` is a sequence of candidate values and the
    predicate holds when ``value`` equals any member (equality rule
    applied member-wise).
    """
    if operator == "=":
        return value == bound
    if operator == "!=":
        return value != bound
    if operator == "IN":
        return any(value == member for member in bound)
    if value is None or bound is None:
        return False
    if operator == ">":
        return value > bound
    if operator == ">=":
        return value >= bound
    if operator == "<":
        return value < bound
    if operator == "<=":
        return value <= bound
    raise ValueError(f"unsupported operator {operator!r}")


#: aggregate function names accepted by the statement language
AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def aggregate_value(func, values):
    """Fold ``values`` (one per row of a group) with aggregate ``func``.

    NULLs are ignored by every function except ``COUNT(*)``, which the
    caller expresses by passing the row count via ``values`` of all-1
    markers — here ``COUNT`` simply counts non-NULL members.  SUM/AVG
    fold in canonical :func:`ordering_key` order so floating-point
    summation is deterministic across the executor and the reference
    interpreter.  Empty input yields ``None`` (SQL semantics) for every
    function but COUNT, which yields 0.
    """
    present = [value for value in values if value is not None]
    if func == "COUNT":
        return len(present)
    if not present:
        return None
    present.sort(key=ordering_key)
    if func == "MIN":
        return present[0]
    if func == "MAX":
        return present[-1]
    if func == "SUM":
        total = present[0]
        for value in present[1:]:
            total = total + value
        return total
    if func == "AVG":
        total = present[0]
        for value in present[1:]:
            total = total + value
        return total / len(present)
    raise ValueError(f"unsupported aggregate function {func!r}")
