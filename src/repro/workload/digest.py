"""Structural statement digests for incremental advising.

Every statement gets a stable, canonical digest covering exactly what
candidate enumeration and plan-space generation look at: the statement
type, its walk through the entity graph, its predicates (field and
operator, predicate order canonicalized), selected and ordered fields,
limit, settings and connections.  Labels, weights, mixes and parameter
names are deliberately excluded, so a digest identifies a statement's
*structure* — renaming, reweighting or re-parsing a statement with
reordered predicates leaves its digest unchanged.

The advisor keys its per-statement artifact store on these digests
(:mod:`repro.pipeline`), and :meth:`repro.workload.Workload
.structural_diff` uses them to report which statements an edited
workload added, removed or kept.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def _condition_key(condition):
    """Structural identity of one predicate: field and operator.

    Parameter names are excluded, which makes IN digests invariant to
    the order of the value list for free — only the list *length* is
    structural (it feeds selectivity), so it rides along with the
    operator.
    """
    operator = condition.operator
    if condition.is_membership:
        operator = f"IN[{condition.cardinality}]"
    return (condition.field.id, operator)


def _canonical_conditions(statement):
    """Canonical predicate part: order-invariant within and across branches.

    Single-branch statements keep the original flat sorted-tuple format
    so every pre-existing digest is byte-identical; disjunctive WHERE
    clauses become a sorted tuple of sorted per-branch tuples, invariant
    to both predicate order within a branch and branch order.
    """
    disjuncts = getattr(statement, "disjuncts",
                        (statement.conditions,))
    if len(disjuncts) <= 1:
        return tuple(sorted(_condition_key(condition)
                            for condition in statement.conditions))
    return tuple(sorted(tuple(sorted(_condition_key(condition)
                                     for condition in branch))
                        for branch in disjuncts))


def _canonical_parts(statement):
    parts = [
        type(statement).__name__,
        statement.key_path.signature,
        # predicate order never changes which plans exist, only the
        # order they are discovered in; canonicalize it away
        _canonical_conditions(statement),
    ]
    select = getattr(statement, "select", None)
    if select is not None:
        # select order is structural: it decides the value-column order
        # of enumerated layouts, hence candidate identity
        parts.append(tuple(field.id for field in select))
        parts.append(tuple(field.id
                           for field in getattr(statement, "order_by",
                                                ())))
        parts.append(getattr(statement, "limit", None))
    if getattr(statement, "aggregates", ()):
        # appended only for aggregated queries so plain-query digests
        # keep their pre-aggregation byte layout
        parts.append(tuple(field.id for field in statement.group_by))
        parts.append(tuple(aggregate.output_id
                           for aggregate in statement.aggregates))
    settings = getattr(statement, "settings", None)
    if settings is not None:
        parts.append(tuple(sorted(field.id for field in settings)))
    connections = getattr(statement, "connections", None)
    if connections is not None:
        parts.append(tuple(sorted(key.id for key, _ in connections)))
    return tuple(parts)


def statement_digest(statement):
    """The statement's structural identity, as a short stable hex string.

    Invariant to the statement's label, its weights in any mix, its
    parameter names and the order of its predicates; sensitive to
    everything enumeration and planning consume.  Memoized on the
    statement (statement structure is immutable after construction;
    only labels and weights change, and neither is hashed).
    """
    cached = getattr(statement, "_structural_digest", None)
    if cached is not None:
        return cached
    payload = repr(_canonical_parts(statement)).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()[:16]
    try:
        statement._structural_digest = digest
    except AttributeError:  # pragma: no cover - slotted stand-ins
        pass
    return digest


def statement_signature(statement):
    """Digest plus the order-sensitive parts the digest canonicalizes.

    Predicate order never changes *which* candidates and plans exist,
    but it does steer the order enumeration and planning discover them
    in — and the advisor's artifact replay promises byte-identical
    explain output, which includes discovery order.  Artifact keys
    therefore pair the digest with the ordered predicate list, while
    :func:`statement_digest` alone stays order-invariant for workload
    diffing.
    """
    disjuncts = getattr(statement, "disjuncts",
                        (statement.conditions,))
    if len(disjuncts) <= 1:
        ordered = tuple(_condition_key(condition)
                        for condition in statement.conditions)
    else:
        ordered = tuple(tuple(_condition_key(condition)
                              for condition in branch)
                        for branch in disjuncts)
    return (statement_digest(statement), ordered)


@dataclass
class StructuralDiff:
    """Statement-level delta between two workloads.

    ``added`` and ``unchanged`` hold statements of the *other* (newer)
    workload, ``removed`` statements of the base workload.  Statements
    are matched by structural digest, so a relabelled or reweighted
    statement counts as unchanged; structurally identical duplicates
    are matched one-for-one (multiset semantics).
    """

    added: list = field(default_factory=list)
    removed: list = field(default_factory=list)
    unchanged: list = field(default_factory=list)

    @property
    def changed(self):
        """True when any statement was added or removed."""
        return bool(self.added or self.removed)

    def summary(self):
        return (f"+{len(self.added)} -{len(self.removed)} "
                f"={len(self.unchanged)}")

    def __repr__(self):
        return f"StructuralDiff({self.summary()})"


def structural_diff(base, other):
    """Diff two workloads' registered statements by structural digest."""
    mine = {}
    for statement in base.statements.values():
        mine.setdefault(statement_digest(statement), []).append(statement)
    theirs = {}
    for statement in other.statements.values():
        theirs.setdefault(statement_digest(statement),
                          []).append(statement)
    diff = StructuralDiff()
    for digest, statements in theirs.items():
        matched = min(len(statements), len(mine.get(digest, ())))
        diff.unchanged.extend(statements[:matched])
        diff.added.extend(statements[matched:])
    for digest, statements in mine.items():
        surplus = len(statements) - len(theirs.get(digest, ()))
        if surplus > 0:
            diff.removed.extend(statements[-surplus:])
    return diff
