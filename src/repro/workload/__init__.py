"""Workload description: parsed statements with weights (§III-B, §VI-A).

A workload is a set of parameterized statements — queries plus the five
update statement types of Fig 8 — each with a weight giving its relative
frequency.  Statements are written in the paper's SQL-like syntax over
the conceptual model and parsed by :func:`parse_statement`.
"""

from repro.workload.conditions import Condition
from repro.workload.parser import parse_statement
from repro.workload.statements import (
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Statement,
    SupportQuery,
    Update,
)
from repro.workload.workload import Workload

__all__ = [
    "Condition",
    "Connect",
    "Delete",
    "Disconnect",
    "Insert",
    "Query",
    "Statement",
    "SupportQuery",
    "Update",
    "Workload",
    "parse_statement",
]
