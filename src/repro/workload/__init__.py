"""Workload description: parsed statements with weights (§III-B, §VI-A).

A workload is a set of parameterized statements — queries plus the five
update statement types of Fig 8 — each with a weight giving its relative
frequency.  Statements are written in the paper's SQL-like syntax over
the conceptual model and parsed by :func:`parse_statement`.
"""

from repro.exceptions import WorkloadError
from repro.workload.conditions import Condition
from repro.workload.digest import StructuralDiff, statement_digest
from repro.workload.parser import parse_statement
from repro.workload.statements import (
    Aggregate,
    Connect,
    Delete,
    Disconnect,
    Insert,
    Query,
    Statement,
    SupportQuery,
    Update,
)
from repro.workload.workload import Workload

__all__ = [
    "Aggregate",
    "Condition",
    "Connect",
    "Delete",
    "Disconnect",
    "Insert",
    "Query",
    "Statement",
    "StructuralDiff",
    "SupportQuery",
    "Update",
    "Workload",
    "WorkloadError",
    "parse_statement",
    "statement_digest",
]
