"""A weighted collection of statements, optionally with workload mixes."""

from __future__ import annotations

from repro.exceptions import ParseError, WorkloadError
from repro.workload.digest import structural_diff
from repro.workload.parser import parse_statement
from repro.workload.statements import Query, Statement


class Workload:
    """The second input to the schema advisor: statements with weights.

    Each statement carries one weight per *mix* (e.g. RUBiS "bidding" and
    "browsing" request mixes); the advisor optimizes for the active mix.
    Statements may be given as text (parsed against the model) or as
    already-constructed :class:`~repro.workload.statements.Statement`
    objects.

    >>> workload = Workload(model)
    >>> workload.add_statement("SELECT Hotel.HotelName FROM Hotel "
    ...                        "WHERE Hotel.HotelID = ?", weight=2.0)
    """

    DEFAULT_MIX = "default"

    def __init__(self, model, mix=None):
        self.model = model
        self.active_mix = mix or self.DEFAULT_MIX
        #: label -> statement
        self.statements = {}
        #: label -> {mix -> weight}
        self._weights = {}

    # -- construction -----------------------------------------------------

    def add_statement(self, statement, weight=1.0, label=None, mixes=None):
        """Register a statement with a weight (or per-mix weights).

        ``mixes`` maps mix names to weights and overrides ``weight``.
        Returns the parsed statement.
        """
        if isinstance(statement, str):
            statement = parse_statement(self.model, statement, label=label)
        if not isinstance(statement, Statement):
            raise ParseError(f"not a statement: {statement!r}")
        if label is None:
            label = statement.label or f"statement_{len(self.statements)}"
        statement.label = label
        if label in self.statements:
            raise WorkloadError(f"duplicate statement label {label!r}")
        if weight <= 0 and not mixes:
            raise WorkloadError(
                f"statement weight must be positive: {weight}")
        self.statements[label] = statement
        if mixes:
            self._weights[label] = dict(mixes)
        else:
            self._weights[label] = {self.DEFAULT_MIX: weight}
        return statement

    def set_weight(self, label, weight, mix=None):
        """Adjust the weight of an existing statement (for one mix)."""
        if label not in self.statements:
            raise WorkloadError(f"unknown statement label {label!r}")
        self._weights[label][mix or self.active_mix] = weight

    def remove_statement(self, label):
        """Drop a statement (all mixes); returns the removed statement."""
        if label not in self.statements:
            raise WorkloadError(f"unknown statement label {label!r}")
        del self._weights[label]
        return self.statements.pop(label)

    def clone(self):
        """An independent copy sharing the (immutable) statement objects.

        Unlike :meth:`with_mix`, which returns a *view* over the same
        registrations, a clone can be edited — statements added,
        removed, reweighted — without touching the original; the
        edit-retune loop of incremental advising starts here.
        """
        copy = Workload(self.model, mix=self.active_mix)
        copy.statements = dict(self.statements)
        copy._weights = {label: dict(weights)
                         for label, weights in self._weights.items()}
        return copy

    # -- access ------------------------------------------------------------

    def weight(self, statement, mix=None):
        """Weight of a statement in the given (default: active) mix."""
        label = statement.label if isinstance(statement, Statement) \
            else statement
        try:
            weights = self._weights[label]
        except KeyError:
            raise WorkloadError(
                f"unknown statement label {label!r}") from None
        mix = mix or self.active_mix
        if mix in weights:
            return weights[mix]
        return weights.get(self.DEFAULT_MIX, 0.0)

    def with_mix(self, mix):
        """A view of this workload with a different active mix."""
        view = Workload(self.model, mix=mix)
        view.statements = self.statements
        view._weights = self._weights
        return view

    @property
    def queries(self):
        """Read statements with positive weight in the active mix."""
        return [s for s in self.statements.values()
                if isinstance(s, Query) and self.weight(s) > 0]

    @property
    def updates(self):
        """Write statements with positive weight in the active mix."""
        return [s for s in self.statements.values()
                if not isinstance(s, Query) and self.weight(s) > 0]

    @property
    def weighted_statements(self):
        """All active (statement, weight) pairs."""
        return [(s, self.weight(s)) for s in self.statements.values()
                if self.weight(s) > 0]

    def structural_diff(self, other):
        """Statement-level delta against another workload.

        Statements are matched by their structural digest
        (:func:`repro.workload.digest.statement_digest`), so labels,
        weights and mixes never affect the result.  Returns a
        :class:`repro.workload.digest.StructuralDiff` whose ``added``
        and ``unchanged`` statements come from ``other`` and whose
        ``removed`` statements come from this workload.
        """
        return structural_diff(self, other)

    def scale_weights(self, factor, predicate=None, mix=None,
                      source_mix=None):
        """Create a mix with some weights scaled by ``factor``.

        ``predicate`` selects which statements to scale (default: the
        write statements, matching the paper's 10x/100x write-scaling
        experiment, Fig 12).  Returns a workload view on the new mix.
        """
        if predicate is None:
            def predicate(statement):
                return not isinstance(statement, Query)
        source_mix = source_mix or self.active_mix
        new_mix = mix or f"{source_mix}_x{factor:g}"
        for label, statement in self.statements.items():
            base = self.weight(statement, mix=source_mix)
            scaled = base * factor if predicate(statement) else base
            self._weights[label][new_mix] = scaled
        return self.with_mix(new_mix)

    def __len__(self):
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements.values())

    def __repr__(self):
        reads = len(self.queries)
        writes = len(self.updates)
        return (f"Workload(mix={self.active_mix!r}, queries={reads}, "
                f"updates={writes})")
