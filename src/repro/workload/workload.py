"""A weighted collection of statements, optionally with workload mixes."""

from __future__ import annotations

import copy
import math

from repro.exceptions import ParseError, WorkloadError
from repro.workload.digest import structural_diff
from repro.workload.parser import parse_statement
from repro.workload.statements import Query, Statement


def _checked_weight(weight, label, mix=None, allow_zero=True):
    """Validate one weight value; returns it as a float.

    Weights flow unchecked into the BIP objective, where a negative
    value voids the optimizer's lower-bound arguments and a NaN
    silently poisons every comparison — so every write path (initial
    registration, per-mix tables, later :meth:`Workload.set_weight`
    adjustments) funnels through this one check.  Zero is allowed
    where noted: epsilon-floored and idle statements legitimately
    carry weight 0 in some mixes.
    """
    try:
        value = float(weight)
    except (TypeError, ValueError):
        raise WorkloadError(
            f"statement weight must be a number, got {weight!r}"
            f" for {label!r}") from None
    if math.isnan(value) or math.isinf(value):
        raise WorkloadError(
            f"statement weight must be finite, got {value!r} for "
            f"{label!r}")
    if value < 0 or (value == 0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise WorkloadError(
            f"statement weight must be {bound}: {value!r} for "
            f"{label!r}")
    return value


class Workload:
    """The second input to the schema advisor: statements with weights.

    Each statement carries one weight per *mix* (e.g. RUBiS "bidding" and
    "browsing" request mixes); the advisor optimizes for the active mix.
    Statements may be given as text (parsed against the model) or as
    already-constructed :class:`~repro.workload.statements.Statement`
    objects.

    >>> workload = Workload(model)
    >>> workload.add_statement("SELECT Hotel.HotelName FROM Hotel "
    ...                        "WHERE Hotel.HotelID = ?", weight=2.0)
    """

    DEFAULT_MIX = "default"

    def __init__(self, model, mix=None):
        self.model = model
        self.active_mix = mix or self.DEFAULT_MIX
        #: label -> statement
        self.statements = {}
        #: label -> {mix -> weight}
        self._weights = {}

    # -- construction -----------------------------------------------------

    def add_statement(self, statement, weight=1.0, label=None, mixes=None):
        """Register a statement with a weight (or per-mix weights).

        ``mixes`` maps mix names to weights and overrides ``weight``.
        Returns the parsed statement.
        """
        if isinstance(statement, str):
            statement = parse_statement(self.model, statement, label=label)
        if not isinstance(statement, Statement):
            raise ParseError(f"not a statement: {statement!r}")
        if label is None:
            label = statement.label or f"statement_{len(self.statements)}"
        if label in self.statements:
            raise WorkloadError(f"duplicate statement label {label!r}")
        if statement.label != label:
            if statement.label is not None:
                # never relabel a statement object in place: clone() and
                # with_mix() share statement objects across workloads, so
                # mutating the label here would silently corrupt the
                # label->statement map of every workload that already
                # registered it — register a relabelled copy instead
                statement = copy.copy(statement)
            statement.label = label
        if mixes:
            self._weights[label] = {
                mix: _checked_weight(value, label, mix=mix)
                for mix, value in mixes.items()}
        else:
            self._weights[label] = {
                self.DEFAULT_MIX: _checked_weight(weight, label,
                                                  allow_zero=False)}
        self.statements[label] = statement
        return statement

    def set_weight(self, label, weight, mix=None):
        """Adjust the weight of an existing statement (for one mix).

        Weights are validated exactly like :meth:`add_statement`'s —
        finite and non-negative — except that zero is allowed here: a
        statement may go idle in one mix (epsilon-floored advising
        relies on this) without being removed from the others.
        """
        if label not in self.statements:
            raise WorkloadError(f"unknown statement label {label!r}")
        mix = mix or self.active_mix
        self._weights[label][mix] = _checked_weight(weight, label,
                                                    mix=mix)

    def remove_statement(self, label):
        """Drop a statement (all mixes); returns the removed statement."""
        if label not in self.statements:
            raise WorkloadError(f"unknown statement label {label!r}")
        del self._weights[label]
        return self.statements.pop(label)

    def clone(self):
        """An independent copy sharing the (immutable) statement objects.

        Unlike :meth:`with_mix`, which returns a *view* over the same
        registrations, a clone can be edited — statements added,
        removed, reweighted — without touching the original; the
        edit-retune loop of incremental advising starts here.
        """
        copy = Workload(self.model, mix=self.active_mix)
        copy.statements = dict(self.statements)
        copy._weights = {label: dict(weights)
                         for label, weights in self._weights.items()}
        return copy

    # -- access ------------------------------------------------------------

    @property
    def known_mixes(self):
        """Sorted names of every mix any statement carries a weight for.

        Always includes :data:`DEFAULT_MIX` — a statement registered
        with a scalar ``weight`` lands there, and :meth:`weight` falls
        back to it for statements missing an entry in a known mix.
        """
        names = {self.DEFAULT_MIX}
        for weights in self._weights.values():
            names.update(weights)
        return sorted(names)

    def validate_mix(self, mix):
        """Raise :class:`WorkloadError` unless ``mix`` is a known mix.

        The plain :meth:`weight` lookup deliberately falls back to the
        default mix for unknown names so ad-hoc mixes can be layered on
        incrementally; schedule-driven paths (windowed advising) call
        this first so a typo'd window mix fails loudly instead of
        silently reusing default weights.  Returns the mix name.
        """
        if mix not in self.known_mixes:
            known = ", ".join(repr(name) for name in self.known_mixes)
            raise WorkloadError(
                f"unknown workload mix {mix!r} (known mixes: {known})")
        return mix

    def weight(self, statement, mix=None, strict=False):
        """Weight of a statement in the given (default: active) mix.

        With ``strict=True`` the mix must be a known mix name
        (:meth:`validate_mix`); otherwise unknown mixes silently fall
        back to the default-mix weight.
        """
        label = statement.label if isinstance(statement, Statement) \
            else statement
        try:
            weights = self._weights[label]
        except KeyError:
            raise WorkloadError(
                f"unknown statement label {label!r}") from None
        mix = mix or self.active_mix
        if strict:
            self.validate_mix(mix)
        if mix in weights:
            return weights[mix]
        return weights.get(self.DEFAULT_MIX, 0.0)

    def with_mix(self, mix, strict=False):
        """A view of this workload with a different active mix.

        With ``strict=True`` the mix must already be known
        (:meth:`validate_mix`) — use this when the mix name comes from
        external input such as a window schedule.
        """
        if strict:
            self.validate_mix(mix)
        view = Workload(self.model, mix=mix)
        view.statements = self.statements
        view._weights = self._weights
        return view

    @property
    def queries(self):
        """Read statements with positive weight in the active mix."""
        return [s for s in self.statements.values()
                if isinstance(s, Query) and self.weight(s) > 0]

    @property
    def updates(self):
        """Write statements with positive weight in the active mix."""
        return [s for s in self.statements.values()
                if not isinstance(s, Query) and self.weight(s) > 0]

    @property
    def weighted_statements(self):
        """All active (statement, weight) pairs."""
        return [(s, self.weight(s)) for s in self.statements.values()
                if self.weight(s) > 0]

    def structural_diff(self, other):
        """Statement-level delta against another workload.

        Statements are matched by their structural digest
        (:func:`repro.workload.digest.statement_digest`), so labels,
        weights and mixes never affect the result.  Returns a
        :class:`repro.workload.digest.StructuralDiff` whose ``added``
        and ``unchanged`` statements come from ``other`` and whose
        ``removed`` statements come from this workload.
        """
        return structural_diff(self, other)

    def scale_weights(self, factor, predicate=None, mix=None,
                      source_mix=None):
        """Create a mix with some weights scaled by ``factor``.

        ``predicate`` selects which statements to scale (default: the
        write statements, matching the paper's 10x/100x write-scaling
        experiment, Fig 12).  Returns a workload view on the new mix.
        """
        if predicate is None:
            def predicate(statement):
                return not isinstance(statement, Query)
        source_mix = source_mix or self.active_mix
        new_mix = mix or f"{source_mix}_x{factor:g}"
        for label, statement in self.statements.items():
            base = self.weight(statement, mix=source_mix)
            scaled = base * factor if predicate(statement) else base
            self._weights[label][new_mix] = scaled
        return self.with_mix(new_mix)

    def __len__(self):
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements.values())

    def __repr__(self):
        reads = len(self.queries)
        writes = len(self.updates)
        return (f"Workload(mix={self.active_mix!r}, queries={reads}, "
                f"updates={writes})")
