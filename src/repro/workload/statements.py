"""Statement IR: queries and the five update statement types (Fig 8).

Statements are expressed over the conceptual model: each names a target
entity and a path through the entity graph rooted at it, with predicates
over attributes of entities along the path.  They are normally produced
by :func:`repro.workload.parser.parse_statement`, but can be constructed
directly for programmatic workloads.

Beyond the paper's core language, queries support three extensions that
flow through every downstream layer (enumeration, planning, costing,
execution and differential verification):

* aggregation — ``COUNT/SUM/AVG/MIN/MAX`` select items with ``GROUP
  BY``, evaluated over *distinct* target-entity rows;
* ``IN``-lists — a k-way equality binding a column to a multi-get;
* disjunction — a WHERE clause in disjunctive normal form, held as a
  tuple of predicate branches (``disjuncts``) and planned as a union
  over the per-branch plan spaces.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.model.fields import ForeignKeyField
from repro.model.paths import KeyPath
from repro.workload import semantics
from repro.workload.conditions import Condition


class Aggregate:
    """An aggregate select item: ``FUNC(Entity.Field)`` or ``COUNT(*)``.

    Immutable value object.  ``field`` is ``None`` only for ``COUNT(*)``,
    which counts group rows.
    """

    __slots__ = ("func", "field")

    def __init__(self, func, field=None):
        func = func.upper()
        if func not in semantics.AGGREGATE_FUNCTIONS:
            raise ValueError(f"unsupported aggregate function {func!r}")
        if field is None and func != "COUNT":
            raise ValueError(f"{func}(*) is not defined; only COUNT(*)")
        self.func = func
        self.field = field

    @property
    def output_id(self):
        """Stable result-column name, e.g. ``SUM(Room.RoomRate)``."""
        return f"{self.func}({self.field.id if self.field else '*'})"

    def __eq__(self, other):
        if not isinstance(other, Aggregate):
            return NotImplemented
        return self.func == other.func and self.field is other.field

    def __hash__(self):
        return hash((self.func, id(self.field)))

    def __repr__(self):
        return f"Aggregate({self.output_id})"

    def __str__(self):
        return self.output_id


def _render_parameter(parameter):
    return f"?{parameter}"


def _render_condition(condition):
    if condition.is_membership:
        members = ", ".join(_render_parameter(name)
                            for name in condition.parameter)
        return f"{condition.field.id} IN ({members})"
    return (f"{condition.field.id} {condition.operator} "
            f"{_render_parameter(condition.parameter)}")


def _render_where(disjuncts):
    """Render a DNF predicate list back to statement syntax."""
    branches = [branch for branch in disjuncts if branch]
    if not branches:
        return ""
    if len(branches) == 1:
        body = " AND ".join(_render_condition(c) for c in branches[0])
    else:
        body = " OR ".join(
            "(" + " AND ".join(_render_condition(c) for c in branch) + ")"
            for branch in branches)
    return f" WHERE {body}"


class Statement:
    """Common behaviour of every workload statement.

    ``key_path`` is the statement's walk through the entity graph; its
    first entity is the statement's target.  Predicates are held as
    ``disjuncts`` — a tuple of branches, each a tuple of conditions over
    attributes of entities on the path — with ``conditions`` the
    flattened deduplicated view.  Non-query statements always have a
    single branch.  Within each branch at most one predicate may be a
    range (a restriction inherited from the single-get semantics of
    extensible record stores).
    """

    def __init__(self, key_path, conditions=(), text=None, label=None,
                 disjuncts=None):
        if not isinstance(key_path, KeyPath):
            raise ParseError("statement requires a KeyPath", text)
        self.key_path = key_path
        if disjuncts is None:
            disjuncts = (tuple(conditions),)
        self.disjuncts = tuple(tuple(branch) for branch in disjuncts)
        if not self.disjuncts:
            self.disjuncts = ((),)
        flattened = {}
        for branch in self.disjuncts:
            for condition in branch:
                flattened.setdefault(condition)
        self.conditions = tuple(flattened)
        self.text = text
        self.label = label
        self._validate_conditions()

    def _validate_conditions(self):
        for branch in self.disjuncts:
            ranges = [c for c in branch if c.is_range]
            if len(ranges) > 1:
                raise ParseError(
                    "at most one range predicate is supported per "
                    "predicate branch", self.text)
            seen = set()
            for condition in branch:
                if not self.key_path.includes(condition.field.parent):
                    raise ParseError(
                        f"condition on {condition.field.id} lies off the "
                        f"statement path {self.key_path}", self.text)
                if condition.field.id in seen:
                    raise ParseError(
                        f"duplicate condition on {condition.field.id}",
                        self.text)
                seen.add(condition.field.id)

    # -- structure ---------------------------------------------------------

    @property
    def entity(self):
        """The statement's target entity (the FROM entity)."""
        return self.key_path.first

    @property
    def is_disjunctive(self):
        """True when the WHERE clause has more than one OR branch."""
        return len(self.disjuncts) > 1

    @property
    def eq_conditions(self):
        return tuple(c for c in self.conditions if c.is_equality)

    @property
    def bindable_conditions(self):
        """Predicates that can seed get requests (equality and IN)."""
        return tuple(c for c in self.conditions if c.is_bindable)

    @property
    def range_condition(self):
        """The single range predicate, or None."""
        for condition in self.conditions:
            if condition.is_range:
                return condition
        return None

    def condition_on(self, field):
        """The predicate over ``field``, or None."""
        for condition in self.conditions:
            if condition.field is field:
                return condition
        return None

    @property
    def given_fields(self):
        """Fields whose values arrive as equality parameters."""
        return tuple(c.field for c in self.eq_conditions)

    def unparse(self):
        """Render the statement back to canonical source text.

        The result re-parses to a structurally identical statement
        (same digest), which is what lets statements built
        programmatically — e.g. by :mod:`repro.randgen` — be serialized
        and round-tripped.
        """
        raise NotImplementedError

    # -- statistics ----------------------------------------------------------

    @staticmethod
    def _branch_selectivity(branch):
        selectivity = 1.0
        for condition in branch:
            selectivity *= condition.selectivity
        return selectivity

    @property
    def matching_join_rows(self):
        """Expected rows of the full path join satisfying all predicates.

        For a disjunctive WHERE clause, branch estimates are summed
        (treating branches as disjoint) and capped at the path's join
        cardinality.
        """
        total = self.key_path.cardinality
        rows = sum(total * self._branch_selectivity(branch)
                   for branch in self.disjuncts)
        return max(min(rows, total), 1.0)

    @property
    def matching_target_rows(self):
        """Expected distinct target-entity rows satisfying all predicates."""
        total = float(self.entity.count)
        rows = sum(total * self._branch_selectivity(branch)
                   for branch in self.disjuncts)
        return max(min(rows, total), 1.0)

    def __repr__(self):
        text = self.text or f"{type(self).__name__} over {self.key_path}"
        return f"{type(self).__name__}({text!r})"

    def __str__(self):
        return self.text or self.unparse()


class Query(Statement):
    """A read statement: SELECT over a path (Fig 3).

    ``select`` holds the requested items — fields of the target entity
    (the same restriction as the paper's prototype; support queries
    relax it, see :class:`SupportQuery`), possibly mixed with
    :class:`Aggregate` items.  When aggregates are present the query is
    evaluated over distinct target rows: grouped by ``group_by`` (or as
    one global group), with plain selected fields required to appear in
    ``group_by`` and ``order_by`` restricted to grouping fields.  The
    underlying ``select`` tuple then holds the fields the plan must
    materialize (group fields, aggregate arguments, and the target id
    for distinctness); ``select_items`` preserves what was written.
    """

    #: distinguishes workload queries from maintenance support queries
    is_support = False

    def __init__(self, key_path, select, conditions=(), order_by=(),
                 limit=None, text=None, label=None, group_by=(),
                 disjuncts=None):
        super().__init__(key_path, conditions, text=text, label=label,
                         disjuncts=disjuncts)
        self.select_items = tuple(select)
        self.aggregates = tuple(item for item in self.select_items
                                if isinstance(item, Aggregate))
        plain = tuple(item for item in self.select_items
                      if not isinstance(item, Aggregate))
        self.group_by = tuple(group_by)
        self.order_by = tuple(order_by)
        self.limit = limit
        self._branch_queries = None
        if not self.select_items:
            raise ParseError("query selects no fields", text)
        if self.aggregates:
            if self.is_support:
                raise ParseError(
                    "support queries cannot aggregate", text)
            for aggregate in self.aggregates:
                if aggregate.field is not None \
                        and aggregate.field.parent is not self.entity:
                    raise ParseError(
                        f"aggregated field {aggregate.field.id} does not "
                        f"belong to the target entity {self.entity.name}",
                        text)
            for field in self.group_by:
                if field.parent is not self.entity:
                    raise ParseError(
                        f"GROUP BY field {field.id} does not belong to "
                        f"the target entity {self.entity.name}", text)
            group_set = set(self.group_by)
            for field in plain:
                if field not in group_set:
                    raise ParseError(
                        f"selected field {field.id} must appear in GROUP "
                        "BY when the query aggregates", text)
            for field in self.order_by:
                if field not in group_set:
                    raise ParseError(
                        f"ORDER BY field {field.id} must be a GROUP BY "
                        "field when the query aggregates", text)
            # fields the plan must materialize: group keys, aggregate
            # arguments, and the target id so groups fold over distinct
            # target rows rather than join rows
            underlying = dict.fromkeys(self.group_by)
            for aggregate in self.aggregates:
                if aggregate.field is not None:
                    underlying.setdefault(aggregate.field)
            underlying.setdefault(self.entity.id_field)
            self.select = tuple(underlying)
        else:
            if self.group_by:
                raise ParseError(
                    "GROUP BY requires at least one aggregate select "
                    "item", text)
            self.select = plain
        for field in self.select:
            if field.parent is not self.entity and not self.is_support:
                raise ParseError(
                    f"selected field {field.id} does not belong to the "
                    f"target entity {self.entity.name}", text)
        for field in self.order_by:
            if not self.key_path.includes(field.parent):
                raise ParseError(
                    f"ORDER BY field {field.id} lies off the statement path",
                    text)
        if limit is not None and limit < 1:
            raise ParseError("LIMIT must be positive", text)
        for branch in self.disjuncts:
            if not any(c.is_bindable for c in branch):
                raise ParseError(
                    "a query needs at least one equality (or IN) "
                    "predicate per OR branch to seed a get request", text)

    @property
    def is_aggregate(self):
        """True when the select list contains aggregate items."""
        return bool(self.aggregates)

    @property
    def output_ids(self):
        """Result-column identifiers, in select order.

        Plain queries project their selected fields; aggregated queries
        project the written select items (group fields and aggregate
        columns such as ``COUNT(*)``).
        """
        if self.is_aggregate:
            return tuple(item.output_id if isinstance(item, Aggregate)
                         else item.id for item in self.select_items)
        return tuple(field.id for field in self.select)

    @property
    def branch_queries(self):
        """One plain conjunctive query per OR branch.

        Disjunctive queries are planned as a union: each branch becomes
        an ordinary query over the same path, selecting the same
        underlying fields and carrying the parent's ORDER BY (so branch
        plans materialize the sort columns); aggregation, LIMIT and the
        final merge happen in the union tail.  Single-branch queries
        return ``(self,)``.
        """
        if not self.is_disjunctive:
            return (self,)
        if self._branch_queries is None:
            label = self.label or "query"
            self._branch_queries = tuple(
                Query(self.key_path, self.select, branch,
                      order_by=self.order_by,
                      label=f"{label}~or{number}")
                for number, branch in enumerate(self.disjuncts))
        return self._branch_queries

    @property
    def all_fields(self):
        """Every field the query touches: selected, filtered, ordered."""
        fields = dict.fromkeys(self.select)
        for condition in self.conditions:
            fields.setdefault(condition.field)
        for field in self.order_by:
            fields.setdefault(field)
        return tuple(fields)

    @property
    def group_rows(self):
        """Expected number of groups an aggregated query produces."""
        if not self.group_by:
            return 1.0
        groups = 1.0
        for field in self.group_by:
            groups *= max(field.cardinality, 1)
        return max(min(groups, self.matching_target_rows), 1.0)

    @property
    def result_rows(self):
        """Expected result size, honouring aggregation and LIMIT."""
        if self.is_aggregate:
            rows = self.group_rows
        else:
            rows = self.matching_join_rows
        if self.limit is not None:
            rows = min(rows, float(self.limit))
        return rows

    def unparse(self):
        items = ", ".join(str(item) if isinstance(item, Aggregate)
                          else item.id for item in self.select_items)
        parts = [f"SELECT {items} FROM {self.key_path}"]
        parts.append(_render_where(self.disjuncts))
        if self.group_by:
            fields = ", ".join(field.id for field in self.group_by)
            parts.append(f" GROUP BY {fields}")
        if self.order_by:
            fields = ", ".join(field.id for field in self.order_by)
            parts.append(f" ORDER BY {fields}")
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        return "".join(parts)


class SupportQuery(Query):
    """A query generated to maintain a column family under an update.

    Support queries fetch the primary-key attributes (and displaced old
    values) of the column-family rows an update touches (§VI-B).  They may
    select fields from any entity along their path, since the keys of a
    multi-entity column family span several entities.
    """

    is_support = True

    def __init__(self, key_path, select, conditions=(), update=None,
                 index=None, text=None, label=None):
        super().__init__(key_path, select, conditions, text=text, label=label)
        #: the update statement this query supports
        self.update = update
        #: the column family being maintained
        self.index = index

    def __repr__(self):
        # support queries are enumerator-generated, never round-tripped
        # through the parser, so they keep the provenance-style rendering
        # that explain documents have always used
        text = self.text or f"SupportQuery over {self.key_path}"
        return f"SupportQuery({text!r})"

    def __str__(self):
        return self.text or repr(self)


class _ModifyingStatement(Statement):
    """Base for the write statements of Fig 8."""

    is_support = False

    @property
    def modified_entity(self):
        """The entity whose rows (or connections) this statement changes."""
        return self.entity


class Insert(_ModifyingStatement):
    """``INSERT INTO Entity SET f = ?, ... [AND CONNECT TO rel(?), ...]``.

    Creates one new entity row.  The primary key is always provided (the
    paper assumes the same); relationships named in the CONNECT clause are
    established atomically with the insert.
    """

    def __init__(self, key_path, settings, connections=(), text=None,
                 label=None):
        super().__init__(key_path, conditions=(), text=text, label=label)
        if len(key_path) != 1:
            raise ParseError("INSERT targets a single entity", text)
        #: mapping of field -> parameter name for the new row's values
        self.settings = dict(settings)
        #: pairs of (foreign key on the target entity, parameter name)
        self.connections = tuple(connections)
        for field in self.settings:
            if field.parent is not self.entity:
                raise ParseError(
                    f"SET field {field.id} does not belong to "
                    f"{self.entity.name}", text)
        for key, _parameter in self.connections:
            if not isinstance(key, ForeignKeyField) \
                    or key.parent is not self.entity:
                raise ParseError(
                    f"CONNECT TO target {key!r} is not a relationship of "
                    f"{self.entity.name}", text)
        id_field = self.entity.id_field
        if id_field not in self.settings:
            # The paper assumes the primary key accompanies every insert.
            self.settings[id_field] = id_field.name

    @property
    def set_fields(self):
        return tuple(self.settings)

    @property
    def connected_keys(self):
        return tuple(key for key, _ in self.connections)

    def unparse(self):
        assignments = ", ".join(
            f"{field.name} = {_render_parameter(parameter)}"
            for field, parameter in self.settings.items())
        text = f"INSERT INTO {self.entity.name} SET {assignments}"
        if self.connections:
            links = ", ".join(
                f"{key.name}({_render_parameter(parameter)})"
                for key, parameter in self.connections)
            text += f" AND CONNECT TO {links}"
        return text


class Update(_ModifyingStatement):
    """``UPDATE Entity FROM path SET f = ? WHERE ...`` (Fig 8).

    Modifies attributes of target-entity rows selected by the predicates,
    which may reference entities along the FROM path.
    """

    def __init__(self, key_path, settings, conditions, text=None, label=None):
        super().__init__(key_path, conditions, text=text, label=label)
        self.settings = dict(settings)
        if not self.settings:
            raise ParseError("UPDATE sets no fields", text)
        for field in self.settings:
            if field.parent is not self.entity:
                raise ParseError(
                    f"SET field {field.id} does not belong to "
                    f"{self.entity.name}", text)
            if field is self.entity.id_field:
                raise ParseError("cannot UPDATE a primary key", text)
        if not self.conditions:
            raise ParseError("UPDATE requires a WHERE clause", text)

    @property
    def set_fields(self):
        return tuple(self.settings)

    def unparse(self):
        assignments = ", ".join(
            f"{field.name} = {_render_parameter(parameter)}"
            for field, parameter in self.settings.items())
        text = f"UPDATE {self.entity.name}"
        if len(self.key_path) > 1:
            text += f" FROM {self.key_path}"
        text += f" SET {assignments}"
        return text + _render_where(self.disjuncts)


class Delete(_ModifyingStatement):
    """``DELETE FROM path WHERE ...`` — removes matching target rows."""

    def __init__(self, key_path, conditions, text=None, label=None):
        super().__init__(key_path, conditions, text=text, label=label)
        if not self.conditions:
            raise ParseError("DELETE requires a WHERE clause", text)

    def unparse(self):
        return (f"DELETE FROM {self.key_path}"
                + _render_where(self.disjuncts))


class Connect(_ModifyingStatement):
    """``CONNECT Entity(?id) TO rel(?target_id)`` — add a relationship."""

    #: False for CONNECT, True for DISCONNECT
    removes_link = False

    def __init__(self, key_path, source_parameter, target_parameter,
                 text=None, label=None):
        if len(key_path) != 2:
            raise ParseError(
                "CONNECT/DISCONNECT traverses exactly one relationship",
                text)
        source = key_path.first
        conditions = (
            Condition(source.id_field, "=", source_parameter),
            Condition(key_path.last.id_field, "=", target_parameter),
        )
        super().__init__(key_path, conditions, text=text, label=label)
        self.source_parameter = source_parameter
        self.target_parameter = target_parameter

    @property
    def relationship(self):
        """The foreign key being connected or disconnected."""
        return self.key_path.keys[0]

    def unparse(self):
        verb, link = (("DISCONNECT", "FROM") if self.removes_link
                      else ("CONNECT", "TO"))
        return (f"{verb} {self.entity.name}"
                f"({_render_parameter(self.source_parameter)}) {link} "
                f"{self.relationship.name}"
                f"({_render_parameter(self.target_parameter)})")


class Disconnect(Connect):
    """``DISCONNECT Entity(?id) FROM Rel(?target_id)`` — remove a link."""

    removes_link = True
