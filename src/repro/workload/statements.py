"""Statement IR: queries and the five update statement types (Fig 8).

Statements are expressed over the conceptual model: each names a target
entity and a path through the entity graph rooted at it, with predicates
over attributes of entities along the path.  They are normally produced
by :func:`repro.workload.parser.parse_statement`, but can be constructed
directly for programmatic workloads.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.model.fields import ForeignKeyField
from repro.model.paths import KeyPath
from repro.workload.conditions import Condition


class Statement:
    """Common behaviour of every workload statement.

    ``key_path`` is the statement's walk through the entity graph; its
    first entity is the statement's target.  ``conditions`` are predicates
    over attributes of entities on that path; at most one may be a range
    predicate (a restriction inherited from the single-get semantics of
    extensible record stores).
    """

    def __init__(self, key_path, conditions=(), text=None, label=None):
        if not isinstance(key_path, KeyPath):
            raise ParseError("statement requires a KeyPath", text)
        self.key_path = key_path
        self.conditions = tuple(conditions)
        self.text = text
        self.label = label
        self._validate_conditions()

    def _validate_conditions(self):
        ranges = [c for c in self.conditions if c.is_range]
        if len(ranges) > 1:
            raise ParseError(
                "at most one range predicate is supported per statement",
                self.text)
        seen = set()
        for condition in self.conditions:
            if not self.key_path.includes(condition.field.parent):
                raise ParseError(
                    f"condition on {condition.field.id} lies off the "
                    f"statement path {self.key_path}", self.text)
            if condition.field.id in seen:
                raise ParseError(
                    f"duplicate condition on {condition.field.id}",
                    self.text)
            seen.add(condition.field.id)

    # -- structure ---------------------------------------------------------

    @property
    def entity(self):
        """The statement's target entity (the FROM entity)."""
        return self.key_path.first

    @property
    def eq_conditions(self):
        return tuple(c for c in self.conditions if c.is_equality)

    @property
    def range_condition(self):
        """The single range predicate, or None."""
        for condition in self.conditions:
            if condition.is_range:
                return condition
        return None

    def condition_on(self, field):
        """The predicate over ``field``, or None."""
        for condition in self.conditions:
            if condition.field is field:
                return condition
        return None

    @property
    def given_fields(self):
        """Fields whose values arrive as equality parameters."""
        return tuple(c.field for c in self.eq_conditions)

    # -- statistics ----------------------------------------------------------

    @property
    def matching_join_rows(self):
        """Expected rows of the full path join satisfying all predicates."""
        rows = self.key_path.cardinality
        for condition in self.conditions:
            rows *= condition.selectivity
        return max(rows, 1.0)

    @property
    def matching_target_rows(self):
        """Expected distinct target-entity rows satisfying all predicates."""
        rows = float(self.entity.count)
        for condition in self.conditions:
            rows *= condition.selectivity
        return max(rows, 1.0)

    def __repr__(self):
        text = self.text or f"{type(self).__name__} over {self.key_path}"
        return f"{type(self).__name__}({text!r})"

    def __str__(self):
        return self.text or repr(self)


class Query(Statement):
    """A read statement: SELECT over a path (Fig 3).

    ``select`` holds the requested fields; for workload queries they must
    belong to the target entity (the same restriction as the paper's
    prototype).  Support queries relax this — see :class:`SupportQuery`.
    """

    #: distinguishes workload queries from maintenance support queries
    is_support = False

    def __init__(self, key_path, select, conditions=(), order_by=(),
                 limit=None, text=None, label=None):
        super().__init__(key_path, conditions, text=text, label=label)
        self.select = tuple(select)
        self.order_by = tuple(order_by)
        self.limit = limit
        if not self.select:
            raise ParseError("query selects no fields", text)
        for field in self.select:
            if field.parent is not self.entity and not self.is_support:
                raise ParseError(
                    f"selected field {field.id} does not belong to the "
                    f"target entity {self.entity.name}", text)
        for field in self.order_by:
            if not self.key_path.includes(field.parent):
                raise ParseError(
                    f"ORDER BY field {field.id} lies off the statement path",
                    text)
        if limit is not None and limit < 1:
            raise ParseError("LIMIT must be positive", text)
        if not self.eq_conditions:
            raise ParseError(
                "a query needs at least one equality predicate to seed a "
                "get request", text)

    @property
    def all_fields(self):
        """Every field the query touches: selected, filtered, ordered."""
        fields = dict.fromkeys(self.select)
        for condition in self.conditions:
            fields.setdefault(condition.field)
        for field in self.order_by:
            fields.setdefault(field)
        return tuple(fields)

    @property
    def result_rows(self):
        """Expected result size, honouring LIMIT."""
        rows = self.matching_join_rows
        if self.limit is not None:
            rows = min(rows, float(self.limit))
        return rows


class SupportQuery(Query):
    """A query generated to maintain a column family under an update.

    Support queries fetch the primary-key attributes (and displaced old
    values) of the column-family rows an update touches (§VI-B).  They may
    select fields from any entity along their path, since the keys of a
    multi-entity column family span several entities.
    """

    is_support = True

    def __init__(self, key_path, select, conditions=(), update=None,
                 index=None, text=None, label=None):
        super().__init__(key_path, select, conditions, text=text, label=label)
        #: the update statement this query supports
        self.update = update
        #: the column family being maintained
        self.index = index


class _ModifyingStatement(Statement):
    """Base for the write statements of Fig 8."""

    is_support = False

    @property
    def modified_entity(self):
        """The entity whose rows (or connections) this statement changes."""
        return self.entity


class Insert(_ModifyingStatement):
    """``INSERT INTO Entity SET f = ?, ... [AND CONNECT TO rel(?), ...]``.

    Creates one new entity row.  The primary key is always provided (the
    paper assumes the same); relationships named in the CONNECT clause are
    established atomically with the insert.
    """

    def __init__(self, key_path, settings, connections=(), text=None,
                 label=None):
        super().__init__(key_path, conditions=(), text=text, label=label)
        if len(key_path) != 1:
            raise ParseError("INSERT targets a single entity", text)
        #: mapping of field -> parameter name for the new row's values
        self.settings = dict(settings)
        #: pairs of (foreign key on the target entity, parameter name)
        self.connections = tuple(connections)
        for field in self.settings:
            if field.parent is not self.entity:
                raise ParseError(
                    f"SET field {field.id} does not belong to "
                    f"{self.entity.name}", text)
        for key, _parameter in self.connections:
            if not isinstance(key, ForeignKeyField) \
                    or key.parent is not self.entity:
                raise ParseError(
                    f"CONNECT TO target {key!r} is not a relationship of "
                    f"{self.entity.name}", text)
        id_field = self.entity.id_field
        if id_field not in self.settings:
            # The paper assumes the primary key accompanies every insert.
            self.settings[id_field] = id_field.name

    @property
    def set_fields(self):
        return tuple(self.settings)

    @property
    def connected_keys(self):
        return tuple(key for key, _ in self.connections)


class Update(_ModifyingStatement):
    """``UPDATE Entity FROM path SET f = ? WHERE ...`` (Fig 8).

    Modifies attributes of target-entity rows selected by the predicates,
    which may reference entities along the FROM path.
    """

    def __init__(self, key_path, settings, conditions, text=None, label=None):
        super().__init__(key_path, conditions, text=text, label=label)
        self.settings = dict(settings)
        if not self.settings:
            raise ParseError("UPDATE sets no fields", text)
        for field in self.settings:
            if field.parent is not self.entity:
                raise ParseError(
                    f"SET field {field.id} does not belong to "
                    f"{self.entity.name}", text)
            if field is self.entity.id_field:
                raise ParseError("cannot UPDATE a primary key", text)
        if not self.conditions:
            raise ParseError("UPDATE requires a WHERE clause", text)

    @property
    def set_fields(self):
        return tuple(self.settings)


class Delete(_ModifyingStatement):
    """``DELETE FROM path WHERE ...`` — removes matching target rows."""

    def __init__(self, key_path, conditions, text=None, label=None):
        super().__init__(key_path, conditions, text=text, label=label)
        if not self.conditions:
            raise ParseError("DELETE requires a WHERE clause", text)


class Connect(_ModifyingStatement):
    """``CONNECT Entity(?id) TO rel(?target_id)`` — add a relationship."""

    #: False for CONNECT, True for DISCONNECT
    removes_link = False

    def __init__(self, key_path, source_parameter, target_parameter,
                 text=None, label=None):
        if len(key_path) != 2:
            raise ParseError(
                "CONNECT/DISCONNECT traverses exactly one relationship",
                text)
        source = key_path.first
        conditions = (
            Condition(source.id_field, "=", source_parameter),
            Condition(key_path.last.id_field, "=", target_parameter),
        )
        super().__init__(key_path, conditions, text=text, label=label)
        self.source_parameter = source_parameter
        self.target_parameter = target_parameter

    @property
    def relationship(self):
        """The foreign key being connected or disconnected."""
        return self.key_path.keys[0]


class Disconnect(Connect):
    """``DISCONNECT Entity(?id) FROM rel(?target_id)`` — remove a link."""

    removes_link = True
