"""Exception hierarchy for the NoSE reproduction.

All errors raised by this package derive from :class:`NoseError`, so client
code can catch a single exception type at the API boundary while still
being able to distinguish failure modes.
"""


class NoseError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(NoseError):
    """An entity graph is malformed or referenced inconsistently.

    Raised, for example, when adding a duplicate entity, traversing a
    relationship that does not exist, or building a key path whose edges
    are not connected.
    """


class ParseError(NoseError):
    """A workload statement could not be parsed or resolved.

    Carries the offending statement text (when available) so callers can
    report the failing input.
    """

    def __init__(self, message, text=None):
        if text is not None:
            message = f"{message} (in statement: {text!r})"
        super().__init__(message)
        self.text = text


class WorkloadError(ParseError):
    """A workload was assembled inconsistently.

    Raised for validation failures that involve no parsing at all —
    duplicate statement labels, non-positive weights, removing a
    statement that is not registered.  Subclasses :class:`ParseError`
    so existing callers catching that type keep working.
    """


class PlanningError(NoseError):
    """No valid implementation plan exists for a statement.

    This signals that the candidate pool cannot answer a query — e.g. when
    planning against a fixed, user-supplied schema that does not cover the
    workload.
    """


class OptimizationError(NoseError):
    """The schema optimization problem is infeasible or the solver failed."""


class ExecutionError(NoseError):
    """A plan could not be executed against the backend record store."""


class TruncationWarning(UserWarning):
    """A plan space hit the planner's ``max_plans`` cap.

    The enumeration stopped with branches left unexplored, so the plan
    space may be incomplete and the recommendation is optimal only over
    the plans that were kept.  Raise ``max_plans`` to explore further.
    """
