"""Exception hierarchy for the NoSE reproduction.

All errors raised by this package derive from :class:`NoseError`, so client
code can catch a single exception type at the API boundary while still
being able to distinguish failure modes.
"""


class NoseError(Exception):
    """Base class for all errors raised by this package."""


class ModelError(NoseError):
    """An entity graph is malformed or referenced inconsistently.

    Raised, for example, when adding a duplicate entity, traversing a
    relationship that does not exist, or building a key path whose edges
    are not connected.
    """


class ParseError(NoseError):
    """A workload statement could not be parsed or resolved.

    Carries the offending statement text (when available) so callers can
    report the failing input.  When ``offset`` (a character position into
    ``text``) is given, the error message pinpoints the failure with its
    line and column and a caret-annotated snippet of the offending line::

        expected 'FROM', found 'WHERE' at line 1, column 27
            SELECT Hotel.HotelName WHERE ...
                                   ^
    """

    def __init__(self, message, text=None, offset=None):
        self.text = text
        self.offset = offset
        self.line = None
        self.column = None
        if text is not None and offset is not None:
            offset = max(0, min(offset, len(text)))
            consumed = text[:offset]
            self.line = consumed.count("\n") + 1
            start = consumed.rfind("\n") + 1
            self.column = offset - start + 1
            end = text.find("\n", start)
            snippet = text[start:] if end < 0 else text[start:end]
            caret = " " * (self.column - 1) + "^"
            message = (f"{message} at line {self.line}, "
                       f"column {self.column}:\n"
                       f"    {snippet}\n    {caret}")
        elif text is not None:
            message = f"{message} (in statement: {text!r})"
        super().__init__(message)


class WorkloadError(ParseError):
    """A workload was assembled inconsistently.

    Raised for validation failures that involve no parsing at all —
    duplicate statement labels, non-positive weights, removing a
    statement that is not registered.  Subclasses :class:`ParseError`
    so existing callers catching that type keep working.
    """


class PlanningError(NoseError):
    """No valid implementation plan exists for a statement.

    This signals that the candidate pool cannot answer a query — e.g. when
    planning against a fixed, user-supplied schema that does not cover the
    workload.
    """


class OptimizationError(NoseError):
    """The schema optimization problem is infeasible or the solver failed."""


class ExecutionError(NoseError):
    """A plan could not be executed against the backend record store."""


class TruncationWarning(UserWarning):
    """A plan space hit the planner's ``max_plans`` cap.

    The enumeration stopped with branches left unexplored, so the plan
    space may be incomplete and the recommendation is optimal only over
    the plans that were kept.  Raise ``max_plans`` to explore further.
    """
