"""The column-family abstraction (paper §III-C and §IV-A1)."""

from __future__ import annotations

import hashlib

from repro.exceptions import ModelError
from repro.model.paths import KeyPath


class Index:
    """One column family: ``[hash][order][extra]`` over an entity-graph path.

    ``hash_fields`` form the partition key, ``order_fields`` the clustering
    key (order matters — records within a partition are sorted by it), and
    ``extra_fields`` are plain column values.  ``path`` is the walk through
    the entity graph whose join populates the column family; every field
    must belong to an entity on the path.

    An index's *content* is orientation-independent (the join over a path
    equals the join over its reverse), so two indexes with the same fields
    over reversed paths are considered equal.

    Indexes are immutable; ``key`` is a deterministic digest used as the
    backing table name.
    """

    __slots__ = ("hash_fields", "order_fields", "extra_fields", "path",
                 "key", "_all_fields", "_field_ids", "_entry_size")

    def __init__(self, hash_fields, order_fields, extra_fields, path):
        hash_fields = tuple(hash_fields)
        order_fields = tuple(order_fields)
        extra_fields = tuple(extra_fields)
        if not isinstance(path, KeyPath):
            raise ModelError("an index requires a KeyPath")
        if not hash_fields:
            raise ModelError("an index requires at least one hash field")
        entities = set(path.entities)
        seen = set()
        for group_name, fields in (("hash", hash_fields),
                                   ("order", order_fields),
                                   ("extra", extra_fields)):
            for field in fields:
                if field.parent not in entities:
                    raise ModelError(
                        f"{group_name} field {field.id} is not on the "
                        f"index path {path}")
                if field.id in seen:
                    raise ModelError(
                        f"field {field.id} appears twice in the index")
                seen.add(field.id)
        self.hash_fields = hash_fields
        self.order_fields = order_fields
        self.extra_fields = extra_fields
        self.path = path
        self.key = self._digest()
        # field membership is immutable, so the planner's subset checks
        # (covers, bitset rows) read precomputed structures instead of
        # rebuilding id sets per call; entity *counts* may change after
        # construction (Dataset.sync_counts), so count-dependent
        # statistics below stay dynamic properties
        self._all_fields = hash_fields + order_fields + extra_fields
        self._field_ids = frozenset(f.id for f in self._all_fields)
        self._entry_size = sum(f.size for f in self._all_fields)

    def _digest(self):
        # the path signature is orientation-independent and includes the
        # relationship edges, so an index equals its reverse-path twin
        # but differs from one over a parallel relationship
        names, edges = self.path.signature
        parts = [
            ",".join(sorted(f.id for f in self.hash_fields)),
            ",".join(f.id for f in self.order_fields),
            ",".join(sorted(f.id for f in self.extra_fields)),
            ",".join(names),
            ";".join(edges),
        ]
        digest = hashlib.md5("|".join(parts).encode()).hexdigest()[:10]
        return f"i{digest}"

    # -- identity -----------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Index):
            return NotImplemented
        return self.key == other.key

    def __hash__(self):
        return hash(self.key)

    # -- fields --------------------------------------------------------------

    @property
    def key_fields(self):
        """Partition plus clustering fields — the row's primary key."""
        return self.hash_fields + self.order_fields

    @property
    def all_fields(self):
        return self._all_fields

    def contains_field(self, field):
        return field.id in self._field_ids

    def covers(self, fields):
        """True if every requested field is stored in this column family."""
        stored = self._field_ids
        return all(f.id in stored for f in fields)

    def covers_ids(self, field_ids):
        """True if every listed field id is stored in this column family."""
        return self._field_ids.issuperset(field_ids)

    @property
    def all_field_ids(self):
        return self._field_ids

    # -- path compatibility ---------------------------------------------------

    @property
    def entity_sequence(self):
        """Entities along the path, in path order."""
        return self.path.entities

    def matches_segment(self, segment):
        """True if this index is defined over exactly ``segment``'s walk
        (same entities over the same relationship edges), in either
        orientation — index content is orientation-independent.
        """
        return self.path.signature == segment.signature

    # -- statistics ------------------------------------------------------------

    @property
    def entries(self):
        """Expected number of rows (partition, clustering pairs)."""
        return self.path.cardinality

    @property
    def hash_count(self):
        """Expected number of distinct partition keys."""
        combinations = 1.0
        for field in self.hash_fields:
            combinations *= max(field.cardinality, 1)
        return max(min(combinations, self.entries), 1.0)

    @property
    def per_partition_entries(self):
        """Average rows per partition."""
        return self.entries / self.hash_count

    @property
    def entry_size(self):
        """Average encoded size of one row, in bytes."""
        return self._entry_size

    @property
    def size(self):
        """Estimated total size of the column family, in bytes."""
        return self.entries * self.entry_size

    # -- presentation ------------------------------------------------------------

    def triple(self):
        """The paper's ``[hash][order][extra]`` notation."""
        def names(fields):
            return ", ".join(f.id for f in fields)
        return (f"[{names(self.hash_fields)}]"
                f"[{names(self.order_fields)}]"
                f"[{names(self.extra_fields)}]")

    def cql(self):
        """A ``CREATE TABLE`` statement for this column family.

        Emits CQL3 with the partition key and clustering columns
        matching the index structure, for deployment on a real
        Cassandra cluster.  Column names flatten ``Entity.Field`` to
        ``entity_field``.
        """
        from repro.indexes.cql import create_table
        return create_table(self)

    def __repr__(self):
        return f"Index({self.key}: {self.triple()} over {self.path})"

    def __str__(self):
        return self.triple()
