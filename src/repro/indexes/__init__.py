"""Column families: the physical schema objects NoSE recommends (§III-C).

A column family maps a partition key to clustering-key-ordered columns,
``K -> (C -> V)``.  We follow the paper's triple notation: an
:class:`Index` is ``[hash fields][order fields][extra fields]`` defined
over a path through the entity graph.
"""

from repro.indexes.index import Index
from repro.indexes.materialize import (
    entity_fetch_index,
    id_index_for,
    materialized_view_for,
)

__all__ = [
    "Index",
    "entity_fetch_index",
    "id_index_for",
    "materialized_view_for",
]
