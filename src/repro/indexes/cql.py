"""CQL3 DDL generation for recommended column families.

The paper's prototype created its recommended column families on a live
Cassandra cluster; this module emits the equivalent ``CREATE TABLE``
statements so a recommendation can be deployed outside the simulator.
"""

from __future__ import annotations

from repro.model.fields import (
    BooleanField,
    DateField,
    Field,
    FloatField,
    ForeignKeyField,
    IDField,
    IntegerField,
    StringField,
)

#: conceptual field type -> CQL column type
_CQL_TYPES = (
    (ForeignKeyField, "uuid"),
    (IDField, "uuid"),
    (BooleanField, "boolean"),
    (IntegerField, "bigint"),
    (FloatField, "double"),
    (DateField, "timestamp"),
    (StringField, "text"),
)


def cql_type(field):
    """The CQL column type for a conceptual-model field."""
    for field_type, cql in _CQL_TYPES:
        if isinstance(field, field_type):
            return cql
    if isinstance(field, Field):
        return "text"
    raise TypeError(f"not a field: {field!r}")


def column_name(field):
    """Flatten ``Entity.Field`` into a CQL-safe column name."""
    return field.id.replace(".", "_").lower()


def create_table(index, keyspace=None):
    """A ``CREATE TABLE`` statement for one column family."""
    table = f"{keyspace}.{index.key}" if keyspace else index.key
    lines = [f"CREATE TABLE \"{table}\" ("]
    for field in index.all_fields:
        lines.append(f"    \"{column_name(field)}\" {cql_type(field)},")
    partition = ", ".join(f'"{column_name(field)}"'
                          for field in index.hash_fields)
    clustering = ", ".join(f'"{column_name(field)}"'
                           for field in index.order_fields)
    if clustering:
        lines.append(f"    PRIMARY KEY (({partition}), {clustering})")
    else:
        lines.append(f"    PRIMARY KEY (({partition}))")
    lines.append(");")
    return "\n".join(lines)


def create_schema(indexes, keyspace=None):
    """DDL for a whole recommendation, one statement per column family."""
    return "\n\n".join(create_table(index, keyspace=keyspace)
                       for index in indexes)
