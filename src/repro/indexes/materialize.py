"""Constructing column families from queries (paper §IV-A1).

For any query in the language we can build a *materialized view*: a
column family answering the query with a single get.  Its partition key
holds equality-predicate attributes, its clustering key carries the
remaining predicate/ordering attributes followed by the IDs of every
entity along the path (guaranteeing one record per join row — the paper
notes the same), and its values are the selected attributes.
"""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.indexes.index import Index
from repro.model.paths import KeyPath


def _dedupe(fields):
    """Order-preserving de-duplication by field identity."""
    return tuple(dict.fromkeys(fields))


def _hash_entity_for(query):
    """Default partition-key entity: the eq-predicate entity nearest the
    far end of the query path (the anchor of the paper's decomposition)."""
    best = None
    for condition in query.eq_conditions:
        position = query.key_path.index_of(condition.field.parent)
        if best is None or position > best[0]:
            best = (position, condition.field.parent)
    if best is None:
        raise ModelError(
            f"query has no equality predicate to hash on: {query}")
    return best[1]


def materialized_view_for(query, hash_entity=None, recorder=None):
    """The column family answering ``query`` with one get request.

    ``hash_entity`` selects which entity's equality attributes form the
    partition key (the enumerator tries each candidate entity, since e.g.
    Fig 9 of the paper hashes on the target entity while Fig 3 hashes on
    the far end of the path).  Remaining equality attributes become the
    leading clustering columns, where a get can still bind them exactly.
    With a ``recorder`` the construction is logged as ``materialize``
    provenance sourced at ``query``.
    """
    if hash_entity is None:
        hash_entity = _hash_entity_for(query)
    hash_fields = tuple(c.field for c in query.eq_conditions
                        if c.field.parent is hash_entity)
    if not hash_fields:
        raise ModelError(
            f"entity {hash_entity.name!r} has no equality predicate in "
            f"{query}")
    other_eq = tuple(c.field for c in query.eq_conditions
                     if c.field.parent is not hash_entity)
    range_fields = ()
    if query.range_condition is not None:
        range_fields = (query.range_condition.field,)
    order_by = tuple(getattr(query, "order_by", ()))
    ids = tuple(entity.id_field for entity in query.key_path)
    order_fields = _dedupe(other_eq + order_by + range_fields + ids)
    taken = set(hash_fields)
    order_fields = tuple(f for f in order_fields if f not in taken)
    select = tuple(getattr(query, "select", ()))
    taken.update(order_fields)
    extra_fields = tuple(f for f in _dedupe(select) if f not in taken)
    path = query.key_path.reverse() if len(query.key_path) > 1 \
        else query.key_path
    view = Index(hash_fields, order_fields, extra_fields, path)
    if recorder is not None:
        recorder.record(view, "materialize", source=query)
    return view


def id_index_for(query, hash_entity=None, recorder=None):
    """The key-only variant: same keys as the materialized view, no values.

    Used when the optimizer prefers fetching the selected attributes
    through a separate per-entity column family (§IV-A2).  With a
    ``recorder`` the split is logged as ``id-fetch-split`` provenance.
    """
    view = materialized_view_for(query, hash_entity=hash_entity)
    if not view.extra_fields:
        if recorder is not None:
            recorder.record(view, "materialize", source=query)
        return view
    split = Index(view.hash_fields, view.order_fields, (), view.path)
    if recorder is not None:
        recorder.record(split, "id-fetch-split", source=query)
    return split


def entity_fetch_index(entity, fields=None, recorder=None, source=None):
    """A per-entity lookup column family ``[ID][][attributes]``.

    Maps an entity's primary key to (by default all of) its attributes;
    the second stage of the paper's two-step plans.  With a ``recorder``
    the construction is logged as ``id-fetch-split`` provenance sourced
    at ``source``.
    """
    id_field = entity.id_field
    if id_field is None:
        raise ModelError(f"entity {entity.name!r} has no ID field")
    if fields is None:
        fields = entity.data_fields
    extra = tuple(f for f in _dedupe(fields) if f is not id_field)
    for field in extra:
        if field.parent is not entity:
            raise ModelError(
                f"field {field.id} does not belong to {entity.name}")
    index = Index((id_field,), (), extra, KeyPath(entity))
    if recorder is not None:
        recorder.record(index, "id-fetch-split", source=source)
    return index
