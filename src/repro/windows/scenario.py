"""The bundled RUBiS browsing->bidding drift scenario.

One canonical schedule shared by the ``nose-advisor windows`` demo,
the CI smoke and the windows benchmark: a read-only *browsing* phase,
then the write-heavy *bidding* phase, then browsing again — the shape
of a site's day.  The request volumes and migration load rate sit in
the regime the windowed advisor is for: migrating toward each phase's
best schema pays off over a window (so the static single schema loses)
but not for every marginal column family (so naive per-window
re-advising overpays on migrations).
"""

from __future__ import annotations

from repro.tools.migration import MigrationCostModel
from repro.windows.schedule import WindowSchedule

__all__ = ["rubis_drift_scenario"]


def rubis_drift_scenario(users=2000, browsing_requests=6000.0,
                         bidding_requests=6000.0, load_rate=0.15):
    """Build the scenario: ``(model, workload, schedule, migration_model)``.

    ``users`` scales the RUBiS model (and with it every column family's
    entry count, hence migration cost); ``load_rate`` is the
    :class:`MigrationCostModel` row cost.  The defaults are the ones
    BENCH_windows.json records.
    """
    from repro.rubis import rubis_model, rubis_workload
    model = rubis_model(users=users)
    workload = rubis_workload(model, mix="browsing")
    schedule = WindowSchedule([
        ("browsing", browsing_requests),
        ("bidding", bidding_requests),
        ("browsing", browsing_requests),
    ])
    return model, workload, schedule, MigrationCostModel(
        row_cost=load_rate)
