"""The "nose-windows/1" document: one windowed advising run.

``windows_document`` folds a
:class:`~repro.windows.advisor.WindowedRecommendation` into a single
JSON-able document: the schedule, per-window schemas with serving
costs and statement costs, the migration steps between windows (create
/ drop / rows and bytes to load), the cost ledger, and both baselines
scored by the same evaluator.  Everything is deterministic — sorted
key lists, rounded floats, no wall-clock — so serial and ``jobs=N``
runs serialize byte-identically through
:func:`repro.io.serialize.dump_windows`.
"""

from __future__ import annotations

__all__ = ["WINDOWS_FORMAT", "windows_document"]

WINDOWS_FORMAT = "nose-windows/1"


def _round(value):
    return round(float(value), 6)


def _index_entry(index):
    return {
        "key": index.key,
        "triple": index.triple(),
        "entries": _round(index.entries),
        "size_bytes": _round(index.size),
    }


def _migration_entry(migration, cost):
    return {
        "create": sorted(index.key for index in migration.create),
        "drop": sorted(index.key for index in migration.drop),
        "keep": len(migration.keep),
        "rows_to_load": _round(migration.rows_to_load),
        "bytes_to_load": _round(migration.bytes_to_load),
        "cost": _round(cost),
    }


def _statement_costs(result):
    costs = {}
    for query, plan in result.query_plans.items():
        weight = result.weights.get(query.label, 0.0)
        costs[query.label] = _round(weight * plan.cost)
    for update, plans in result.update_plans.items():
        weight = result.weights.get(update.label, 0.0)
        total = 0.0
        for update_plan in plans:
            total += update_plan.update_cost
            total += sum(plan.cost
                         for plan in update_plan.support_plans)
        costs[update.label] = _round(weight * total)
    return costs


def _window_entry(result):
    return {
        "label": result.window.label,
        "mix": result.window.mix,
        "requests": _round(result.window.requests),
        "indexes": [_index_entry(index) for index in result.indexes],
        "size_bytes": _round(result.size),
        "serving_cost": _round(result.serving_cost),
        "statement_costs": _statement_costs(result),
        "migration": _migration_entry(result.migration,
                                      result.migration_cost),
    }


def _baseline_entry(baseline):
    # baseline windows repeat the full evaluation; the document keeps
    # the schedule of schemas and the totals, not the per-plan detail
    return {
        "serving_cost": _round(baseline["serving"]),
        "migration_cost": _round(baseline["migration"]),
        "total_cost": _round(baseline["total"]),
        "windows": [
            {"label": result.window.label,
             "indexes": sorted(result.keys),
             "serving_cost": _round(result.serving_cost),
             "migration": _migration_entry(result.migration,
                                           result.migration_cost)}
            for result in baseline["windows"]],
    }


def windows_document(recommendation, meta=None):
    """Assemble the byte-stable windows document.

    ``meta`` carries run facts (source, jobs, seed) — callers must keep
    wall-clock values out of it; the recommendation's ``timing`` is
    deliberately not serialized.
    """
    totals = {
        "serving_cost": _round(recommendation.serving_cost),
        "migration_cost": _round(recommendation.migration_cost),
        "total_cost": _round(recommendation.total_cost),
    }
    return {
        "format": WINDOWS_FORMAT,
        "meta": dict(meta or {}),
        "schedule": [
            {"label": window.label, "mix": window.mix,
             "requests": _round(window.requests)}
            for window in recommendation.schedule],
        "initial": sorted(index.key
                          for index in recommendation.initial),
        "migration_model":
            recommendation.migration_model.cost_terms(),
        "windows": [_window_entry(result)
                    for result in recommendation.windows],
        "totals": totals,
        "baselines": {
            name: _baseline_entry(baseline)
            for name, baseline in
            sorted(recommendation.baselines.items())},
    }
