"""Time-windowed schema advising with costed migrations.

The source paper advises one schema for one weighted workload; real
workloads run in *phases* — RUBiS browsing by day, bidding by night —
and the successor work ("NoSQL Schema Design for Time-Dependent
Workloads") co-optimizes the schema *schedule*: which column families
to hold in each window and which migrations to run between them,
with data movement priced in the same cost units as serving.

This package supplies that layer over the existing pipeline:

* :class:`WindowSchedule` / :class:`WorkloadWindow` — an ordered
  sequence of (mix, request volume) windows over the workload's
  existing mix machinery, strictly validated against known mixes;
* :class:`~repro.windows.bip.WindowedProgram` — the BIP with one
  schema block per window plus migration decision variables priced by
  a :class:`~repro.tools.migration.MigrationCostModel`;
* :func:`recommend_windows` — the entry point: one union prepare
  through the incremental pipeline, static and naive-per-window
  baselines, then the windowed solve (never worse than either);
* :func:`replan_from_monitor` — the drift-monitor bridge: decide
  migrate-or-hold for an observed mix instead of only pricing regret;
* :func:`windows_document` — the byte-stable "nose-windows/1" document
  behind ``nose-advisor windows``.
"""

from repro.windows.advisor import (
    WindowedRecommendation,
    WindowResult,
    recommend_windows,
    replan_from_monitor,
)
from repro.windows.bip import WindowedProgram
from repro.windows.document import WINDOWS_FORMAT, windows_document
from repro.windows.scenario import rubis_drift_scenario
from repro.windows.schedule import (
    WindowSchedule,
    WorkloadWindow,
    parse_window_spec,
)

__all__ = [
    "WINDOWS_FORMAT",
    "WindowSchedule",
    "WindowedProgram",
    "WindowedRecommendation",
    "WindowResult",
    "WorkloadWindow",
    "parse_window_spec",
    "recommend_windows",
    "replan_from_monitor",
    "rubis_drift_scenario",
    "windows_document",
]
