"""Workload window schedules: an ordered sequence of (mix, volume).

A :class:`WorkloadWindow` names one period of operation — which
workload mix is live and how many requests arrive while it is — and a
:class:`WindowSchedule` orders them into the timeline the windowed
advisor optimizes over (a RUBiS day might be ``browsing:800`` followed
by ``bidding:800``).  Windows deliberately carry *request volume*
rather than wall-clock duration: every cost in the advisor is
per-request, so volume is the unit that makes serving cost and
migration cost directly comparable.
"""

from __future__ import annotations

import math

from repro.exceptions import WorkloadError

__all__ = ["WindowSchedule", "WorkloadWindow", "parse_window_spec"]


class WorkloadWindow:
    """One window: a workload mix live for ``requests`` requests."""

    def __init__(self, mix, requests=1.0, label=None):
        if not isinstance(mix, str) or not mix:
            raise WorkloadError(
                f"window mix must be a non-empty string, got {mix!r}")
        try:
            requests = float(requests)
        except (TypeError, ValueError):
            raise WorkloadError(
                f"window request volume must be a number, got "
                f"{requests!r}") from None
        if not math.isfinite(requests) or requests <= 0:
            raise WorkloadError(
                f"window request volume must be positive and finite, "
                f"got {requests!r}")
        self.mix = mix
        self.requests = requests
        self.label = label

    def __repr__(self):
        name = f"{self.label}: " if self.label else ""
        return f"WorkloadWindow({name}{self.mix} x {self.requests:g})"


class WindowSchedule:
    """An ordered, validated sequence of workload windows.

    Accepts :class:`WorkloadWindow` objects, ``(mix, requests)`` pairs
    or bare mix names (volume 1.0).  Windows without labels are named
    positionally (``w0``, ``w1``, ...); labels must be unique since the
    windows document keys per-window sections by them.
    """

    def __init__(self, windows):
        resolved = []
        for position, window in enumerate(windows):
            if isinstance(window, str):
                window = WorkloadWindow(window)
            elif isinstance(window, tuple):
                window = WorkloadWindow(*window)
            elif not isinstance(window, WorkloadWindow):
                raise WorkloadError(
                    f"not a workload window: {window!r}")
            if window.label is None:
                window = WorkloadWindow(window.mix, window.requests,
                                        label=f"w{position}")
            resolved.append(window)
        if not resolved:
            raise WorkloadError("a window schedule needs at least one "
                                "window")
        labels = [window.label for window in resolved]
        if len(set(labels)) != len(labels):
            raise WorkloadError(
                f"window labels must be unique, got {labels}")
        self.windows = tuple(resolved)

    def validate(self, workload):
        """Check every window's mix against the workload's known mixes.

        This is the strict path: a typo'd mix name raises instead of
        silently falling back to default weights (see
        :meth:`repro.workload.Workload.validate_mix`).  Returns self.
        """
        for window in self.windows:
            workload.validate_mix(window.mix)
        return self

    @property
    def total_requests(self):
        return sum(window.requests for window in self.windows)

    def __len__(self):
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    def __getitem__(self, position):
        return self.windows[position]

    def __repr__(self):
        parts = ", ".join(f"{w.mix}:{w.requests:g}" for w in self.windows)
        return f"WindowSchedule({parts})"


def parse_window_spec(spec):
    """Parse a CLI window spec: ``"browsing:800,bidding:800"``.

    Each comma-separated element is ``mix`` or ``mix:requests``.
    """
    windows = []
    for element in spec.split(","):
        element = element.strip()
        if not element:
            continue
        if ":" in element:
            mix, _, requests = element.partition(":")
            windows.append(WorkloadWindow(mix.strip(), requests.strip()))
        else:
            windows.append(WorkloadWindow(element))
    if not windows:
        raise WorkloadError(f"empty window spec {spec!r}")
    return WindowSchedule(windows)
