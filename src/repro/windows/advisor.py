"""Windowed schema advising: one schedule, globally cheapest schemas.

``recommend_windows`` extends the advisor across an ordered window
schedule.  It prepares *once* for the union of every window's active
statements (a single enumeration/planning/costing/pruning pass through
the incremental pipeline), prices two baselines — the best *static*
single schema held across all windows, and *naive per-window*
re-advising with migrations priced after the fact — and then solves
the windowed BIP (:class:`~repro.windows.bip.WindowedProgram`), which
co-optimizes per-window schemas and inter-window migrations and may
therefore land anywhere between the two: holding one schema when
migration outweighs the per-window win, migrating everything when it
is cheap, or migrating only the column families that pay for
themselves.

All three strategies are scored by one evaluator (cheapest feasible
plan per active statement per window, maintenance for held modified
column families, migrations priced by the
:class:`~repro.tools.migration.MigrationCostModel`), so their totals
are directly comparable and the windowed result is never worse than
either baseline beyond solver tolerance.
"""

from __future__ import annotations

import time

from repro import dominance
from repro.advisor import AdvisorTiming
from repro.exceptions import OptimizationError
from repro.optimizer import OptimizationProblem
from repro.planner.plans import UpdatePlan
from repro.tools.migration import MigrationCostModel, plan_migration
from repro.windows.bip import WindowedProgram
from repro.windows.schedule import WindowSchedule

__all__ = ["WindowedRecommendation", "WindowResult", "recommend_windows"]

#: synthetic mix holding each statement's peak weight across the
#: schedule; prepares the union of every window's active statements
UNION_MIX = "__windows_union__"


class WindowResult:
    """One window of a recommended schedule."""

    def __init__(self, window, indexes, serving_cost, migration,
                 migration_cost, query_plans, update_plans, weights):
        self.window = window
        self.indexes = tuple(indexes)
        self.serving_cost = serving_cost
        #: the SchemaMigration entering this window (from the previous
        #: window's schema, or from the initial schema for the first)
        self.migration = migration
        self.migration_cost = migration_cost
        self.query_plans = dict(query_plans)
        self.update_plans = dict(update_plans)
        self.weights = dict(weights)

    @property
    def keys(self):
        return [index.key for index in self.indexes]

    @property
    def size(self):
        return sum(index.size for index in self.indexes)

    def __repr__(self):
        return (f"WindowResult({self.window.label}: "
                f"{len(self.indexes)} column families, "
                f"serving={self.serving_cost:.4f}, "
                f"migration={self.migration_cost:.4f})")


class WindowedRecommendation:
    """A schedule of schemas with costed migrations between them."""

    def __init__(self, schedule, windows, initial, migration_model,
                 baselines, timing=None):
        self.schedule = schedule
        self.windows = list(windows)
        self.initial = tuple(initial)
        self.migration_model = migration_model
        #: {"static": {...}, "naive_per_window": {...}} evaluated by
        #: the same scorer as the windowed schedule
        self.baselines = dict(baselines)
        self.timing = dict(timing or {})

    @property
    def serving_cost(self):
        return sum(window.serving_cost for window in self.windows)

    @property
    def migration_cost(self):
        return sum(window.migration_cost for window in self.windows)

    @property
    def total_cost(self):
        return self.serving_cost + self.migration_cost

    def document(self, meta=None):
        """The byte-stable "nose-windows/1" document."""
        from repro.windows.document import windows_document
        return windows_document(self, meta=meta)

    def describe(self):
        """Human-readable schedule report."""
        from repro.reporting import windows_report
        return windows_report(self.document())

    def __repr__(self):
        return (f"WindowedRecommendation(windows={len(self.windows)}, "
                f"total={self.total_cost:.4f})")


# -- schedule evaluation ------------------------------------------------------


def _cheapest(plans, keys):
    """Cheapest plan feasible within ``keys``; signature breaks ties
    so schedules extract byte-identically across runs and hash seeds."""
    best = None
    best_rank = None
    for plan in plans:
        if any(index.key not in keys for index in plan.indexes):
            continue
        rank = (plan.cost, dominance._signature(plan))
        if best is None or rank < best_rank:
            best, best_rank = plan, rank
    return best


def _evaluate_window(query_plans, update_plans, weights, keys, label):
    """Score one window's schema: serving cost plus chosen plans."""
    serving = 0.0
    chosen_queries = {}
    for query, plans in query_plans.items():
        weight = weights.get(query.label, 0.0)
        if weight <= 0.0:
            continue
        best = _cheapest(plans, keys)
        if best is None:
            raise OptimizationError(
                f"window {label!r}: no feasible plan for "
                f"{query.label!r} within its schema")
        chosen_queries[query] = best
        serving += weight * best.cost
    chosen_updates = {}
    for update, plans in update_plans.items():
        weight = weights.get(update.label, 0.0)
        if weight <= 0.0:
            continue
        kept = []
        for update_plan in plans:
            if update_plan.index.key not in keys:
                continue
            supports = []
            grouped = update_plan.support_plans_by_query
            for support, support_plans in grouped.items():
                best = _cheapest(support_plans, keys)
                if best is None:
                    raise OptimizationError(
                        f"window {label!r}: no feasible support plan "
                        f"for {update.label!r} maintaining "
                        f"{update_plan.index.key}")
                supports.append(best)
                serving += weight * best.cost
            serving += weight * update_plan.update_cost
            kept.append(UpdatePlan(update, update_plan.index, supports,
                                   update_plan.steps))
        if kept:
            chosen_updates[update] = kept
    return serving, chosen_queries, chosen_updates


def _used_keys(chosen_queries, chosen_updates):
    """Column families some chosen plan actually reads (fixpoint over
    support plans, mirroring the single-window extraction)."""
    used = set()
    for plan in chosen_queries.values():
        used.update(index.key for index in plan.indexes)
    by_target = {}
    for plans in chosen_updates.values():
        for update_plan in plans:
            by_target.setdefault(update_plan.index.key,
                                 []).append(update_plan)
    frontier = set(used)
    while frontier:
        next_frontier = set()
        for key in frontier:
            for update_plan in by_target.get(key, ()):
                for plan in update_plan.support_plans:
                    for index in plan.indexes:
                        if index.key not in used:
                            next_frontier.add(index.key)
        used |= next_frontier
        frontier = next_frontier
    return used


def _trim_schedule(key_sets, used_sets):
    """Drop selected-but-never-read column families, per run.

    The solver may hold a column family in windows where nothing reads
    it (holding is free without a space limit, so such selections are
    cost ties).  For determinism each maximal run of consecutive
    selections is trimmed to the span between its first and last *used*
    window — runs with no use vanish entirely.  Trimming a run never
    adds a migration (each surviving run still starts with the one
    creation it already paid) and only removes maintenance, so the
    trimmed schedule costs no more than the solver's.
    """
    count = len(key_sets)
    all_keys = set().union(*key_sets) if key_sets else set()
    trimmed = [set() for _ in range(count)]
    for key in sorted(all_keys):
        window = 0
        while window < count:
            if key not in key_sets[window]:
                window += 1
                continue
            start = window
            while window < count and key in key_sets[window]:
                window += 1
            used = [position for position in range(start, window)
                    if key in used_sets[position]]
            if used:
                for position in range(used[0], used[-1] + 1):
                    trimmed[position].add(key)
    return trimmed


def _evaluate_schedule(query_plans, update_plans, window_weights,
                       schedule, key_sets, index_by_key,
                       migration_model, initial):
    """Score a full schedule; returns (windows, serving, migration)."""
    results = []
    serving_total = 0.0
    migration_total = 0.0
    previous = list(initial)
    for window, weights, keys in zip(schedule, window_weights,
                                     key_sets):
        serving, chosen_queries, chosen_updates = _evaluate_window(
            query_plans, update_plans, weights, keys, window.label)
        current = [index_by_key[key] for key in sorted(keys)]
        migration = plan_migration(previous, current)
        migration_cost = migration_model.migration_cost(migration)
        results.append(WindowResult(
            window, current, serving, migration, migration_cost,
            chosen_queries, chosen_updates, weights))
        serving_total += serving
        migration_total += migration_cost
        previous = current
    return results, serving_total, migration_total


# -- the windowed advisor entry point ----------------------------------------


def _union_view(workload, schedule):
    """A workload view whose active mix holds each statement's peak
    weight across the schedule — statements idle in every window drop
    out of preparation entirely."""
    union = workload.clone()
    for label in union.statements:
        peak = max(workload.weight(label, mix=window.mix)
                   for window in schedule)
        union.set_weight(label, peak, mix=UNION_MIX)
    return union.with_mix(UNION_MIX)


def _window_weight_rows(workload, schedule):
    """One ``{label: absolute weight}`` row per window.

    Mix names are validated strictly — the windowed path is exactly
    where a typo'd mix silently reusing default weights would corrupt
    a whole schedule.
    """
    rows = []
    for window in schedule:
        workload.validate_mix(window.mix)
        rows.append({label: (workload.weight(label, mix=window.mix)
                             * window.requests)
                     for label in workload.statements})
    return rows


def _initial_indexes(initial):
    if initial is None:
        return ()
    if hasattr(initial, "indexes"):
        return tuple(initial.indexes)
    return tuple(initial)


def _baseline_entry(windows, serving, migration):
    return {"windows": windows, "serving": serving,
            "migration": migration, "total": serving + migration}


def recommend_windows(advisor, workload, schedule, initial=None,
                      migration_model=None, space_limit=None,
                      jobs=None, mip_rel_gap=1e-4, time_limit=120.0):
    """Recommend a schema *schedule* for an ordered set of windows.

    ``schedule`` is a :class:`~repro.windows.WindowSchedule` (or
    anything its constructor accepts); each window names a known mix of
    ``workload`` and a request volume.  ``initial`` optionally passes
    the already-materialized schema (a recommendation or iterable of
    column families) — creating anything beyond it is charged by
    ``migration_model`` (default :class:`MigrationCostModel`).

    Returns a :class:`WindowedRecommendation` whose ``baselines`` carry
    the static single-schema and naive per-window strategies evaluated
    by the same scorer; the windowed total never exceeds either beyond
    solver tolerance, since both are feasible points of the windowed
    program.
    """
    if not isinstance(schedule, WindowSchedule):
        schedule = WindowSchedule(schedule)
    schedule.validate(workload)
    migration_model = migration_model or MigrationCostModel()
    initial = _initial_indexes(initial)
    timing = {}

    started = time.perf_counter()
    union = _union_view(workload, schedule)
    prepared = advisor.prepare(union, jobs=jobs)
    stage_timing = AdvisorTiming()
    advisor._cost_prepared(prepared, stage_timing, jobs=jobs)
    advisor._prune_prepared(prepared, stage_timing, jobs=jobs)
    query_plans = prepared._pruned_query_plans
    update_plans = prepared._pruned_update_plans
    window_weights = _window_weight_rows(workload, schedule)
    aggregate = {}
    for row in window_weights:
        for label, weight in row.items():
            aggregate[label] = aggregate.get(label, 0.0) + weight
    union_problem = OptimizationProblem(query_plans, update_plans,
                                        aggregate,
                                        space_limit=space_limit)
    index_by_key = {index.key: index
                    for index in union_problem.indexes}
    for index in initial:
        index_by_key.setdefault(index.key, index)
    timing["prepare"] = time.perf_counter() - started

    # -- static baseline: one schema, chosen for the aggregate mix
    started = time.perf_counter()
    static_rec = advisor.recommend_prepared(prepared, weights=aggregate,
                                            space_limit=space_limit,
                                            jobs=jobs)
    static_keys = {index.key for index in static_rec.indexes}
    static_windows, static_serving, static_migration = \
        _evaluate_schedule(query_plans, update_plans, window_weights,
                           schedule, [static_keys] * len(schedule),
                           index_by_key, migration_model, initial)
    timing["static"] = time.perf_counter() - started

    # -- naive baseline: re-advise each window, price migrations after
    started = time.perf_counter()
    warmable = getattr(advisor.optimizer, "supports_warm_start", False)
    naive_keys = []
    previous = initial if initial else None
    for weights in window_weights:
        active_queries = {
            query: plans for query, plans in query_plans.items()
            if weights.get(query.label, 0.0) > 0.0}
        active_updates = {
            update: plans for update, plans in update_plans.items()
            if weights.get(update.label, 0.0) > 0.0}
        problem = OptimizationProblem(active_queries, active_updates,
                                      weights, space_limit=space_limit)
        if warmable and previous is not None:
            window_rec = advisor.optimizer.solve(problem,
                                                 warm_start=previous)
        else:
            window_rec = advisor.optimizer.solve(problem)
        naive_keys.append({index.key for index in window_rec.indexes})
        previous = window_rec
    naive_windows, naive_serving, naive_migration = \
        _evaluate_schedule(query_plans, update_plans, window_weights,
                           schedule, naive_keys, index_by_key,
                           migration_model, initial)
    timing["naive"] = time.perf_counter() - started

    # -- the windowed program: schemas and migrations co-optimized
    started = time.perf_counter()
    program = WindowedProgram(query_plans, update_plans, window_weights,
                              union_problem.indexes, migration_model,
                              initial=(index.key for index in initial),
                              space_limit=space_limit)
    incumbent = min(static_serving + static_migration,
                    naive_serving + naive_migration)
    key_sets = program.solve(mip_rel_gap=mip_rel_gap,
                             time_limit=time_limit,
                             incumbent=incumbent)
    # trim cost-tie selections nothing reads, then re-score: the final
    # totals come from the shared evaluator, not the solver objective
    used_sets = []
    for weights, keys in zip(window_weights, key_sets):
        _serving, chosen_queries, chosen_updates = _evaluate_window(
            query_plans, update_plans, weights, keys, "windowed")
        used_sets.append(_used_keys(chosen_queries, chosen_updates))
    trimmed = _trim_schedule(key_sets, used_sets)
    windows, _serving, _migration = _evaluate_schedule(
        query_plans, update_plans, window_weights, schedule, trimmed,
        index_by_key, migration_model, initial)
    timing["windowed_solve"] = time.perf_counter() - started

    baselines = {
        "static": _baseline_entry(static_windows, static_serving,
                                  static_migration),
        "naive_per_window": _baseline_entry(naive_windows, naive_serving,
                                            naive_migration),
    }
    timing["cost_calculation"] = stage_timing.cost_calculation
    timing["pruning"] = stage_timing.pruning
    return WindowedRecommendation(schedule, windows, initial,
                                  migration_model, baselines,
                                  timing=timing)


def replan_from_monitor(advisor, workload, recommendation, observed,
                        requests=1000.0, migration_model=None,
                        space_limit=None, jobs=None):
    """Hand a drift monitor's observed mix to the windowed advisor.

    Where :func:`repro.monitor.estimate_regret` only *prices* standing
    still, this decides: it runs a one-window schedule under the
    observed weights with the standing ``recommendation`` as the
    initial schema, so the answer weighs the migration cost of moving
    against ``requests`` worth of serving the observed mix on the old
    schema.  ``observed`` is a ``{label: weight}`` mapping or anything
    with ``observed_weights()`` (a ``WorkloadMonitor``).  Returns a
    :class:`WindowedRecommendation`; its single window either holds the
    old schema (migration not worth it yet) or names the column
    families to create and drop.
    """
    if hasattr(observed, "observed_weights"):
        observed = observed.observed_weights()
    total = sum(weight for weight in observed.values() if weight > 0)
    if total <= 0.0:
        raise OptimizationError(
            "cannot replan from an empty observation")
    live = workload.clone()
    for label in live.statements:
        weight = max(observed.get(label, 0.0), 0.0) / total
        live.set_weight(label, weight, mix="observed")
    schedule = WindowSchedule([("observed", requests)])
    return recommend_windows(advisor, live, schedule,
                             initial=recommendation,
                             migration_model=migration_model,
                             space_limit=space_limit, jobs=jobs)
