"""The windowed schema-selection BIP with migration decision variables.

Extends the per-plan formulation of :mod:`repro.optimizer.bip` across a
window schedule: one full schema-selection block per window (selection
variables ``d[w,j]``, choose-one plan rows, aggregated link rows,
support gates) plus one migration variable ``m[t,j]`` per transition
and candidate, constrained by

    d[t,j] - d[t-1,j] - m[t,j] <= 0

(``d[-1,j]`` is 1 exactly when candidate ``j`` is part of the initial
schema), so ``m[t,j]`` is forced to 1 whenever window ``t`` materializes
a column family its predecessor did not hold.  Migration variables are
priced by a :class:`~repro.tools.migration.MigrationCostModel` — the
same rows/bytes estimate :func:`~repro.tools.migration.plan_migration`
reports — which makes "hold the schema" and "migrate between windows"
directly comparable inside one objective.  Dropping a column family is
free, as in the executor.

As in the single-window program, only the selection variables need
integrality: for any fixed 0/1 selection the plan optimum is attained
at pure plans, and the migration variables sit at the integral lower
bound ``max(0, d[t,j] - d[t-1,j])`` because their objective
coefficients are non-negative.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro import telemetry
from repro.exceptions import OptimizationError

__all__ = ["WindowedProgram"]


class WindowedProgram:
    """A materialized windowed BIP over shared (costed) plan spaces.

    ``query_plans`` and ``update_plans`` are the union plan spaces (every
    statement active in *any* window); ``window_weights`` is one
    ``{label: absolute weight}`` row per window — a statement's mix
    weight times the window's request volume, zero when it is idle —
    and gates which blocks each window actually builds.  ``indexes``
    fixes the candidate order (all plan columns refer into it), and
    ``initial`` lists the column-family keys already materialized
    before the first window (creation of anything else is charged).
    """

    def __init__(self, query_plans, update_plans, window_weights,
                 indexes, migration_model, initial=(),
                 space_limit=None):
        self.query_plans = dict(query_plans)
        self.update_plans = dict(update_plans)
        self.window_weights = [dict(row) for row in window_weights]
        self.indexes = list(indexes)
        self.migration_model = migration_model
        self.initial_keys = frozenset(initial)
        self.space_limit = space_limit
        self.windows = len(self.window_weights)
        if not self.windows:
            raise OptimizationError("windowed program needs at least "
                                    "one window")
        self._column_of = {index.key: j
                           for j, index in enumerate(self.indexes)}
        self._entries = []
        self._lower = []
        self._upper = []
        # layout: W*J selection binaries, then W*J migration variables,
        # then per-window plan/support columns (all continuous)
        blocks = self.windows * len(self.indexes)
        self.costs = [0.0] * (2 * blocks)
        self.columns = 2 * blocks
        self.objective_value = None
        self._build()

    # -- column helpers ---------------------------------------------------

    def _d(self, window, j):
        return window * len(self.indexes) + j

    def _m(self, transition, j):
        return (self.windows * len(self.indexes)
                + transition * len(self.indexes) + j)

    def _new_row(self, lower, upper):
        self._lower.append(lower)
        self._upper.append(upper)
        return len(self._lower) - 1

    def _new_column(self, cost):
        self.costs.append(cost)
        column = self.columns
        self.columns += 1
        return column

    # -- construction -----------------------------------------------------

    def _build(self):
        for j, index in enumerate(self.indexes):
            creation = self.migration_model.index_cost(index)
            for transition in range(self.windows):
                self.costs[self._m(transition, j)] = creation
        for window, weights in enumerate(self.window_weights):
            self._build_window(window, weights)
        self._build_migrations()
        if self.space_limit is not None:
            for window in range(self.windows):
                row = self._new_row(-np.inf, float(self.space_limit))
                for j, index in enumerate(self.indexes):
                    self._entries.append(
                        (row, self._d(window, j), index.size))

    def _build_window(self, window, weights):
        for query, plans in self.query_plans.items():
            weight = weights.get(query.label, 0.0)
            if weight <= 0.0:
                continue
            choose_one = self._new_row(1.0, 1.0)
            links = {}
            for plan in plans:
                column = self._new_column(weight * plan.cost)
                self._entries.append((choose_one, column, 1.0))
                self._link_plan(window, column, plan, links)
        for update, update_plans in self.update_plans.items():
            weight = weights.get(update.label, 0.0)
            if weight <= 0.0:
                continue
            for update_plan in update_plans:
                selection = self._d(
                    window, self._column_of[update_plan.index.key])
                self.costs[selection] += weight * update_plan.update_cost
                grouped = update_plan.support_plans_by_query
                for _support, plans in grouped.items():
                    # one support plan iff this window holds the column
                    # family the update maintains
                    gate = self._new_row(0.0, 0.0)
                    self._entries.append((gate, selection, -1.0))
                    links = {}
                    for plan in plans:
                        column = self._new_column(weight * plan.cost)
                        self._entries.append((gate, column, 1.0))
                        self._link_plan(window, column, plan, links)

    def _link_plan(self, window, column, plan, links):
        """Plan usable only when this window holds every column family
        it touches — aggregated per (statement, window, column family)
        exactly like the single-window program."""
        for index in plan.indexes:
            row = links.get(index.key)
            if row is None:
                row = self._new_row(-np.inf, 0.0)
                links[index.key] = row
                self._entries.append(
                    (row, self._d(window, self._column_of[index.key]),
                     -1.0))
            self._entries.append((row, column, 1.0))

    def _build_migrations(self):
        for transition in range(self.windows):
            for j, index in enumerate(self.indexes):
                if transition == 0:
                    held = index.key in self.initial_keys
                    row = self._new_row(-np.inf, 1.0 if held else 0.0)
                else:
                    row = self._new_row(-np.inf, 0.0)
                    self._entries.append(
                        (row, self._d(transition - 1, j), -1.0))
                self._entries.append((row, self._d(transition, j), 1.0))
                self._entries.append((row, self._m(transition, j), -1.0))

    # -- solving ----------------------------------------------------------

    def _constraint(self, incumbent=None):
        entries = list(self._entries)
        lower = list(self._lower)
        upper = list(self._upper)
        if incumbent is not None:
            # incumbent-bound cut: scipy's milp has no MIP-start, so a
            # known feasible schedule bounds the objective from above
            row = len(lower)
            entries.extend((row, column, value)
                           for column, value in enumerate(self.costs)
                           if value != 0.0)
            lower.append(-np.inf)
            upper.append(incumbent)
        matrix = csr_matrix(
            ([value for _, _, value in entries],
             ([row for row, _, _ in entries],
              [column for _, column, _ in entries])),
            shape=(len(lower), self.columns))
        return LinearConstraint(matrix, np.asarray(lower, dtype=float),
                                np.asarray(upper, dtype=float))

    def solve(self, mip_rel_gap=1e-4, time_limit=120.0, incumbent=None):
        """Solve for the cheapest schedule; returns per-window key sets.

        ``incumbent`` optionally passes a known feasible schedule cost
        (e.g. the better of the static and naive baselines) as an upper
        bound — every baseline schedule is a feasible point of this
        program with the same objective value, so the bound never cuts
        off an optimum.
        """
        binaries = self.windows * len(self.indexes)
        integrality = np.zeros(self.columns)
        integrality[:binaries] = 1
        if incumbent is not None:
            incumbent = incumbent + 1e-7 * (1.0 + abs(incumbent))
        result = milp(
            c=np.asarray(self.costs),
            constraints=[self._constraint(incumbent=incumbent)],
            integrality=integrality,
            bounds=Bounds(0, 1),
            options={"mip_rel_gap": mip_rel_gap,
                     "time_limit": time_limit},
        )
        acceptable = result.success or (result.status == 1
                                        and result.x is not None)
        if not acceptable:
            raise OptimizationError(
                f"windowed BIP solve failed: {result.message}")
        self.objective_value = float(
            np.asarray(self.costs) @ result.x)
        active = telemetry.current()
        if active.enabled:
            active.gauge("windows.bip_columns", self.columns)
            active.gauge("windows.bip_binary_columns", binaries)
            active.gauge("windows.bip_rows", len(self._lower))
            active.gauge("windows.bip_objective", self.objective_value)
        key_sets = []
        for window in range(self.windows):
            keys = {index.key for j, index in enumerate(self.indexes)
                    if result.x[self._d(window, j)] > 0.5}
            key_sets.append(keys)
        return key_sets
