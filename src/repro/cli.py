"""Command-line interface for the schema advisor.

Usage::

    nose-advisor --demo hotel
    nose-advisor --demo rubis --mix bidding --space-limit 50000000
    nose-advisor --model my_model.py --timing
    nose-advisor --demo rubis --explain --output-json base.json
    nose-advisor diff base.json tuned.json --fail-on-regression 10
    nose-advisor verify --seed 0
    nose-advisor verify --demo rubis --mix bidding --output-json report.json
    nose-advisor verify --fuzz 5 --seed 42
    nose-advisor profile --demo hotel --requests 400
    nose-advisor profile --demo rubis --mix bidding --output-json profile.json
    nose-advisor monitor --demo drift --output-json monitor.json
    nose-advisor monitor --trace-in trace.json --model my_model.py
    nose-advisor monitor --demo drift --replan-requests 5000
    nose-advisor windows --demo rubis-drift --output-json windows.json
    nose-advisor windows --model app.py --windows "quiet:800,busy:1200"

With ``--model``, the given Python file must define ``build()``
returning a ``(model, workload)`` pair; this mirrors how the original
prototype loaded workload definition files.  The ``diff`` subcommand
compares two recommendation documents written by ``--output-json`` and
exits nonzero when the total cost regresses past the given threshold.
The ``verify`` subcommand runs the differential execution oracle: it
executes a recommendation through the in-memory engine and a reference
interpreter side by side and exits with status 2 on any divergence.
The ``profile`` subcommand replays a recommendation with the execution
flight recorder attached and reports how well predicted costs track
measured latencies (see :mod:`repro.profile`).
The ``monitor`` subcommand watches live (or recorded) traffic drift
away from the advised workload and prices the regret of keeping the
old schema (see :mod:`repro.monitor`); it exits with status 3 when
drift was detected.  With ``--replan-requests`` it hands the observed
mix to the windowed advisor, which decides migrate-or-hold instead of
only pricing regret.
The ``windows`` subcommand advises a schema *schedule* for an ordered
sequence of workload windows, co-optimizing per-window schemas with
costed migrations between them (see :mod:`repro.windows`); it exits
with status 2 if the windowed schedule is ever worse than the static
or naive-per-window baselines — an internal-consistency guarantee CI
relies on.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import sys

from repro import telemetry
from repro.advisor import Advisor
from repro.cost import CassandraCostModel, SimpleCostModel
from repro.exceptions import NoseError


def _load_demo(name, mix):
    if name == "hotel":
        from repro.demo import hotel_model, hotel_workload
        model = hotel_model()
        return model, hotel_workload(model)
    if name == "rubis":
        from repro.rubis import rubis_model, rubis_workload
        model = rubis_model()
        return model, rubis_workload(model, mix=mix or "bidding")
    raise NoseError(f"unknown demo {name!r}; available: hotel, rubis")


def _load_module(path, mix):
    spec = importlib.util.spec_from_file_location("nose_workload", path)
    if spec is None or spec.loader is None:
        raise NoseError(f"cannot load workload module {path!r}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except NoseError:
        raise
    except Exception as error:
        # a broken user module must not escape as a raw traceback
        raise NoseError(
            f"workload module {path!r} failed to import: "
            f"{type(error).__name__}: {error}") from error
    if not hasattr(module, "build"):
        raise NoseError(
            f"workload module {path!r} must define build() -> "
            "(model, workload)")
    try:
        model, workload = module.build()
    except NoseError:
        raise
    except Exception as error:
        raise NoseError(
            f"workload module {path!r} build() failed: "
            f"{type(error).__name__}: {error}") from error
    if mix:
        workload = workload.with_mix(mix)
    return model, workload


def build_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor",
        description="NoSE: recommend a NoSQL schema for a workload")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--demo", choices=["hotel", "rubis"],
                        help="use a bundled demo model and workload")
    source.add_argument("--model", metavar="FILE",
                        help="Python file defining build() -> "
                             "(model, workload)")
    source.add_argument("--json", metavar="FILE", dest="json_file",
                        help="JSON application document (see repro.io)")
    parser.add_argument("--mix", help="workload mix to optimize for")
    parser.add_argument("--space-limit", type=float, default=None,
                        metavar="BYTES",
                        help="storage budget for the recommended schema")
    parser.add_argument("--cost-model", choices=["cassandra", "simple"],
                        default="cassandra")
    parser.add_argument("--max-plans", type=int, default=500,
                        help="cap on enumerated plans per statement")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker threads for per-statement planning "
                             "and costing (default: serial)")
    parser.add_argument("--repeat-tuning", type=int, default=0,
                        metavar="N",
                        help="after the first recommendation, re-solve N "
                             "more times with write weights scaled 2x "
                             "per epoch, reusing the prepared pipeline; "
                             "prints a per-epoch timing table")
    parser.add_argument("--warm-start", action="store_true",
                        dest="warm_start",
                        help="seed each --repeat-tuning epoch's solve "
                             "with the previous recommendation as an "
                             "incumbent bound (faster; may pick a "
                             "different equal-cost optimum)")
    parser.add_argument("--timing", action="store_true",
                        help="print the advisor stage timing breakdown")
    parser.add_argument("--trace", action="store_true",
                        help="record a telemetry trace and print the "
                             "span tree and metric summary "
                             "(NOSE_TELEMETRY=0 disables)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        dest="metrics_out",
                        help="write the telemetry run report as JSON")
    parser.add_argument("--cql", action="store_true",
                        help="also print CREATE TABLE DDL for the schema")
    parser.add_argument("--explain", action="store_true",
                        help="annotate the recommendation with candidate "
                             "provenance, per-step cost terms and the "
                             "solver's chosen-vs-rejected accounting")
    parser.add_argument("--output-json", metavar="FILE",
                        help="write the recommendation as an explain "
                             "JSON document (diffable with "
                             "'nose-advisor diff')")
    return parser


def build_diff_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor diff",
        description="Compare two recommendation JSON documents "
                    "(written by --output-json)")
    parser.add_argument("base", help="baseline recommendation JSON")
    parser.add_argument("other", help="candidate recommendation JSON")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="PCT",
                        help="exit with status 2 if the candidate's "
                             "total cost exceeds the baseline by more "
                             "than PCT percent")
    return parser


def run_diff(argv):
    arguments = build_diff_parser().parse_args(argv)
    from repro.explain import diff_recommendations
    from repro.io import load_explain
    from repro.reporting import diff_report
    try:
        base = load_explain(arguments.base)
        other = load_explain(arguments.other)
        diff = diff_recommendations(base, other)
    except (NoseError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(diff_report(diff))
    threshold = arguments.fail_on_regression
    if threshold is not None:
        total = diff["total_cost"]
        pct = total["regression_pct"]
        # a regression from a zero-cost baseline has no percentage;
        # any cost increase then counts as exceeding the threshold
        exceeded = (pct > threshold if pct is not None
                    else total["delta"] > 0)
        if exceeded:
            shown = f"{pct:.2f}%" if pct is not None else "from zero"
            print(f"error: total cost regression {shown} exceeds "
                  f"--fail-on-regression {threshold:g}%",
                  file=sys.stderr)
            return 2
    return 0


def build_verify_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor verify",
        description="Differentially verify recommended plans: execute "
                    "them through the in-memory engine and a reference "
                    "interpreter side by side and compare answers. "
                    "Exits 2 on divergence, 1 on error.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--demo", choices=["hotel", "rubis"],
                        help="verify one bundled demo (default: both "
                             "hotel and rubis bidding)")
    source.add_argument("--model", metavar="FILE",
                        help="Python file defining build() -> "
                             "(model, workload)")
    source.add_argument("--json", metavar="FILE", dest="json_file",
                        help="JSON application document (see repro.io)")
    source.add_argument("--fuzz", type=int, metavar="TRIALS",
                        help="instead of a fixed application, run "
                             "TRIALS random model/workload/dataset "
                             "trials through the oracle")
    parser.add_argument("--mix", help="workload mix to verify under")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for datasets, parameter bindings "
                             "and request order (default 0)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="replay passes over the workload's "
                             "statements (default 3)")
    parser.add_argument("--protocols", default="nose,expert",
                        help="comma-separated update protocols to "
                             "check (default nose,expert)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="demo dataset scale factor (default 0.01)")
    parser.add_argument("--max-plans", type=int, default=100,
                        help="cap on enumerated plans per statement")
    parser.add_argument("--entities", type=int, default=5,
                        help="entity sets per random model "
                             "(--fuzz only)")
    parser.add_argument("--extended", action="store_true",
                        help="draw extended statement-language "
                             "constructs — GROUP BY aggregation, "
                             "IN-lists, != and OR — into the fuzzed "
                             "workloads (--fuzz only)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking divergences to minimal "
                             "reproducers")
    parser.add_argument("--output-json", metavar="FILE",
                        help="write the verification report as JSON")
    return parser


def _verify_demo(name, arguments, protocols):
    """Run the oracle over one bundled demo; returns a report dict."""
    from repro.verify import verify_recommendation
    requests_factory = None
    if name == "hotel":
        from repro.demo import hotel_model, hotel_workload
        from repro.demo.hotel import hotel_dataset
        model = hotel_model(scale=arguments.scale)
        workload = hotel_workload(model, include_updates=True)
        dataset = hotel_dataset(model, seed=arguments.seed)
    else:
        from repro.rubis import rubis_model, rubis_workload
        from repro.rubis.datagen import (
            RubisParameterGenerator,
            generate_dataset,
        )
        from repro.rubis.transactions import transaction_weights
        mix = arguments.mix or "bidding"
        users = max(int(20_000 * arguments.scale), 100)
        model = rubis_model(users=users)
        workload = rubis_workload(model, mix=mix)
        dataset = generate_dataset(model, seed=arguments.seed + 7)
        transactions = sorted(transaction_weights(mix))

        def requests_factory(live, seed):
            # draw realistic per-transaction parameters from the live
            # data, the way the benchmark harness issues them
            generator = RubisParameterGenerator(live, seed=seed + 11)
            out = []
            for name in transactions:
                for _ in range(max(arguments.rounds - 1, 1)):
                    for label, params in generator.requests_for(name):
                        out.append((workload.statements[label], params))
            return out

    dataset.sync_counts()
    recommendation = Advisor(model, max_plans=arguments.max_plans) \
        .recommend(workload)
    return verify_recommendation(
        model, workload, recommendation, dataset, seed=arguments.seed,
        rounds=arguments.rounds, protocols=protocols,
        requests_factory=requests_factory,
        shrink=not arguments.no_shrink)


def _verify_application(model, workload, arguments, protocols):
    """Run the oracle over a user-supplied application."""
    from repro.randgen import random_dataset
    from repro.verify import verify_recommendation
    dataset = random_dataset(model, seed=arguments.seed)
    dataset.sync_counts()
    recommendation = Advisor(model, max_plans=arguments.max_plans) \
        .recommend(workload)
    return verify_recommendation(
        model, workload, recommendation, dataset, seed=arguments.seed,
        rounds=arguments.rounds, protocols=protocols,
        shrink=not arguments.no_shrink)


def run_verify(argv):
    arguments = build_verify_parser().parse_args(argv)
    from repro.reporting import verify_report
    protocols = tuple(p for p in arguments.protocols.split(",") if p)
    try:
        if arguments.fuzz is not None:
            from repro.verify import fuzz_workloads
            trials = fuzz_workloads(
                trials=arguments.fuzz, seed=arguments.seed,
                entities=arguments.entities, protocols=protocols,
                max_plans=arguments.max_plans,
                shrink=not arguments.no_shrink,
                extended=arguments.extended)
            reports = {"fuzz": {
                "seed": arguments.seed,
                "extended": arguments.extended,
                "trials": [trial.as_dict() for trial in trials],
                "ok": all(trial.ok for trial in trials),
            }}
        elif arguments.model or arguments.json_file:
            if arguments.json_file:
                from repro.io import load_application
                model, workload = load_application(arguments.json_file)
                if arguments.mix:
                    workload = workload.with_mix(arguments.mix)
            else:
                model, workload = _load_module(arguments.model,
                                               arguments.mix)
            name = arguments.json_file or arguments.model
            reports = {name: _verify_application(
                model, workload, arguments, protocols)}
        else:
            targets = [arguments.demo] if arguments.demo \
                else ["hotel", "rubis"]
            reports = {name: _verify_demo(name, arguments, protocols)
                       for name in targets}
    except NoseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    ok = all(report["ok"] for report in reports.values())
    for name, report in reports.items():
        print(f"== {name} ==")
        print(verify_report(report))
        print()
    if arguments.output_json:
        import json
        document = {"seed": arguments.seed, "ok": ok,
                    "targets": reports}
        with open(arguments.output_json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
        print(f"verification report written to "
              f"{arguments.output_json}")
    if not ok:
        print("error: differential verification found divergences",
              file=sys.stderr)
        return 2
    return 0


def build_profile_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor profile",
        description="Replay a recommendation through the in-memory "
                    "execution engine with a flight recorder attached "
                    "and report measured-vs-predicted cost accuracy "
                    "(a nose-profile/1 document).")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--demo", choices=["hotel", "rubis"],
                        default="hotel",
                        help="profile a bundled demo (default: hotel)")
    source.add_argument("--model", metavar="FILE",
                        help="Python file defining build() -> "
                             "(model, workload)")
    source.add_argument("--json", metavar="FILE", dest="json_file",
                        help="JSON application document (see repro.io)")
    parser.add_argument("--mix", help="workload mix to profile under")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for datasets and parameter bindings "
                             "(default 0)")
    parser.add_argument("--requests", type=int, default=200,
                        help="statements to replay, apportioned by "
                             "workload weight (default 200)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="demo dataset scale factor (default 0.02)")
    parser.add_argument("--protocol", choices=["nose", "expert"],
                        default="nose",
                        help="update maintenance protocol to replay "
                             "under (default nose)")
    parser.add_argument("--max-plans", type=int, default=200,
                        help="cap on enumerated plans per statement")
    parser.add_argument("--output-json", metavar="FILE",
                        help="write the nose-profile/1 accuracy report "
                             "as JSON")
    return parser


def _profile_demo(name, arguments):
    """Build (model, workload, dataset, requests_factory) for a demo."""
    requests_factory = None
    if name == "hotel":
        from repro.demo import hotel_model, hotel_workload
        from repro.demo.hotel import hotel_dataset
        model = hotel_model(scale=arguments.scale)
        workload = hotel_workload(model, include_updates=True)
        dataset = hotel_dataset(model, seed=arguments.seed)
    else:
        from repro.rubis import rubis_model, rubis_workload
        from repro.rubis.datagen import (
            RubisParameterGenerator,
            generate_dataset,
        )
        from repro.rubis.transactions import (
            TRANSACTIONS,
            transaction_weights,
        )
        mix = arguments.mix or "bidding"
        users = max(int(20_000 * arguments.scale), 100)
        model = rubis_model(users=users)
        workload = rubis_workload(model, mix=mix)
        dataset = generate_dataset(model, seed=arguments.seed + 7)
        weights = transaction_weights(mix)

        def requests_factory(count, seed):
            # a transaction schedule proportional to the mix, replayed
            # with coherent per-transaction parameters drawn from the
            # live data — the way the benchmark harness issues requests
            generator = RubisParameterGenerator(dataset, seed=seed + 11)
            schedule = []
            for transaction in sorted(weights):
                repeats = max(1, round(count * weights[transaction]
                                       / len(TRANSACTIONS[transaction])))
                schedule.append((transaction, repeats))
            out = []
            remaining = dict(schedule)
            while remaining:
                for transaction, _repeats in schedule:
                    left = remaining.get(transaction)
                    if left is None:
                        continue
                    out.extend(generator.requests_for(transaction))
                    if left <= 1:
                        del remaining[transaction]
                    else:
                        remaining[transaction] = left - 1
            return out
    return model, workload, dataset, requests_factory


def run_profile(argv):
    arguments = build_profile_parser().parse_args(argv)
    from repro.profile import profile_recommendation
    from repro.reporting import profile_report
    try:
        if arguments.model or arguments.json_file:
            if arguments.json_file:
                from repro.io import load_application
                model, workload = load_application(arguments.json_file)
                if arguments.mix:
                    workload = workload.with_mix(arguments.mix)
            else:
                model, workload = _load_module(arguments.model,
                                               arguments.mix)
            from repro.randgen import random_dataset
            dataset = random_dataset(model, seed=arguments.seed)
            requests_factory = None
            source = arguments.json_file or arguments.model
        else:
            source = arguments.demo
            model, workload, dataset, requests_factory = \
                _profile_demo(arguments.demo, arguments)
        dataset.sync_counts()
        recommendation = Advisor(model, max_plans=arguments.max_plans) \
            .recommend(workload)
        document, _recorder = profile_recommendation(
            model, workload, recommendation, dataset,
            seed=arguments.seed, requests=arguments.requests,
            protocol=arguments.protocol,
            requests_factory=requests_factory,
            meta={"source": source, "mix": workload.active_mix})
    except NoseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(profile_report(document))
    if arguments.output_json:
        from repro.io import dump_profile
        dump_profile(document, arguments.output_json)
        print(f"\nprofile written to {arguments.output_json}")
    return 0


def build_monitor_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor monitor",
        description="Watch a workload drift away from the one the "
                    "schema was advised for: ingest executed "
                    "statements into decayed weight estimates, detect "
                    "weight/structural drift against the advised mix, "
                    "and price the regret of standing still (a "
                    "nose-monitor/1 document).  Exits 3 when drift "
                    "was detected.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--demo", choices=["drift"],
                        help="run the bundled RUBiS browsing->bidding "
                             "drift scenario")
    source.add_argument("--trace-in", metavar="FILE",
                        help="replay a recorded statement trace (JSON "
                             "list of {label, time?, count?} events) "
                             "against the advised workload")
    parser.add_argument("--model", metavar="FILE",
                        help="Python file defining build() -> "
                             "(model, workload) — the advised workload "
                             "a trace is compared against")
    parser.add_argument("--json", metavar="FILE", dest="json_file",
                        help="JSON application document (see repro.io)")
    parser.add_argument("--mix", help="advised workload mix")
    parser.add_argument("--half-life", type=float, default=None,
                        metavar="REQUESTS",
                        help="decay half-life in requests (default: 60 "
                             "for the demo, 100 for traces)")
    parser.add_argument("--weight-threshold", type=float, default=0.1,
                        help="Jensen-Shannon divergence that raises "
                             "the weight-drift alert (default 0.1)")
    parser.add_argument("--structural-threshold", type=int, default=1,
                        help="added+removed digest count that raises "
                             "the structural alert (default 1)")
    parser.add_argument("--checkpoint-every", type=int, default=20,
                        help="drift check cadence in requests "
                             "(default 20)")
    parser.add_argument("--requests", type=int, default=400,
                        help="demo replay length (default 400)")
    parser.add_argument("--seed", type=int, default=0,
                        help="demo dataset/binding seed (default 0)")
    parser.add_argument("--users", type=int, default=2000,
                        help="demo dataset scale in users "
                             "(default 2000)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers for the regret "
                             "re-advise")
    parser.add_argument("--trace", action="store_true",
                        help="print the telemetry run report (monitor "
                             "gauges + alert events) after the run")
    parser.add_argument("--output-json", metavar="FILE",
                        help="write the nose-monitor/1 document as "
                             "byte-stable JSON")
    parser.add_argument("--replan-requests", type=float, default=None,
                        metavar="N",
                        help="hand the observed mix to the windowed "
                             "advisor: decide whether migrating away "
                             "from the advised schema pays off over "
                             "the next N requests")
    parser.add_argument("--replan-out", metavar="FILE",
                        help="write the replan decision as a "
                             "nose-windows/1 document")
    return parser


def _monitor_trace(arguments, capture=None):
    """Replay a trace file; returns the monitor document.

    A ``capture`` dict, when given, is filled with the live objects
    (advisor, workload, recommendation, monitor) the replan bridge
    needs after the document is assembled.
    """
    import json as json_module

    from repro.monitor import (
        DriftDetector,
        WorkloadMonitor,
        estimate_regret,
        monitor_document,
    )
    if arguments.json_file:
        from repro.io import load_application
        model, workload = load_application(arguments.json_file)
        if arguments.mix:
            workload = workload.with_mix(arguments.mix)
        source = arguments.json_file
    elif arguments.model:
        model, workload = _load_module(arguments.model, arguments.mix)
        source = arguments.model
    else:
        raise NoseError(
            "--trace-in needs the advised workload: pass --model or "
            "--json")
    with open(arguments.trace_in) as handle:
        trace = json_module.load(handle)
    events = trace.get("events", trace) if isinstance(trace, dict) \
        else trace
    if not isinstance(events, list):
        raise NoseError(
            f"{arguments.trace_in} is not a trace: expected a JSON "
            "list of events or {'events': [...]}")
    monitor = WorkloadMonitor(
        workload, half_life=arguments.half_life or 100.0)
    detector = DriftDetector(
        monitor, weight_threshold=arguments.weight_threshold,
        structural_threshold=arguments.structural_threshold)
    cadence = max(arguments.checkpoint_every, 1)
    try:
        for start in range(0, len(events), cadence):
            monitor.replay_trace(events[start:start + cadence])
            detector.check()
        if len(events) % cadence or not events:
            detector.check()
    except ValueError as error:
        raise NoseError(str(error)) from error
    advisor = Advisor(model)
    recommendation = advisor.recommend(workload)
    regret = estimate_regret(advisor, workload, recommendation,
                             monitor, jobs=arguments.jobs)
    if capture is not None:
        capture.update(advisor=advisor, workload=workload,
                       recommendation=recommendation, monitor=monitor)
    meta = {"source": source, "trace": arguments.trace_in,
            "advised_mix": workload.active_mix,
            "events": len(events)}
    return monitor_document(monitor, detector, regret=regret, meta=meta)


def run_monitor(argv):
    arguments = build_monitor_parser().parse_args(argv)
    from repro.reporting import monitor_report
    try:
        if not arguments.demo and not arguments.trace_in:
            raise NoseError("pass --demo drift or --trace-in FILE")
        if arguments.replan_out and arguments.replan_requests is None:
            raise NoseError("--replan-out requires --replan-requests")
        if arguments.trace:
            scope = telemetry.activate()
        else:
            scope = contextlib.nullcontext(None)
        replanning = arguments.replan_requests is not None
        capture = {} if replanning else None
        replan = None
        with scope as sink:
            if arguments.trace_in:
                document = _monitor_trace(arguments, capture=capture)
            else:
                from repro.monitor import drift_demo
                document = drift_demo(
                    half_life=arguments.half_life or 60.0,
                    requests=arguments.requests,
                    checkpoint_every=arguments.checkpoint_every,
                    weight_threshold=arguments.weight_threshold,
                    structural_threshold=arguments.structural_threshold,
                    seed=arguments.seed, jobs=arguments.jobs,
                    users=arguments.users, capture=capture)
            if replanning:
                from repro.windows import replan_from_monitor
                replan = replan_from_monitor(
                    capture["advisor"], capture["workload"],
                    capture["recommendation"], capture["monitor"],
                    requests=arguments.replan_requests,
                    jobs=arguments.jobs)
    except NoseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(monitor_report(document))
    if replan is not None:
        print()
        print(replan.describe())
        if arguments.replan_out:
            from repro.io import dump_windows
            from repro.windows import windows_document
            replan_doc = windows_document(replan, meta={
                "source": "monitor-replan",
                "advised_mix": document["meta"].get("advised_mix")})
            dump_windows(replan_doc, arguments.replan_out)
            print(f"\nreplan decision written to {arguments.replan_out}")
    if arguments.trace and sink is not None and sink.enabled:
        print()
        print(sink.report(meta={"command": "monitor"}).render())
    if arguments.output_json:
        from repro.io import dump_monitor
        dump_monitor(document, arguments.output_json)
        print(f"\nmonitor document written to {arguments.output_json}")
    drift = document.get("drift", {})
    if drift.get("weight_alert") or drift.get("structural_alert"):
        print("\ndrift detected: the observed workload has moved away "
              "from the advised mix", file=sys.stderr)
        return 3
    return 0


def build_windows_parser():
    parser = argparse.ArgumentParser(
        prog="nose-advisor windows",
        description="Advise a schema *schedule* for an ordered "
                    "sequence of workload windows: one BIP chooses the "
                    "column families to hold in each window and the "
                    "migrations to run between windows, with data "
                    "movement priced in the same cost units as serving "
                    "(a nose-windows/1 document).  Exits 2 if the "
                    "windowed schedule costs more than the static or "
                    "naive-per-window baselines.")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--demo", choices=["rubis-drift"],
                        help="run the bundled RUBiS browsing->bidding->"
                             "browsing drift schedule")
    source.add_argument("--model", metavar="FILE",
                        help="Python file defining build() -> "
                             "(model, workload)")
    source.add_argument("--json", metavar="FILE", dest="json_file",
                        help="JSON application document (see repro.io)")
    parser.add_argument("--windows", metavar="SPEC",
                        help="comma-separated mix:requests windows, "
                             "e.g. 'browsing:800,bidding:1200' "
                             "(required with --model/--json; overrides "
                             "the demo schedule)")
    parser.add_argument("--load-rate", type=float, default=0.15,
                        metavar="COST",
                        help="migration cost per row loaded into a new "
                             "column family (default 0.15, the "
                             "Cassandra cost model's put cost)")
    parser.add_argument("--byte-rate", type=float, default=0.0,
                        metavar="COST",
                        help="additional migration cost per byte "
                             "loaded (default 0)")
    parser.add_argument("--users", type=int, default=2000,
                        help="demo dataset scale in users "
                             "(default 2000)")
    parser.add_argument("--space-limit", type=float, default=None,
                        metavar="BYTES",
                        help="per-window storage budget for each "
                             "held schema")
    parser.add_argument("--max-plans", type=int, default=500,
                        help="cap on enumerated plans per statement")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker threads for per-statement "
                             "planning and costing (default: serial)")
    parser.add_argument("--mip-gap", type=float, default=1e-4,
                        help="relative MIP gap for the windowed solve "
                             "(default 1e-4)")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        metavar="SECONDS",
                        help="solver time limit (default 120)")
    parser.add_argument("--timing", action="store_true",
                        help="print the windowed stage timing "
                             "breakdown")
    parser.add_argument("--output-json", metavar="FILE",
                        help="write the nose-windows/1 document as "
                             "byte-stable JSON")
    return parser


def run_windows(argv):
    arguments = build_windows_parser().parse_args(argv)
    from repro.reporting import windows_report
    from repro.tools.migration import MigrationCostModel
    from repro.windows import (
        parse_window_spec,
        recommend_windows,
        windows_document,
    )
    try:
        migration_model = MigrationCostModel(
            row_cost=arguments.load_rate, byte_cost=arguments.byte_rate)
        if arguments.demo:
            from repro.windows import rubis_drift_scenario
            model, workload, schedule, _default = rubis_drift_scenario(
                users=arguments.users)
            source = "rubis-drift"
            meta = {"source": source, "users": arguments.users}
        else:
            if not arguments.windows:
                raise NoseError(
                    "pass --windows 'mix:requests,...' with "
                    "--model/--json")
            if arguments.json_file:
                from repro.io import load_application
                model, workload = load_application(arguments.json_file)
            else:
                model, workload = _load_module(arguments.model, None)
            source = arguments.json_file or arguments.model
            meta = {"source": source}
        if arguments.windows:
            schedule = parse_window_spec(arguments.windows)
        advisor = Advisor(model, max_plans=arguments.max_plans,
                          jobs=arguments.jobs)
        recommendation = recommend_windows(
            advisor, workload, schedule,
            migration_model=migration_model,
            space_limit=arguments.space_limit, jobs=arguments.jobs,
            mip_rel_gap=arguments.mip_gap,
            time_limit=arguments.time_limit)
        document = windows_document(recommendation, meta=meta)
    except NoseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(windows_report(document))
    if arguments.timing:
        print()
        print("Stage timing (seconds):")
        for stage, seconds in recommendation.timing.items():
            print(f"  {stage:<18} {seconds:.3f}")
    if arguments.output_json:
        from repro.io import dump_windows
        dump_windows(document, arguments.output_json)
        print(f"\nwindows document written to {arguments.output_json}")
    windowed = document["totals"]["total_cost"]
    best = min(entry["total_cost"]
               for entry in document["baselines"].values())
    # both baselines are feasible points of the windowed program, so
    # beyond solver tolerance this inequality cannot fail; CI leans on
    # it as an end-to-end consistency check
    if windowed > best * (1.0 + 1e-6) + 1e-6:
        print(f"error: windowed schedule ({windowed:.3f}) costs more "
              f"than the best baseline ({best:.3f})", file=sys.stderr)
        return 2
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        return run_diff(argv[1:])
    if argv and argv[0] == "verify":
        return run_verify(argv[1:])
    if argv and argv[0] == "profile":
        return run_profile(argv[1:])
    if argv and argv[0] == "monitor":
        return run_monitor(argv[1:])
    if argv and argv[0] == "windows":
        return run_windows(argv[1:])
    parser = build_parser()
    arguments = parser.parse_args(argv)
    report = None
    try:
        if arguments.demo:
            model, workload = _load_demo(arguments.demo, arguments.mix)
        elif arguments.json_file:
            from repro.io import load_application
            model, workload = load_application(arguments.json_file)
            if arguments.mix:
                workload = workload.with_mix(arguments.mix)
        else:
            model, workload = _load_module(arguments.model, arguments.mix)
        cost_model = CassandraCostModel() \
            if arguments.cost_model == "cassandra" else SimpleCostModel()
        advisor = Advisor(model, cost_model=cost_model,
                          max_plans=arguments.max_plans,
                          jobs=arguments.jobs)
        if arguments.trace or arguments.metrics_out:
            scope = telemetry.activate()
        else:
            scope = contextlib.nullcontext(None)
        with scope as sink:
            recommendation = advisor.recommend(
                workload, space_limit=arguments.space_limit)
            tuning_rows = None
            if arguments.repeat_tuning:
                tuning_rows = {"cold": recommendation.timing}
                previous = recommendation
                for epoch in range(1, arguments.repeat_tuning + 1):
                    factor = 2.0 ** epoch
                    tuned = workload.scale_weights(factor)
                    epoch_rec = advisor.recommend(
                        tuned, space_limit=arguments.space_limit,
                        warm_start=previous if arguments.warm_start
                        else None)
                    tuning_rows[f"writes x{factor:g}"] = epoch_rec.timing
                    previous = epoch_rec
            if sink is not None:
                report = sink.report()
    except NoseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(recommendation.describe())
    if arguments.explain:
        print()
        print(recommendation.explain())
    if arguments.cql:
        print()
        print(recommendation.as_cql())
    if arguments.output_json:
        from repro.io import dump_explain
        dump_explain(recommendation, arguments.output_json)
        print(f"\nrecommendation written to {arguments.output_json}")
    if arguments.timing:
        print()
        print("Stage timing (seconds):")
        for stage, seconds in \
                recommendation.timing.as_figure13_row().items():
            print(f"  {stage:<18} {seconds:.3f}")
        timing = recommendation.timing
        print(f"  delta: {timing.reused_statements} statement(s) "
              f"served from the artifact store, "
              f"{timing.replanned_statements} re-planned")
    if tuning_rows:
        from repro.reporting import timing_table
        print()
        print("Repeated tuning (write weights scaled per epoch; warm "
              "epochs reuse the prepared pipeline):")
        print(timing_table(tuning_rows))
    if arguments.trace and report is not None:
        print()
        if report.meta.get("enabled"):
            print(report.render())
        else:
            print("telemetry disabled (NOSE_TELEMETRY=0); no trace "
                  "recorded")
    if arguments.metrics_out and report is not None:
        if report.meta.get("enabled"):
            from repro.io import dump_run_report
            dump_run_report(report, arguments.metrics_out)
            print(f"\ntelemetry report written to "
                  f"{arguments.metrics_out}")
        else:
            print(f"\ntelemetry disabled (NOSE_TELEMETRY=0); not "
                  f"writing {arguments.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
