"""Tracing, metrics and run reports for the advisor pipeline.

The paper's Fig 13 decomposes advisor runtime into coarse stages; this
module looks *inside* a stage: which query blew up the enumeration
space, how plan counts shrank through each dominance rule, where solver
time went.  Three pieces, no external dependencies:

* a **span tracer** — nested wall-clock intervals (monotonic clocks)
  built with a context manager or the :func:`traced` decorator.  Span
  stacks are per-thread, and :meth:`Tracer.adopt` seeds a worker
  thread's stack with the caller's span so work fanned out through
  ``repro.parallel`` nests under the stage that spawned it;
* a **metrics registry** — named counters, gauges and fixed-boundary
  histograms, all guarded by one lock (updates happen at per-statement
  frequency, never per plan step);
* a **run report** — spans and metrics aggregated into one JSON-able
  document with stable key order (diffable across runs) and an ASCII
  rendering through :mod:`repro.reporting`.

Telemetry is off by default: the module-level *active* sink is a
:class:`NullTelemetry` whose every operation is a no-op, so the
instrumentation hooks compiled into the pipeline cost one global read
and an attribute check when nothing is listening.  :func:`activate`
installs a real :class:`Telemetry` for the duration of a ``with``
block; setting ``NOSE_TELEMETRY=0`` in the environment is a kill-switch
that keeps the null sink installed even through :func:`activate`.
Instrumented code reads the active sink via :func:`current` and, in
anything resembling a loop, guards metric emission with
``if telemetry.enabled:`` — the overhead policy (< 3% of advisor
runtime with telemetry disabled) is enforced by
``benchmarks/test_telemetry_overhead.py``.
"""

from __future__ import annotations

import bisect
import functools
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "COUNT_BUCKETS",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "NULL",
    "NullTelemetry",
    "RUN_REPORT_FORMAT",
    "RunReport",
    "Span",
    "TIME_BUCKETS",
    "Telemetry",
    "Tracer",
    "activate",
    "current",
    "env_enabled",
    "span_from_record",
    "traced",
]

#: environment variable that force-disables telemetry when set to "0"
KILL_SWITCH = "NOSE_TELEMETRY"

#: document version tag stamped into serialized run reports
RUN_REPORT_FORMAT = "nose-run-report/1"

#: default boundaries for histograms over counts (plans, candidates)
COUNT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: default boundaries for histograms over durations in seconds
TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                60.0)

#: default boundaries for histograms over simulated request latency in
#: milliseconds (the execution engine's per-statement service times)
LATENCY_BUCKETS_MS = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
                      100.0, 200.0, 500.0, 1000.0)


def env_enabled():
    """False when the ``NOSE_TELEMETRY=0`` kill-switch is set."""
    return os.environ.get(KILL_SWITCH, "") != "0"


# -- spans -------------------------------------------------------------------


class Span:
    """One named wall-clock interval with nested children.

    Times come from ``time.perf_counter`` (monotonic); ``started_at``
    additionally records the wall-clock (``time.time``) start so traces
    can be correlated with external logs.  ``children`` may have been
    recorded on other threads (see :meth:`Tracer.adopt`) and can
    therefore overlap each other, so ``self_seconds`` clamps at zero
    rather than going negative when concurrent children sum past the
    parent's wall time.
    """

    __slots__ = ("name", "attributes", "children", "started", "ended",
                 "started_at")

    def __init__(self, name, attributes=None):
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.children = []
        self.started = None
        self.ended = None
        #: wall-clock (epoch seconds) start, None until the span opens
        self.started_at = None

    @property
    def total_seconds(self):
        if self.started is None:
            return 0.0
        ended = self.ended if self.ended is not None \
            else time.perf_counter()
        return max(ended - self.started, 0.0)

    @property
    def self_seconds(self):
        """Total time minus child time (clamped for concurrent children)."""
        child_seconds = sum(child.total_seconds
                            for child in self.children)
        return max(self.total_seconds - child_seconds, 0.0)

    def set(self, **attributes):
        """Attach key/value annotations (JSON-able values only)."""
        self.attributes.update(attributes)

    def as_dict(self):
        """Serializable record with stable key order."""
        record = {
            "name": self.name,
            "total_seconds": round(self.total_seconds, 6),
            "self_seconds": round(self.self_seconds, 6),
        }
        if self.started_at is not None:
            record["started_at"] = round(self.started_at, 3)
        if self.attributes:
            record["attributes"] = {key: self.attributes[key]
                                    for key in sorted(self.attributes)}
        if self.children:
            record["children"] = [child.as_dict()
                                  for child in self.children]
        return record

    def __repr__(self):
        return (f"Span({self.name!r}, {self.total_seconds:.6f}s, "
                f"children={len(self.children)})")


class Tracer:
    """Thread-safe span tracer with per-thread span stacks.

    Every thread sees the same root span; a thread's stack starts at
    the root, so spans opened on a fresh thread attach there unless the
    thread was seeded with :meth:`adopt` (as ``repro.parallel`` does,
    attaching worker-side spans under the caller's current span).
    """

    def __init__(self, name="run"):
        self.root = Span(name)
        self.root.started = time.perf_counter()
        self.root.started_at = time.time()
        #: spans started over the tracer's lifetime (root excluded)
        self.span_count = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [self.root]
        return stack

    def current_span(self):
        """The innermost open span on the calling thread."""
        return self._stack()[-1]

    @contextmanager
    def span(self, name, **attributes):
        """Open a child span of the calling thread's current span."""
        stack = self._stack()
        span = Span(name, attributes)
        with self._lock:
            stack[-1].children.append(span)
            self.span_count += 1
        stack.append(span)
        span.started = time.perf_counter()
        span.started_at = time.time()
        try:
            yield span
        finally:
            span.ended = time.perf_counter()
            stack.pop()

    @contextmanager
    def adopt(self, span):
        """Parent the calling thread's spans under ``span``.

        Used to carry the caller's span across a thread-pool boundary:
        the worker enters ``adopt(parent)`` and everything it records
        nests where the fan-out happened.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def finish(self):
        """Close the root span (idempotent)."""
        if self.root.ended is None:
            self.root.ended = time.perf_counter()


def span_from_record(record):
    """Rebuild a :class:`Span` tree from its ``as_dict`` record.

    Durations are preserved (``started`` is rebased to zero), absolute
    timestamps are not — the rebuilt span only makes sense grafted into
    another tracer's tree, which is exactly what cross-process
    telemetry does with worker-side spans.
    """
    span = Span(record["name"], record.get("attributes"))
    span.started = 0.0
    span.ended = record.get("total_seconds", 0.0)
    span.started_at = record.get("started_at")
    span.children = [span_from_record(child)
                     for child in record.get("children", ())]
    return span


def _span_tree_size(records):
    return sum(1 + _span_tree_size(record.get("children", ()))
               for record in records)


# -- metrics -----------------------------------------------------------------


class Histogram:
    """Fixed-boundary histogram: ``counts[i]`` holds observations with
    ``value <= boundaries[i]``; the last bin is the overflow."""

    __slots__ = ("boundaries", "counts", "count", "total", "minimum",
                 "maximum")

    def __init__(self, boundaries=COUNT_BUCKETS):
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def observe(self, value):
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def quantile(self, q):
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Linear interpolation within the bucket holding the target rank:
        the bucket's observations are assumed uniformly spread between
        its lower and upper boundary.  The first bucket's lower edge and
        the overflow bucket's upper edge are the observed minimum and
        maximum, so single-bucket histograms still interpolate sensibly.
        Returns ``None`` when nothing was observed.
        """
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for position, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if position == 0:
                    lower = self.minimum
                else:
                    lower = self.boundaries[position - 1]
                if position < len(self.boundaries):
                    upper = self.boundaries[position]
                else:
                    upper = self.maximum
                lower = max(lower, self.minimum)
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return lower
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.maximum

    def merge_dict(self, record):
        """Fold a serialized histogram (``as_dict`` shape) into this one.

        The parent-side half of cross-process telemetry: worker
        processes ship their histograms back as documents and the
        parent accumulates them here.  Boundaries must match.
        """
        if tuple(record["boundaries"]) != self.boundaries:
            raise ValueError(
                f"histogram boundaries differ: {self.boundaries} vs "
                f"{tuple(record['boundaries'])}")
        self.counts = [mine + theirs for mine, theirs
                       in zip(self.counts, record["counts"])]
        self.count += record["count"]
        self.total += record["sum"]
        for name, pick in (("min", min), ("max", max)):
            value = record.get(name)
            if value is None:
                continue
            mine = self.minimum if name == "min" else self.maximum
            merged = value if mine is None else pick(mine, value)
            if name == "min":
                self.minimum = merged
            else:
                self.maximum = merged

    def as_dict(self):
        def rounded(value):
            return None if value is None else round(value, 6)

        return {
            "boundaries": list(self.boundaries),
            "count": self.count,
            "counts": list(self.counts),
            "max": self.maximum,
            "min": self.minimum,
            "p50": rounded(self.quantile(0.50)),
            "p95": rounded(self.quantile(0.95)),
            "p99": rounded(self.quantile(0.99)),
            "sum": round(self.total, 6),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        #: update operations served (the overhead guard's op budget)
        self.ops = 0

    def count(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount
            self.ops += 1

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value
            self.ops += 1

    def observe(self, name, value, buckets=None):
        """Record ``value`` into histogram ``name``.

        ``buckets`` fixes the boundaries on first use; later calls
        reuse the existing histogram regardless.
        """
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(
                    buckets if buckets is not None else COUNT_BUCKETS)
            histogram.observe(value)
            self.ops += 1

    def merge(self, snapshot):
        """Fold a serialized registry snapshot (``as_dict`` shape) in.

        Counters and histogram buckets accumulate; gauges keep
        last-write-wins semantics (the merged snapshot counts as the
        later write).  Used to recover metrics recorded inside
        ``repro.parallel`` process workers, whose forked registries
        never share memory with the parent.
        """
        with self._lock:
            for name, amount in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + amount
            for name, value in snapshot.get("gauges", {}).items():
                self.gauges[name] = value
            for name, record in snapshot.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram(
                        record["boundaries"])
                histogram.merge_dict(record)
            self.ops += 1

    def as_dict(self):
        """Serializable snapshot, every section sorted by name."""
        with self._lock:
            return {
                "counters": {name: self.counters[name]
                             for name in sorted(self.counters)},
                "gauges": {name: self.gauges[name]
                           for name in sorted(self.gauges)},
                "histograms": {name: self.histograms[name].as_dict()
                               for name in sorted(self.histograms)},
            }


# -- the telemetry facade ----------------------------------------------------


class Telemetry:
    """A tracer and a metrics registry behind one handle.

    Instrumented code calls :func:`current` for the active handle and
    uses these methods; :class:`NullTelemetry` mirrors the interface
    with no-ops so callers never branch on presence (only, optionally,
    on ``enabled`` to skip building metric arguments in loops).
    """

    enabled = True

    #: cap on the append-only event log; older events are dropped with
    #: a final "telemetry.events_dropped" marker so reports stay honest
    MAX_EVENTS = 10000

    def __init__(self, name="run"):
        self.tracer = Tracer(name)
        self.metrics = MetricsRegistry()
        self.events = []
        self._events_dropped = 0
        self._events_lock = threading.Lock()

    # tracing
    def span(self, name, **attributes):
        return self.tracer.span(name, **attributes)

    def adopt(self, span):
        return self.tracer.adopt(span)

    def current_span(self):
        return self.tracer.current_span()

    # metrics
    def count(self, name, amount=1):
        self.metrics.count(name, amount)

    def gauge(self, name, value):
        self.metrics.gauge(name, value)

    def observe(self, name, value, buckets=None):
        self.metrics.observe(name, value, buckets)

    # events
    def event(self, name, **attributes):
        """Append one named event to the run's event log.

        Events are point-in-time markers (alerts, phase changes) as
        opposed to intervals (spans) or aggregates (metrics).  Each
        record carries seconds since the run started (monotonic) plus a
        wall-clock timestamp, and any JSON-able attributes.  The log is
        capped at :attr:`MAX_EVENTS`; overflow increments a drop
        counter surfaced in the run report rather than silently
        growing without bound.
        """
        record = {
            "name": name,
            "seconds": round(
                time.perf_counter() - self.tracer.root.started, 6),
            "time": round(time.time(), 3),
        }
        if attributes:
            record["attributes"] = {key: attributes[key]
                                    for key in sorted(attributes)}
        with self._events_lock:
            if len(self.events) >= self.MAX_EVENTS:
                self._events_dropped += 1
            else:
                self.events.append(record)

    def merge_snapshot(self, snapshot):
        """Merge a worker process's serialized telemetry into this sink.

        ``snapshot`` is ``{"metrics": registry.as_dict(), "spans":
        [span.as_dict(), ...]}`` as assembled by
        :mod:`repro.parallel`'s chunk runner.  Metrics accumulate into
        the registry; spans are grafted (durations only) under the
        calling thread's current span, so worker-side work nests where
        the fan-out happened — the same place :meth:`adopt` would have
        put it for a thread worker.
        """
        self.metrics.merge(snapshot.get("metrics", {}))
        events = snapshot.get("events", ())
        if events:
            with self._events_lock:
                room = self.MAX_EVENTS - len(self.events)
                self.events.extend(events[:room])
                self._events_dropped += max(len(events) - room, 0)
        spans = snapshot.get("spans", ())
        if spans:
            parent = self.tracer.current_span()
            rebuilt = [span_from_record(record) for record in spans]
            with self.tracer._lock:
                parent.children.extend(rebuilt)
                self.tracer.span_count += _span_tree_size(spans)

    def report(self, meta=None):
        """Aggregate spans + metrics into a :class:`RunReport`.

        Closes the root span, so the report's total is frozen; spans
        recorded afterwards still land in the tree but the reported
        total no longer moves.
        """
        self.tracer.finish()
        return RunReport.from_telemetry(self, meta=meta)


class _NullContext:
    """Reusable no-op context manager (yields ``None``)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class NullTelemetry:
    """The disabled sink: every operation is a no-op.

    Installed by default and whenever the ``NOSE_TELEMETRY=0``
    kill-switch is set, so instrumentation in the pipeline costs one
    method call with no allocation, no lock, no clock read.
    """

    enabled = False

    def span(self, name, **attributes):
        return _NULL_CONTEXT

    def adopt(self, span):
        return _NULL_CONTEXT

    def current_span(self):
        return None

    def count(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value, buckets=None):
        pass

    def event(self, name, **attributes):
        pass

    def merge_snapshot(self, snapshot):
        pass

    def report(self, meta=None):
        meta_record = {"enabled": False}
        meta_record.update(meta or {})
        return RunReport((), {}, meta=meta_record)


#: the process-wide disabled sink
NULL = NullTelemetry()

_active = NULL
_active_lock = threading.Lock()


def current():
    """The active telemetry sink (a :class:`NullTelemetry` when none)."""
    return _active


@contextmanager
def activate(telemetry=None):
    """Install ``telemetry`` (default: a fresh :class:`Telemetry`) as
    the active sink for the duration of the ``with`` block.

    The sink is process-wide, not thread-local, so worker threads
    spawned inside the block report into it.  When the
    ``NOSE_TELEMETRY=0`` kill-switch is set the null sink stays
    installed and the yielded handle is disabled — callers can check
    ``handle.enabled`` to tell.
    """
    global _active
    if telemetry is None:
        telemetry = Telemetry()
    installed = telemetry if env_enabled() else NULL
    with _active_lock:
        previous = _active
        _active = installed
    try:
        yield installed
    finally:
        with _active_lock:
            _active = previous


def traced(name=None):
    """Decorator: run the function under a span on the active sink.

    ``name`` defaults to the function's qualified name.  With telemetry
    disabled the wrapper adds a global read and one branch.
    """
    def decorate(function):
        label = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            telemetry = _active
            if not telemetry.enabled:
                return function(*args, **kwargs)
            with telemetry.span(label):
                return function(*args, **kwargs)
        return wrapper
    return decorate


# -- run reports -------------------------------------------------------------


class RunReport:
    """Spans + metrics for one run, as one diffable JSON document.

    ``spans`` is a list of serialized span records (the root's
    children, in execution order); ``metrics`` is the registry snapshot
    (sections and names sorted); ``meta`` carries run-level facts
    (total seconds, whether telemetry was enabled).  Key order is
    deterministic everywhere so two reports diff cleanly.  Round-trips
    through :func:`repro.io.serialize.dump_run_report` /
    ``load_run_report``.
    """

    def __init__(self, spans, metrics, meta=None, events=None):
        self.spans = list(spans)
        self.metrics = dict(metrics)
        self.meta = dict(meta or {})
        self.events = list(events or ())

    @classmethod
    def from_telemetry(cls, telemetry, meta=None):
        root = telemetry.tracer.root
        meta_record = {
            "enabled": True,
            "span_count": telemetry.tracer.span_count,
            "total_seconds": round(root.total_seconds, 6),
        }
        if telemetry._events_dropped:
            meta_record["events_dropped"] = telemetry._events_dropped
        meta_record.update(meta or {})
        return cls([child.as_dict() for child in root.children],
                   telemetry.metrics.as_dict(), meta=meta_record,
                   events=list(telemetry.events))

    @classmethod
    def from_dict(cls, document):
        """Rebuild a report from :meth:`as_dict` output."""
        return cls(document.get("spans", ()),
                   document.get("metrics", {}),
                   meta=document.get("meta", {}),
                   events=document.get("events", ()))

    def as_dict(self):
        record = {
            "format": RUN_REPORT_FORMAT,
            "meta": {key: self.meta[key] for key in sorted(self.meta)},
            "spans": self.spans,
            "metrics": self.metrics,
        }
        if self.events:
            record["events"] = self.events
        return record

    def stage_totals(self):
        """Wall seconds summed per span name across the whole tree.

        Span names in the advisor match the :class:`AdvisorTiming`
        buckets, so this is the bridge for checking that the trace and
        the coarse timing agree.
        """
        totals = {}

        def walk(records):
            for record in records:
                totals[record["name"]] = (totals.get(record["name"], 0.0)
                                          + record["total_seconds"])
                walk(record.get("children", ()))

        walk(self.spans)
        return totals

    def render(self, top=5):
        """ASCII rendering (span tree + metric summary)."""
        from repro.reporting import render_run_report
        return render_run_report(self, top=top)

    def __repr__(self):
        return (f"RunReport(spans={len(self.spans)}, "
                f"counters={len(self.metrics.get('counters', ()))}, "
                f"enabled={self.meta.get('enabled')})")
