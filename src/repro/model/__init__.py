"""Conceptual data model: entities, attributes, relationships, paths.

NoSE operates on an *entity graph* (a restricted entity-relationship
model, §III-A of the paper): boxes are entity sets with typed attributes,
edges are relationships with one-to-one / one-to-many / many-to-many
cardinality.  Relationships are represented as pairs of foreign-key
fields, one on each side, so that paths through the graph can be walked
and reversed in either direction.
"""

from repro.model.entity import Entity
from repro.model.fields import (
    BooleanField,
    DateField,
    Field,
    FloatField,
    ForeignKeyField,
    IDField,
    IntegerField,
    StringField,
)
from repro.model.graph import Model
from repro.model.paths import KeyPath

__all__ = [
    "BooleanField",
    "DateField",
    "Entity",
    "Field",
    "FloatField",
    "ForeignKeyField",
    "IDField",
    "IntegerField",
    "KeyPath",
    "Model",
    "StringField",
]
