"""The entity graph: the conceptual model NoSE designs schemas for."""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.model.entity import Entity
from repro.model.fields import ForeignKeyField
from repro.model.paths import KeyPath

#: multiplicities of the forward/reverse foreign keys per relationship kind
_RELATIONSHIP_KINDS = {
    "one_to_one": ("one", "one"),
    "one_to_many": ("many", "one"),
    "many_to_one": ("one", "many"),
    "many_to_many": ("many", "many"),
}


class Model:
    """A named collection of entities connected by relationships.

    This is the first input to the schema advisor (Fig 2 of the paper).
    Entities are added with :meth:`add_entity`, relationships with
    :meth:`add_relationship`, which creates a foreign key in each
    direction so that paths can be traversed and reversed freely.

    >>> model = Model("hotel")
    >>> hotel = model.add_entity(Entity("Hotel", count=100))
    """

    def __init__(self, name="model"):
        self.name = name
        self.entities = {}

    # -- construction -----------------------------------------------------

    def add_entity(self, entity):
        """Register an entity; names must be unique within the model."""
        if not isinstance(entity, Entity):
            raise ModelError(f"not an entity: {entity!r}")
        if entity.name in self.entities:
            raise ModelError(f"duplicate entity {entity.name!r}")
        self.entities[entity.name] = entity
        return entity

    def add_relationship(self, source, forward_name, target, reverse_name,
                         kind="one_to_many", forward_fanout=None,
                         reverse_fanout=None, forward_total=True,
                         reverse_total=True):
        """Connect two entities with a named, reversible relationship.

        ``kind`` reads source-to-target: ``one_to_many`` means one source
        row relates to many target rows (e.g. one Hotel has many Rooms via
        ``model.add_relationship("Hotel", "Rooms", "Room", "Hotel")``).
        ``forward_fanout`` / ``reverse_fanout`` override the default
        average-fanout estimates, which is necessary for many-to-many
        relationships where entity-count ratios under-estimate the number
        of connections.  ``forward_total`` / ``reverse_total`` declare
        mandatory participation per direction (every source row has at
        least one target); set them to False when rows may legitimately
        lack the relationship, which restricts the planner's larger-
        column-family rewrites to stay sound on such data.

        Returns the forward :class:`ForeignKeyField`.
        """
        if kind not in _RELATIONSHIP_KINDS:
            raise ModelError(f"unknown relationship kind {kind!r}")
        forward_rel, reverse_rel = _RELATIONSHIP_KINDS[kind]
        source_entity = self.entity(source)
        target_entity = self.entity(target)
        if forward_fanout is not None and reverse_fanout is not None:
            # both directions must describe the same number of
            # connections, or join-cardinality estimates will depend on
            # the traversal direction
            forward_links = source_entity.count * forward_fanout
            reverse_links = target_entity.count * reverse_fanout
            if abs(forward_links - reverse_links) \
                    > 1e-6 * max(forward_links, reverse_links, 1.0):
                raise ModelError(
                    f"inconsistent fanouts for {source_entity.name}-"
                    f"{target_entity.name}: {forward_links:.0f} vs "
                    f"{reverse_links:.0f} connections")
        forward = ForeignKeyField(forward_name, target_entity,
                                  relationship=forward_rel,
                                  avg_fanout=forward_fanout,
                                  total=forward_total)
        reverse = ForeignKeyField(reverse_name, source_entity,
                                  relationship=reverse_rel,
                                  avg_fanout=reverse_fanout,
                                  total=reverse_total)
        forward.reverse = reverse
        reverse.reverse = forward
        source_entity.add_field(forward)
        target_entity.add_field(reverse)
        return forward

    # -- access -----------------------------------------------------------

    def entity(self, name):
        """Look up an entity, accepting an :class:`Entity` pass-through."""
        if isinstance(name, Entity):
            if self.entities.get(name.name) is not name:
                raise ModelError(
                    f"entity {name.name!r} does not belong to model "
                    f"{self.name!r}")
            return name
        try:
            return self.entities[name]
        except KeyError:
            raise ModelError(f"unknown entity {name!r}") from None

    def __getitem__(self, name):
        return self.entity(name)

    def __contains__(self, name):
        return name in self.entities

    def field(self, entity_name, field_name):
        """Convenience lookup of ``Entity.field``."""
        return self.entity(entity_name)[field_name]

    # -- paths ------------------------------------------------------------

    def path(self, names):
        """Build a :class:`KeyPath` from ``[entity, rel, rel, ...]`` names.

        The first element names the starting entity; each following
        element names a foreign key on the current entity.
        """
        if not names:
            raise ModelError("a path needs at least an entity name")
        current = self.entity(names[0])
        keys = []
        for rel_name in names[1:]:
            key = current[rel_name]
            if not isinstance(key, ForeignKeyField):
                raise ModelError(
                    f"{current.name}.{rel_name} is not a relationship")
            keys.append(key)
            current = key.entity
        return KeyPath(self.entity(names[0]), keys)

    # -- validation / introspection -----------------------------------------

    def validate(self):
        """Check every entity; raises :class:`ModelError` on problems."""
        if not self.entities:
            raise ModelError(f"model {self.name!r} has no entities")
        for entity in self.entities.values():
            entity.validate()
        return self

    @property
    def relationship_count(self):
        """Number of (undirected) relationships in the graph."""
        return sum(len(e.foreign_keys) for e in self.entities.values()) // 2

    def describe(self):
        """Human-readable summary of the entity graph."""
        lines = [f"Model {self.name!r}: {len(self.entities)} entities, "
                 f"{self.relationship_count} relationships"]
        for entity in self.entities.values():
            lines.append(f"  {entity.name} (count={entity.count})")
            for field in entity.fields.values():
                if isinstance(field, ForeignKeyField):
                    lines.append(
                        f"    {field.name} -> {field.entity.name} "
                        f"[{field.relationship}]")
                else:
                    lines.append(
                        f"    {field.name}: {type(field).__name__}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"Model({self.name!r}, entities={len(self.entities)}, "
                f"relationships={self.relationship_count})")
