"""Paths through the entity graph.

Every NoSE query names a target entity and a path through the entity
graph originating at it (§III-B); every column family is likewise defined
over a path (§IV-A1).  A :class:`KeyPath` is a non-empty sequence of
entities connected by foreign-key edges, and supports the operations the
enumerator and planner need: slicing into contiguous sub-paths, reversal,
and join-cardinality estimation.
"""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.model.fields import ForeignKeyField


class KeyPath:
    """A walk ``e0 -k0-> e1 -k1-> ... -> en`` through the entity graph.

    ``entities[i]`` is the i-th entity and ``keys[i]`` the foreign key on
    ``entities[i]`` leading to ``entities[i+1]``.  A single-entity path
    has no keys.  Paths are immutable and hashable.
    """

    __slots__ = ("entities", "keys", "_hash", "_signature")

    def __init__(self, first_entity, keys=()):
        keys = tuple(keys)
        entities = [first_entity]
        for key in keys:
            if not isinstance(key, ForeignKeyField):
                raise ModelError(f"path key {key!r} is not a foreign key")
            if key.parent is not entities[-1]:
                raise ModelError(
                    f"path key {key.id} does not leave entity "
                    f"{entities[-1].name!r}")
            entities.append(key.entity)
        self.entities = tuple(entities)
        self.keys = keys
        self._hash = hash((tuple(e.name for e in self.entities),
                           tuple(k.id for k in keys)))
        self._signature = None

    # -- basic protocol ----------------------------------------------------

    def __len__(self):
        return len(self.entities)

    def __iter__(self):
        return iter(self.entities)

    def __getitem__(self, index):
        """Entity at a position, or a contiguous sub-path for a slice."""
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self.entities))
            if step != 1 or stop <= start:
                raise ModelError("paths slice only into contiguous sub-paths")
            return KeyPath(self.entities[start],
                           self.keys[start:stop - 1])
        return self.entities[index]

    def __eq__(self, other):
        if not isinstance(other, KeyPath):
            return NotImplemented
        return self.entities == other.entities and self.keys == other.keys

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"KeyPath({str(self)!r})"

    def __str__(self):
        parts = [self.entities[0].name]
        parts.extend(key.name for key in self.keys)
        return ".".join(parts)

    # -- structure ---------------------------------------------------------

    @property
    def signature(self):
        """Orientation-independent identity of the walk.

        Two paths have the same signature iff they visit the same
        entities over the same relationship edges, in either direction.
        Distinguishes parallel relationships between the same entities
        (e.g. comments *written* vs comments *received* by a user).

        Cached — paths are immutable, and the enumerator and planner
        consult signatures once per (candidate, segment) combination.
        """
        if self._signature is not None:
            return self._signature
        names = tuple(entity.name for entity in self.entities)
        edges = tuple(
            "|".join(sorted((key.id,
                             key.reverse.id if key.reverse else "")))
            for key in self.keys)
        forward = (names, edges)
        backward = (names[::-1], edges[::-1])
        self._signature = min(forward, backward)
        return self._signature

    @property
    def first(self):
        return self.entities[0]

    @property
    def last(self):
        return self.entities[-1]

    def index_of(self, entity):
        """First position of ``entity`` on the path, or -1 if absent."""
        for i, path_entity in enumerate(self.entities):
            if path_entity is entity:
                return i
        return -1

    def includes(self, entity):
        return self.index_of(entity) >= 0

    def reverse(self):
        """The same walk traversed backwards.

        Requires every edge to have a reverse foreign key, which
        :meth:`repro.model.graph.Model.add_relationship` guarantees.
        """
        reverse_keys = []
        for key in reversed(self.keys):
            if key.reverse is None:
                raise ModelError(
                    f"cannot reverse path {self}: {key.id} has no reverse")
            reverse_keys.append(key.reverse)
        return KeyPath(self.entities[-1], reverse_keys)

    def concat(self, other):
        """Join two paths sharing an endpoint: ``self.last is other.first``."""
        if self.last is not other.first:
            raise ModelError(
                f"cannot concatenate {self} with {other}: endpoints differ")
        return KeyPath(self.first, self.keys + other.keys)

    def is_prefix_of(self, other):
        """True if this path is a leading sub-path of ``other``."""
        if len(self) > len(other):
            return False
        return (self.entities == other.entities[:len(self)]
                and self.keys == other.keys[:len(self.keys)])

    def splits(self):
        """All (prefix, remainder) decompositions sharing a pivot entity.

        Yields ``(self[:i+1], self[i:])`` for every position ``i``; this is
        the recursive decomposition of §IV-A2 (Fig 5) applied to paths.
        """
        for i in range(len(self)):
            yield self[:i + 1], self[i:]

    # -- statistics ----------------------------------------------------------

    @property
    def cardinality(self):
        """Estimated number of rows in the full join along the path.

        Starts from the first entity's row count; every ``many`` edge
        multiplies by its average fanout, every ``one`` edge preserves
        cardinality.  The estimate is floored at one row.
        """
        rows = float(self.entities[0].count)
        for key in self.keys:
            rows *= key.fanout
        return max(rows, 1.0)

    def fanout_from(self, position):
        """Expected rows reached per row of ``entities[position]``.

        Used by the planner to propagate result cardinality across a join
        step that advances the frontier from ``position`` to the end of
        this path.
        """
        rows = 1.0
        for key in self.keys[position:]:
            rows *= key.fanout
        return rows
