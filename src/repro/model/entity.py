"""Entity sets of the conceptual model."""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.model.fields import Field, ForeignKeyField, IDField


class Entity:
    """One entity set (a box in the entity graph, Fig 1 of the paper).

    An entity has a name, a row count (used for all cardinality
    estimation), exactly one :class:`~repro.model.fields.IDField`, any
    number of data fields, and foreign keys linking it to other entities.

    Fields are accessed by name with ``entity["FieldName"]``; data fields
    and foreign keys live in separate namespaces internally but names must
    be unique across both.
    """

    def __init__(self, name, count=1):
        if not name or not isinstance(name, str):
            raise ValueError("entity name must be a non-empty string")
        if count < 1:
            raise ValueError("entity count must be at least 1")
        self.name = name
        self.count = count
        #: all fields (ID, data, and foreign keys) by name, insertion order
        self.fields = {}

    # -- construction -----------------------------------------------------

    def add_field(self, field):
        """Attach a field to this entity and return it.

        Raises :class:`ModelError` on duplicate names or a second ID field.
        """
        if not isinstance(field, Field):
            raise ModelError(f"not a field: {field!r}")
        if field.name in self.fields:
            raise ModelError(
                f"duplicate field {field.name!r} on entity {self.name!r}")
        if isinstance(field, IDField) and not isinstance(
                field, ForeignKeyField) and self.id_field is not None:
            raise ModelError(f"entity {self.name!r} already has an ID field")
        field.parent = self
        self.fields[field.name] = field
        return field

    def add_fields(self, *fields):
        """Attach several fields at once; returns the entity for chaining."""
        for field in fields:
            self.add_field(field)
        return self

    # -- access ------------------------------------------------------------

    def __getitem__(self, name):
        try:
            return self.fields[name]
        except KeyError:
            raise ModelError(
                f"entity {self.name!r} has no field {name!r}") from None

    def __contains__(self, name):
        return name in self.fields

    @property
    def id_field(self):
        """The entity's primary-key field, or None before one is added."""
        for field in self.fields.values():
            if isinstance(field, IDField) and not isinstance(
                    field, ForeignKeyField):
                return field
        return None

    @property
    def data_fields(self):
        """Non-key attributes, in insertion order."""
        return [f for f in self.fields.values()
                if not isinstance(f, (IDField, ForeignKeyField))]

    @property
    def foreign_keys(self):
        """Foreign-key fields (relationship edges leaving this entity)."""
        return [f for f in self.fields.values()
                if isinstance(f, ForeignKeyField)]

    @property
    def attributes(self):
        """ID field plus data fields — everything a query may select."""
        id_field = self.id_field
        head = [id_field] if id_field is not None else []
        return head + self.data_fields

    def validate(self):
        """Check structural invariants; raises :class:`ModelError`."""
        if self.id_field is None:
            raise ModelError(f"entity {self.name!r} has no ID field")
        for fk in self.foreign_keys:
            if fk.reverse is None:
                raise ModelError(
                    f"foreign key {fk.id} has no reverse direction; "
                    "add relationships through Model.add_relationship")

    def __repr__(self):
        return f"Entity({self.name!r}, count={self.count})"

    def __str__(self):
        return self.name
