"""Attribute (field) types for entities in the conceptual model.

Each field carries the two statistics the cost model needs:

``size``
    average encoded size of one value, in bytes, used for column-family
    size estimation and the optional storage constraint (§V).

``cardinality``
    number of distinct values the attribute takes, used for predicate
    selectivity and partition-count estimation.  For fields whose
    cardinality is not set explicitly it defaults to the owning entity's
    row count when the entity is known.
"""

from __future__ import annotations

import datetime


class Field:
    """An attribute of an entity in the conceptual model.

    Subclasses fix the value type and a sensible default size.  Fields are
    identified globally by ``"<Entity>.<name>"`` once attached to an
    entity; identity-based hashing is deliberate, since a field object is
    unique within a model.
    """

    #: default encoded size in bytes, overridden per subclass
    default_size = 8
    #: Python type of values held by this field (used for validation)
    value_type: type = object

    def __init__(self, name, size=None, cardinality=None):
        if not name or not isinstance(name, str):
            raise ValueError("field name must be a non-empty string")
        self.name = name
        self.size = self.default_size if size is None else size
        self._cardinality = cardinality
        #: owning entity, set by :meth:`repro.model.entity.Entity.add_field`
        self.parent = None

    @property
    def parent(self):
        """Owning entity; assigning it refreshes the cached ``id``."""
        return self._parent

    @parent.setter
    def parent(self, entity):
        # the id string is on the planner's hottest paths (bitset rows,
        # binding checks), so it is computed once per ownership change
        # rather than per access
        self._parent = entity
        name = entity.name if entity is not None else "?"
        self._id = f"{name}.{self.name}"

    @property
    def id(self):
        """Globally unique identifier, ``"<Entity>.<field>"``."""
        return self._id

    @property
    def cardinality(self):
        """Number of distinct values of this attribute.

        Defaults to the owning entity's row count (every row distinct) and
        is never reported larger than it.
        """
        count = self.parent.count if self.parent is not None else None
        if self._cardinality is None:
            return count if count is not None else 1
        if count is not None:
            return min(self._cardinality, count)
        return self._cardinality

    @cardinality.setter
    def cardinality(self, value):
        self._cardinality = value

    def validate(self, value):
        """Return True if ``value`` is an acceptable value for this field."""
        return isinstance(value, self.value_type)

    def __repr__(self):
        return f"{type(self).__name__}({self.id!r})"

    def __str__(self):
        return self.id


class IDField(Field):
    """The primary-key attribute of an entity.

    Every entity has exactly one ID field; its cardinality is always the
    entity row count.
    """

    default_size = 16
    value_type = (int, str)

    @property
    def cardinality(self):
        if self.parent is not None:
            return self.parent.count
        return super().cardinality

    @cardinality.setter
    def cardinality(self, value):  # pragma: no cover - defensive
        raise ValueError("the cardinality of an ID field is the entity count")


class ForeignKeyField(Field):
    """One direction of a relationship edge in the entity graph.

    A foreign key on entity ``A`` named ``r`` pointing at entity ``B``
    lets paths traverse ``A.r`` to reach ``B``.  ``relationship`` states
    how many ``B`` rows one ``A`` row relates to:

    ``"one"``
        each ``A`` row relates to (at most) one ``B`` row;

    ``"many"``
        each ``A`` row relates to several ``B`` rows, on average
        ``B.count / A.count`` unless ``avg_fanout`` overrides it (needed
        for many-to-many relationships, where the ratio of entity counts
        under-estimates the number of connections).

    ``total`` states whether participation in this direction is
    mandatory: every ``A`` row has at least one related ``B`` row.  The
    planner's "possibly larger column family" rule — answering a query
    from an index whose path extends past the query's — is only sound
    over total to-one edges; a partial edge makes the extended join drop
    unlinked rows (found by the differential oracle as lost result
    rows).

    Relationships are created in pairs via
    :meth:`repro.model.graph.Model.add_relationship`, which wires
    ``reverse`` on both directions so paths can be reversed.
    """

    default_size = 16
    value_type = (int, str)

    def __init__(self, name, entity, relationship="one", size=None,
                 avg_fanout=None, total=True):
        if relationship not in ("one", "many"):
            raise ValueError(
                f"relationship must be 'one' or 'many', got {relationship!r}")
        super().__init__(name, size=size)
        #: the target :class:`~repro.model.entity.Entity`
        self.entity = entity
        self.relationship = relationship
        #: mandatory participation: every source row has a target
        self.total = total
        self._avg_fanout = avg_fanout
        #: the foreign key on ``entity`` pointing back at ``self.parent``
        self.reverse = None

    @property
    def cardinality(self):
        """Distinct values = number of rows in the target entity."""
        return self.entity.count

    @cardinality.setter
    def cardinality(self, value):  # pragma: no cover - defensive
        raise ValueError(
            "the cardinality of a foreign key is the target entity count")

    @property
    def fanout(self):
        """Average number of target rows reached from one source row."""
        if self._avg_fanout is not None:
            return self._avg_fanout
        if self.relationship == "one":
            return 1.0
        source = self.parent.count if self.parent is not None else 1
        return self.entity.count / max(source, 1)

    def __repr__(self):
        return (f"ForeignKeyField({self.id!r} -> {self.entity.name!r}, "
                f"{self.relationship!r})")


class StringField(Field):
    """A variable-length string attribute; ``size`` is the average length."""

    default_size = 10
    value_type = str


class IntegerField(Field):
    """A 64-bit integer attribute."""

    default_size = 8
    value_type = int

    def validate(self, value):
        # bool is an int subclass but not a valid integer column value
        return isinstance(value, int) and not isinstance(value, bool)


class FloatField(Field):
    """A double-precision floating point attribute."""

    default_size = 8
    value_type = (int, float)

    def validate(self, value):
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))


class BooleanField(Field):
    """A boolean attribute (cardinality 2 unless overridden)."""

    default_size = 1
    value_type = bool

    def __init__(self, name, size=None, cardinality=2):
        super().__init__(name, size=size, cardinality=cardinality)


class DateField(Field):
    """A date/timestamp attribute, stored as :class:`datetime.datetime`."""

    default_size = 8
    value_type = datetime.datetime
