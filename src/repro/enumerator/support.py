"""Update/column-family interaction: Modifies? and Support (§VI-B, §VI-C).

``modifies(update, index)`` is the paper's ``Modifies?`` predicate:
whether executing the update requires maintaining the column family.
``support_queries(update, index)`` builds the queries that fetch the
primary-key attributes (and displaced values) of the affected rows so a
valid put/delete can be constructed.
"""

from __future__ import annotations

from repro.exceptions import PlanningError
from repro.model.paths import KeyPath
from repro.workload.conditions import Condition
from repro.workload.statements import (
    Connect,
    Delete,
    Insert,
    SupportQuery,
    Update,
)


def modifies(update, index):
    """True when ``update`` requires modifying rows of ``index``."""
    if isinstance(update, Insert):
        return _insert_modifies(update, index)
    if isinstance(update, Update):
        return any(index.contains_field(f) for f in update.set_fields)
    if isinstance(update, Delete):
        return index.path.includes(update.entity)
    if isinstance(update, Connect):
        return _edge_position(update.relationship, index) is not None
    return False


def _insert_modifies(insert, index):
    """An insert creates index rows only when the new entity row joins
    onto the index path, i.e. the edges adjacent to the entity are
    established by the insert's CONNECT clause.

    The entity may occur at several positions of a self-overlapping
    path; the insert modifies the index as soon as *any* occurrence has
    all of its adjacent edges connected (checking only the first
    occurrence made the executor skip maintenance of rows joining at a
    later one — found by the differential fuzzer)."""
    entity = insert.entity
    positions = [position for position, occupant
                 in enumerate(index.path.entities)
                 if occupant is entity]
    if not positions:
        return False
    # NOTE: the entity may contribute *no* fields to the index and the
    # insert still modifies it — grouped views key only on predicate
    # fields plus the target's ID, so a pass-through entity appears on
    # the path without projected fields, and a new row of it creates
    # new join rows all the same (found by the differential fuzzer).
    connected = set()
    for key, _parameter in insert.connections:
        connected.add(key)
        if key.reverse is not None:
            connected.add(key.reverse)
    for position in positions:
        for adjacent in (position - 1, position):
            if 0 <= adjacent < len(index.path.keys):
                edge = index.path.keys[adjacent]
                if edge not in connected \
                        and edge.reverse not in connected:
                    break
        else:
            return True
    return False


def _edge_position(relationship, index):
    """Position of a relationship edge on the index path, or None."""
    for position, key in enumerate(index.path.keys):
        if key is relationship or key is relationship.reverse:
            return position
    return None


def _segment_between(index, start_entity, end_entity):
    """The index-path segment from one entity to another, oriented from
    ``start_entity``; a single-entity path when they coincide."""
    start = index.path.index_of(start_entity)
    end = index.path.index_of(end_entity)
    if start < 0 or end < 0:
        raise PlanningError(
            f"entities {start_entity.name}/{end_entity.name} not on index "
            f"path {index.path}")
    if start == end:
        return KeyPath(start_entity)
    if start < end:
        return index.path[start:end + 1]
    return index.path[end:start + 1].reverse()


def _needed_fields(update, index):
    """Index fields whose values must be known to modify affected rows.

    The §VI-B protocol rewrites every affected record (delete the old
    record, insert the new one), so an UPDATE needs the full record —
    keys *and* values — while a DELETE only needs the primary key.
    Values the statement itself supplies (equality parameters, SET
    values for non-key columns, CONNECT TO identifiers) need no query;
    a SET field inside the record key still needs its *old* value to
    address the record being deleted.
    """
    if isinstance(update, Update):
        fields = index.all_fields
    elif isinstance(update, Delete):
        fields = index.key_fields
    else:  # Insert / Connect / Disconnect create rows: full values needed
        fields = index.all_fields
    given = {f.id for f in update.given_fields}
    if isinstance(update, Insert):
        given.update(f.id for f in update.set_fields)
        # CONNECT TO parameters supply the IDs of adjacent entities
        given.update(key.entity.id_field.id
                     for key, _parameter in update.connections)
    elif isinstance(update, Update):
        key_ids = {f.id for f in index.key_fields}
        given.update(f.id for f in update.set_fields
                     if f.id not in key_ids)
    return [f for f in fields if f.id not in given]


def _support_query(path, select, conditions, update, index, label):
    owner = select[0].parent
    fields = tuple(dict.fromkeys(list(select) + [owner.id_field]))
    return SupportQuery(path, fields, conditions, update=update,
                        index=index, label=label)


def support_queries(update, index):
    """All support queries needed to maintain ``index`` under ``update``.

    Returns an empty list when the update does not modify the index or
    when the update's parameters already identify the affected rows.
    """
    if not modifies(update, index):
        return []
    needed = _needed_fields(update, index)
    if not needed:
        return []
    by_entity = {}
    for field in needed:
        by_entity.setdefault(field.parent, []).append(field)
    queries = []
    for number, (entity, fields) in enumerate(by_entity.items()):
        builder = _support_path_and_conditions(update, index, entity)
        if builder is None:
            continue
        path, conditions = builder
        label = (f"{update.label or type(update).__name__}"
                 f"__{index.key}__sq{number}")
        queries.append(_support_query(path, fields, conditions, update,
                                      index, label))
    return queries


def _support_path_and_conditions(update, index, entity):
    """Path rooted at ``entity`` plus predicates locating affected rows."""
    if isinstance(update, (Update, Delete)):
        segment = _segment_between(index, entity, update.entity)
        if len(update.key_path) > 1:
            path = segment.concat(update.key_path)
        else:
            path = segment
        return path, update.conditions
    if isinstance(update, Insert):
        return _insert_support(update, index, entity)
    if isinstance(update, Connect):
        return _connect_support(update, index, entity)
    return None


def _insert_support(insert, index, entity):
    """Support for inserts: anchor at the entity named in the CONNECT
    clause adjacent to the new row, since the new row itself cannot be
    queried yet."""
    if entity is insert.entity:
        # values of the new row come from the SET clause, never a query
        return None
    new_position = index.path.index_of(insert.entity)
    target_position = index.path.index_of(entity)
    step = 1 if target_position > new_position else -1
    adjacent = index.path[new_position + step]
    parameter = None
    for key, connect_parameter in insert.connections:
        if key.entity is adjacent:
            parameter = connect_parameter
            break
    if parameter is None:  # pragma: no cover - guarded by modifies()
        return None
    path = _segment_between(index, entity, adjacent)
    condition = Condition(adjacent.id_field, "=", parameter)
    return path, (condition,)


def _connect_support(connect, index, entity):
    """Support for CONNECT/DISCONNECT: each side of the new edge is
    anchored by the ID parameter of that side's endpoint."""
    position = _edge_position(connect.relationship, index)
    if position is None:  # pragma: no cover - guarded by modifies()
        return None
    source = connect.entity
    target = connect.relationship.entity
    entity_position = index.path.index_of(entity)
    # entities at path positions <= position are on one side of the edge
    side_first = index.path[position]
    on_first_side = entity_position <= position
    side_entity = side_first if on_first_side else index.path[position + 1]
    if side_entity is source:
        anchor, parameter = source, connect.source_parameter
    else:
        anchor, parameter = target, connect.target_parameter
    if entity is anchor:
        path = KeyPath(entity)
    else:
        path = _segment_between(index, entity, anchor)
    condition = Condition(anchor.id_field, "=", parameter)
    return path, (condition,)


def modified_row_counts(update, index):
    """Estimated ``(deleted_rows, inserted_rows)`` in ``index``.

    These drive the ``C'_mn`` terms of the BIP objective (Fig 10): the
    put/delete work of keeping the column family consistent, charged only
    when the optimizer includes it in the schema.
    """
    if not modifies(update, index):
        return (0.0, 0.0)
    rows_per_entity = index.entries / max(update.entity.count, 1)
    if isinstance(update, Insert):
        return (0.0, max(index.entries / max(update.entity.count, 1), 1.0))
    if isinstance(update, Update):
        # §VI-B protocol: every affected record is deleted and re-inserted
        affected = max(update.matching_target_rows * rows_per_entity, 1.0)
        return (affected, affected)
    if isinstance(update, Delete):
        affected = max(update.matching_target_rows * rows_per_entity, 1.0)
        return (affected, 0.0)
    # Connect / Disconnect: rows created or removed per link change
    relationship = update.relationship
    links = max(relationship.parent.count * relationship.fanout, 1.0)
    rows = max(index.entries / links, 1.0)
    if update.removes_link:
        return (rows, 0.0)
    return (0.0, rows)
