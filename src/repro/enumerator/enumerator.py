"""Per-query candidate generation and Algorithm 1 (paper §IV-A, §VI-C).

For each query the enumerator walks the reversed query path and emits,
for every prefix segment (the prefix queries of Fig 5):

* the materialized view answering the prefix with one get, for every
  choice of partition-key entity among those with equality predicates;
* the key-only variant (IDs only, attributes fetched separately);
* relaxed variants that move a range or ORDER BY attribute out of the
  clustering key (to be filtered/sorted client-side) or drop it entirely;

plus join-segment indexes for every interior segment, and point-lookup
"fetch" indexes for predicate attributes and selected attributes.  The
workload-level entry point then folds in support-query candidates for
every update (Algorithm 1) and closes the pool with Combine.
"""

from __future__ import annotations

from repro import telemetry
from repro.enumerator.combiner import combine_candidates
from repro.enumerator.support import modifies, support_queries
from repro.explain.provenance import ProvenanceRecorder
from repro.indexes.index import Index
from repro.indexes.materialize import entity_fetch_index


def _dedupe(fields):
    return tuple(dict.fromkeys(fields))


class _EventLog:
    """Recorder shim capturing ``(index, rule)`` provenance events.

    Forwards every record to the real recorder unchanged while keeping
    the ordered event list that enumeration artifacts store for replay
    (:mod:`repro.pipeline`).
    """

    __slots__ = ("recorder", "events")

    def __init__(self, recorder):
        self.recorder = recorder
        self.events = []

    def record(self, index, rule, source=None, parents=()):
        self.events.append((index, rule))
        if self.recorder is not None:
            self.recorder.record(index, rule, source=source,
                                 parents=parents)


def _replay(events, recorder, source):
    """Re-record cached provenance events against ``recorder``.

    ``source`` is the *current* statement object, so replayed records
    resolve to current labels; the event order is the cold
    enumeration's record order, keeping provenance byte-identical."""
    if recorder is None:
        return
    for index, rule in events:
        recorder.record(index, rule, source=source)


class CandidatePool(list):
    """The enumerated candidate list, with per-candidate provenance.

    Behaves exactly like the sorted list :meth:`CandidateEnumerator
    .candidates` used to return; ``provenance`` is the enumeration's
    :class:`~repro.explain.provenance.ProvenanceRecorder`, carrying the
    derivation record of every candidate in (and merged out of) the
    pool.
    """

    def __init__(self, indexes=(), provenance=None):
        super().__init__(indexes)
        self.provenance = provenance


class CandidateEnumerator:
    """Generates the candidate column-family pool for a workload.

    ``relax`` enables the relaxed-predicate variants of §IV-A2 and
    ``combine`` the candidate-combination step of §IV-A3; both are on by
    default and exposed as switches for the ablation benchmarks.

    ``grouped`` enables an *extension* the paper leaves as future work
    (§VII-A: "NoSE is not currently capable of exploiting queries which
    make use of GROUP BY"): materialized views whose clustering key
    keeps only the target entity's ID, collapsing one row per join
    tuple into one row per distinct result — the trick the paper's
    human expert used for "items a user has bid on".  Correct because
    query results are distinct tuples anyway (the application model's
    final merge discards duplicates) and maintenance recomputes
    affected rows from the ground truth; off by default to stay
    faithful to the paper's enumerator.
    """

    def __init__(self, model, relax=True, combine=True, grouped=False):
        self.model = model
        self.relax = relax
        self.combine = combine
        self.grouped = grouped
        #: (entity name, field-id tuple or None) -> fetch index; the
        #: per-entity point-lookup families are pure functions of the
        #: (immutable) model, and enumeration requests the same handful
        #: once per statement
        self._fetch_index_memo = {}

    @property
    def config_key(self):
        """The enumeration-affecting configuration, for artifact keys."""
        return (type(self).__name__, self.relax, self.combine,
                self.grouped)

    # -- workload-level enumeration (Algorithm 1) ---------------------------

    def candidates(self, workload, store=None):
        """The full candidate pool for a workload, including support-query
        candidates for updates, closed under Combine.

        Returns a :class:`CandidatePool` whose ``provenance`` records,
        for every candidate, the derivation rule that produced it and
        the workload statements it was derived for (support-query
        candidates are attributed to their update).

        ``store`` is an optional :class:`~repro.pipeline.ArtifactStore`:
        per-statement enumerations are then served from (and saved to)
        it keyed by structural digest, so only statements new to the
        store are actually enumerated.  The pool-assembly loops and the
        cross-statement Combine step always run in full — the result is
        identical to an uncached enumeration."""
        active = telemetry.current()
        recorder = ProvenanceRecorder()
        config = self.config_key if store is not None else None
        pool = set()
        for query in workload.queries:
            found = self._enumerate_query_cached(query, recorder, store,
                                                 config, active)
            if active.enabled:
                before = len(pool)
                pool |= found
                # candidates another query already produced count as
                # discarded: they add nothing to the pool
                active.count("enumerator.queries")
                active.count("enumerator.candidates_generated",
                             len(found))
                active.count("enumerator.candidates_discarded",
                             len(found) - (len(pool) - before))
                active.observe("enumerator.candidates_per_query",
                               len(found))
            else:
                pool |= found
        updates = workload.updates
        # support enumeration to a fixed point: support queries may
        # traverse paths not covered by any workload query, and a
        # support-query view can itself be modified by another update —
        # its own support queries then need enumerating too, or its
        # maintenance plan is unplannable (the differential fuzzer
        # found such pools).  Each (update, candidate) pair is visited
        # exactly once, so the closure terminates on the finite
        # candidate space.
        support_count, added = self._support_closure(
            updates, pool, set(pool), recorder, store, config, active)
        if active.enabled:
            active.count("enumerator.support_queries", support_count)
            active.count("enumerator.support_candidates_added", added)
        if self.combine:
            merged = combine_candidates(pool, recorder=recorder)
            new_merged = merged - pool
            if active.enabled:
                active.count("enumerator.combined_candidates",
                             len(new_merged))
            pool |= merged
            # Combine runs after the support closure, so the merged
            # candidates need the same treatment: close the pool again
            # over the combine frontier
            _count, closure_added = self._support_closure(
                updates, pool, new_merged, recorder, store, config,
                active)
            if active.enabled:
                active.count("enumerator.closure_candidates_added",
                             closure_added)
        return CandidatePool(sorted(pool, key=lambda index: index.key),
                             provenance=recorder)

    def _support_closure(self, updates, pool, frontier, recorder, store,
                         config, active):
        """Grow ``pool`` (in place) with support-query candidates until
        every update-modified candidate has its support queries
        enumerated.  ``frontier`` holds the candidates not yet visited;
        returns ``(support queries enumerated, candidates added)``."""
        support_count = 0
        added = 0
        while frontier:
            additions = set()
            for update in updates:
                # sorted so provenance record order (and therefore the
                # explain document) is deterministic and identical
                # between cold and artifact-served enumerations
                for index in sorted(frontier,
                                    key=lambda index: index.key):
                    if not modifies(update, index):
                        continue
                    found, enumerated = self._enumerate_support_cached(
                        update, index, recorder, store, config, active)
                    additions |= found
                    support_count += enumerated
            frontier = additions - pool
            added += len(frontier)
            pool |= additions
        return support_count, added

    # -- artifact-served enumeration ----------------------------------------

    def _enumerate_query_cached(self, query, recorder, store, config,
                                active):
        """One workload query's candidates, served from ``store``."""
        if store is None:
            return self.enumerate_query(query, recorder=recorder)
        from repro.pipeline import EnumerationArtifact
        from repro.workload.digest import statement_signature
        key = ("enum-query", config, statement_signature(query))
        artifact = store.get(key)
        if artifact is not None:
            _replay(artifact.events, recorder, query)
            if active.enabled:
                active.count("enumerator.query_cache_hits")
            return set(artifact.indexes)
        log = _EventLog(recorder)
        found = self.enumerate_query(query, recorder=log)
        store.put(key, EnumerationArtifact(found, log.events))
        return found

    def _enumerate_support_cached(self, update, index, recorder, store,
                                  config, active):
        """Candidates of one (update, column family) support round.

        Returns ``(candidates, support query count)``.  Cached per
        ``(update digest, index key)``: the support queries derived from
        the pair are a pure function of both, and replayed provenance
        events resolve to the update's *current* label."""
        if store is None:
            found = set()
            count = 0
            for support in support_queries(update, index):
                found |= self.enumerate_query(support, recorder=recorder)
                count += 1
            return found, count
        from repro.pipeline import EnumerationArtifact
        from repro.workload.digest import statement_signature
        key = ("enum-support", config, statement_signature(update),
               index.key)
        artifact = store.get(key)
        if artifact is not None:
            _replay(artifact.events, recorder, update)
            if active.enabled:
                active.count("enumerator.support_cache_hits")
            return set(artifact.indexes), artifact.support_count
        log = _EventLog(recorder)
        found = set()
        count = 0
        for support in support_queries(update, index):
            # distinct (update, candidate) pairs routinely derive
            # structurally identical support queries, so the per-query
            # enumeration underneath is served from the same
            # signature-keyed artifacts as workload queries
            found |= self._enumerate_query_cached(support, log, store,
                                                  config, active)
            count += 1
        store.put(key, EnumerationArtifact(found, log.events, count))
        return found, count

    # -- per-query enumeration ------------------------------------------------

    def enumerate_query(self, query, recorder=None):
        """Candidate column families for a single query (§IV-A2).

        When a ``recorder`` is given, every candidate is recorded with
        the derivation rule that produced it and ``query`` as its
        source.  Disjunctive queries enumerate as the union over their
        conjunctive branches (the plan-space union the planner builds),
        with every candidate attributed to the parent query; aggregated
        queries additionally enable the grouped-view layouts, which
        collapse join duplicates exactly the way grouping wants.
        """
        if recorder is None:
            def record(index, rule):
                return None
        else:
            def record(index, rule):
                recorder.record(index, rule, source=query)
        grouped = self.grouped or getattr(query, "is_aggregate", False)
        branches = getattr(query, "branch_queries", None) or (query,)
        candidates = set()
        for branch in branches:
            candidates |= self._enumerate_branch(branch, record, grouped)
        return candidates

    def _enumerate_branch(self, query, record, grouped):
        """Candidates for one conjunctive query (a single OR branch)."""
        candidates = set()
        rpath = query.key_path.reverse() if len(query.key_path) > 1 \
            else query.key_path
        length = len(rpath)
        conditions_at = {}
        for condition in query.conditions:
            position = rpath.index_of(condition.field.parent)
            conditions_at.setdefault(position, []).append(condition)
        select = tuple(query.select)
        order_by = tuple(query.order_by)
        # anchored prefix segments (the prefix queries of Fig 5)
        for end in range(length):
            segment = rpath[:end + 1]
            segment_conditions = [c for position in range(end + 1)
                                  for c in conditions_at.get(position, [])]
            eq_entities = _dedupe(c.field.parent for c in segment_conditions
                                  if c.is_bindable)
            if not eq_entities:
                continue
            is_final = end == length - 1
            segment_select = select if is_final \
                else (rpath[end].id_field,)
            segment_order = order_by if all(
                segment.includes(f.parent) for f in order_by) else ()
            base_rule = "materialize" if is_final else "prefix-split"
            for hash_entity in eq_entities:
                candidates |= self._anchored(segment, segment_conditions,
                                             hash_entity, segment_select,
                                             segment_order,
                                             grouped_target=rpath[end]
                                             if is_final else None,
                                             record=record,
                                             base_rule=base_rule,
                                             grouped=grouped)
        # interior join segments
        for start in range(length - 1):
            for end in range(start + 1, length):
                segment = rpath[start:end + 1]
                segment_conditions = [
                    c for position in range(start, end + 1)
                    for c in conditions_at.get(position, [])]
                is_final = end == length - 1
                candidates |= self._join_segment(
                    segment, segment_conditions,
                    select if is_final else (), record=record)
        # point lookups for predicate attributes and selected attributes
        # (the second stage of the paper's two-step "ID-fetch" plans)
        fetches = []
        for condition in query.conditions:
            entity = condition.field.parent
            fetches.append(self._fetch_index(entity, (condition.field,)))
            fetches.append(self._fetch_index(entity))
        by_entity = {}
        for field in select:
            by_entity.setdefault(field.parent, []).append(field)
        for entity, fields in by_entity.items():
            fetches.append(self._fetch_index(entity, tuple(fields)))
            fetches.append(self._fetch_index(entity))
        for index in fetches:
            record(index, "id-fetch-split")
        candidates.update(fetches)
        return candidates

    def _fetch_index(self, entity, fields=None):
        """Memoized :func:`entity_fetch_index` (see ``_fetch_index_memo``)."""
        memo_key = (entity.name,
                    None if fields is None
                    else tuple(field.id for field in fields))
        cached = self._fetch_index_memo.get(memo_key)
        if cached is None:
            cached = self._fetch_index_memo[memo_key] = \
                entity_fetch_index(entity, fields)
        return cached

    # -- candidate construction ---------------------------------------------------

    def _anchored(self, segment, conditions, hash_entity, select, order_by,
                  grouped_target=None, record=None, base_rule="materialize",
                  grouped=False):
        """Materialized-view family for one prefix segment and one choice
        of partition-key entity.

        Each generated layout carries the derivation rule that produced
        it, reported through ``record`` for candidate provenance;
        ``base_rule`` names the unrelaxed layout (``materialize`` for
        the full path, ``prefix-split`` for a proper prefix).
        ``grouped`` additionally emits the group-collapse layout (the
        §VII-A extension), enabled per query when it aggregates or
        globally via the enumerator's ``grouped`` switch.
        """
        if record is None:
            def record(index, rule):
                return None
        eq_fields = [c.field for c in conditions
                     if c.is_bindable and c.field.parent is hash_entity]
        if not eq_fields:
            return set()
        other_eq = [c.field for c in conditions
                    if c.is_bindable and c.field.parent is not hash_entity]
        range_condition = next((c for c in conditions if c.is_range), None)
        # inequality (!=) predicates are filter-only: the attribute just
        # has to reach the client, in the value columns or the key
        ineq_fields = [c.field for c in conditions if c.is_inequality]
        ids = [entity.id_field for entity in reversed(segment.entities)]
        layouts = []
        range_fields = [range_condition.field] if range_condition else []
        if grouped and grouped_target is not None \
                and all(field.parent is grouped_target
                        for field in select):
            # grouped view (GROUP BY extension): clustering keeps only
            # the target's ID, collapsing duplicate results; every
            # predicate/order attribute off the target stays in the key
            # so no data is lost to collisions
            layouts.append(("group-collapse",
                            other_eq + list(order_by) + range_fields
                            + [f for f in ineq_fields
                               if f.parent is not grouped_target]
                            + [grouped_target.id_field],
                            tuple(f for f in ineq_fields
                                  if f.parent is grouped_target)))
        # served layout: range scanned via the clustering order
        layouts.append((base_rule,
                        other_eq + list(order_by) + range_fields + ids,
                        tuple(ineq_fields)))
        relaxed = 0
        if self.relax and range_condition is not None:
            # relaxation (§IV-A2): move the predicate attribute to the
            # value columns (client-side filter) or drop it entirely
            layouts.append(("predicate-relax",
                            other_eq + list(order_by) + ids,
                            (range_condition.field, *ineq_fields)))
            layouts.append(("predicate-relax",
                            other_eq + list(order_by) + ids,
                            tuple(ineq_fields)))
            relaxed += 2
        if self.relax and order_by:
            # order relaxation: sort client-side instead
            layouts.append(("order-relax",
                            other_eq + range_fields + ids,
                            (*order_by, *ineq_fields)))
            relaxed += 1
        if relaxed:
            active = telemetry.current()
            if active.enabled:
                active.count("enumerator.relaxed_layouts", relaxed)
        candidates = set()
        for rule, order_fields, forced_extra in layouts:
            order_fields = [f for f in _dedupe(order_fields)
                            if f not in eq_fields]
            taken = set(eq_fields) | set(order_fields)
            extras = _dedupe([f for f in forced_extra if f not in taken]
                             + [f for f in select if f not in taken])
            index = Index(eq_fields, order_fields, extras, segment)
            candidates.add(index)
            record(index, rule)
            if extras:
                # key-only variant: values fetched through a separate
                # per-entity column family instead
                split = Index(eq_fields, order_fields,
                              tuple(f for f in forced_extra
                                    if f not in taken),
                              segment)
                candidates.add(split)
                record(split, "id-fetch-split")
        return candidates

    def _join_segment(self, segment, conditions, select, record=None):
        """Indexes chaining a plan across one interior segment: keyed by
        the pivot entity's ID, clustering through to the frontier."""
        if record is None:
            def record(index, rule):
                return None
        pivot = segment.first.id_field
        ids = [entity.id_field
               for entity in reversed(segment.entities[1:])]
        eq_fields = [c.field for c in conditions
                     if c.is_bindable and c.field is not pivot]
        range_condition = next((c for c in conditions if c.is_range), None)
        range_fields = [range_condition.field] if range_condition else []
        ineq_fields = [c.field for c in conditions
                       if c.is_inequality and c.field is not pivot]
        layouts = [ids]
        if eq_fields or range_fields or ineq_fields:
            layouts.append(eq_fields + range_fields + ineq_fields + ids)
        candidates = set()
        for order_fields in layouts:
            order_fields = [f for f in _dedupe(order_fields)
                            if f is not pivot]
            taken = {pivot, *order_fields}
            extras = tuple(f for f in _dedupe(select) if f not in taken)
            bare = Index((pivot,), order_fields, (), segment)
            candidates.add(bare)
            record(bare, "join-segment")
            if extras:
                wide = Index((pivot,), order_fields, extras, segment)
                candidates.add(wide)
                record(wide, "join-segment")
        return candidates
