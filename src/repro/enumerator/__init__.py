"""Candidate column-family enumeration (paper §IV-A, Algorithm 1).

Candidates are generated per query by recursive decomposition along the
query path (materialized views, key-only variants, relaxed-predicate
variants, join segments, and point-lookup "fetch" indexes), then the pool
is extended with support-query candidates for every update and closed
with the Combine step.
"""

from repro.enumerator.combiner import combine_candidates
from repro.enumerator.enumerator import CandidateEnumerator
from repro.enumerator.support import (
    modified_row_counts,
    modifies,
    support_queries,
)

__all__ = [
    "CandidateEnumerator",
    "combine_candidates",
    "modified_row_counts",
    "modifies",
    "support_queries",
]
